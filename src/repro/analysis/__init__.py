"""Static analyses of machine-level dataflow programs.

* :mod:`repro.analysis.rate` -- steady-state initiation-interval bound
  via minimum cycle mean on the marked graph (forward arcs + reverse
  acknowledge arcs);
* :mod:`repro.analysis.paths` -- equal-path-length (balance) checking;
* :mod:`repro.analysis.traffic` -- operation-packet destination
  breakdown (function units vs array memories vs local);
* :mod:`repro.analysis.partition` -- K-way shard assignment for the
  multi-process runner (level min-cut with round-robin fallback).
"""

from .partition import Partition, PartitionError, partition_graph
from .paths import (
    BalanceReport,
    check_balance,
    count_buffer_cells,
    default_arc_weight,
    longest_path_levels,
    pipeline_depth,
)
from .report import BlockReport, ProgramReport, analyze_program
from .rate import (
    MAX_RATE,
    RateReport,
    analyze_rate,
    initiation_interval_bound,
    is_fully_pipelined,
)
from .traffic import TrafficReport, static_traffic_estimate, traffic_breakdown

__all__ = [
    "BalanceReport",
    "BlockReport",
    "ProgramReport",
    "MAX_RATE",
    "Partition",
    "PartitionError",
    "RateReport",
    "TrafficReport",
    "analyze_program",
    "analyze_rate",
    "check_balance",
    "count_buffer_cells",
    "default_arc_weight",
    "initiation_interval_bound",
    "is_fully_pipelined",
    "longest_path_levels",
    "partition_graph",
    "pipeline_depth",
    "static_traffic_estimate",
    "traffic_breakdown",
]
