"""Partition a machine-level instruction graph into K shards.

The sharded runner (:mod:`repro.machine.sharded`) executes each shard's
event loop in its own worker and routes every cross-shard arc as
packets over a pipe, so the partitioner's job is to keep the cut --
the number of arcs whose endpoints land on different shards -- small
while keeping the shards roughly the same size.

Two schemes:

``levels``
    For acyclic graphs.  Cells are laid out in pipeline order by their
    :func:`~repro.analysis.paths.longest_path_levels` level (ties by
    cell id), and a small dynamic program picks the K-1 split points
    of that linear order that minimize the number of arcs crossing a
    split, subject to a balance constraint (every shard holds between
    half and twice the ideal ``n/K`` cells).  Cutting between pipeline
    stages is exactly the min-cut a pipelined graph wants: one stage's
    results flow forward across the cut once per wavefront.

``round_robin``
    Fallback for cyclic graphs (e.g. the Todd for-iter scheme of
    fig7, whose feedback arcs defeat a topological layout) and a
    degenerate safety net: cell ``i`` of the sorted cell-id order goes
    to shard ``i % K``.

``auto`` picks ``levels`` when the graph is acyclic and
``round_robin`` otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ReproError
from ..graph.graph import DataflowGraph, GraphError
from .paths import longest_path_levels

_INF = float("inf")


class PartitionError(ReproError):
    """Raised on unsatisfiable partition requests."""


@dataclass(frozen=True)
class Partition:
    """Assignment of every cell to one of ``k`` shards."""

    k: int
    scheme: str
    owner: dict[int, int]           # cid -> shard index
    cut_arcs: tuple[int, ...]       # aids crossing shard boundaries

    @property
    def sizes(self) -> list[int]:
        counts = [0] * self.k
        for shard in self.owner.values():
            counts[shard] += 1
        return counts

    def describe(self) -> str:
        return (
            f"Partition(k={self.k}, scheme={self.scheme}, "
            f"sizes={self.sizes}, cut={len(self.cut_arcs)} arcs)"
        )


def partition_graph(
    graph: DataflowGraph, k: int, scheme: str = "auto"
) -> Partition:
    """Assign every cell of ``graph`` to one of ``k`` shards."""
    if k < 1:
        raise PartitionError(f"shard count must be >= 1, got {k}")
    cids = sorted(graph.cells)
    if not cids:
        raise PartitionError("cannot partition an empty graph")
    if k > len(cids):
        raise PartitionError(
            f"cannot split {len(cids)} cells into {k} shards; every "
            f"shard needs at least one cell"
        )
    if scheme not in ("auto", "levels", "round_robin"):
        raise PartitionError(
            f"unknown partition scheme {scheme!r}; expected "
            f"'auto', 'levels' or 'round_robin'"
        )
    if k == 1:
        return _finish(graph, k, "single", {cid: 0 for cid in cids})

    if scheme in ("auto", "levels"):
        try:
            levels = longest_path_levels(graph)
        except GraphError:
            if scheme == "levels":
                raise PartitionError(
                    "scheme 'levels' needs an acyclic graph; use "
                    "'round_robin' (or 'auto') for graphs with "
                    "feedback arcs"
                )
            levels = None
        if levels is not None:
            owner = _levels_cut(graph, k, cids, levels)
            if owner is not None:
                return _finish(graph, k, "levels", owner)
    return _finish(
        graph, k, "round_robin",
        {cid: i % k for i, cid in enumerate(cids)},
    )


def _finish(
    graph: DataflowGraph, k: int, scheme: str, owner: dict[int, int]
) -> Partition:
    cut = tuple(
        aid
        for aid, arc in sorted(graph.arcs.items())
        if owner[arc.src] != owner[arc.dst]
    )
    return Partition(k=k, scheme=scheme, owner=owner, cut_arcs=cut)


def _levels_cut(
    graph: DataflowGraph,
    k: int,
    cids: list[int],
    levels: dict[int, int],
) -> dict[int, int] | None:
    """Min-cut over the pipeline-level linear order, or None when the
    balance constraint is unsatisfiable (caller falls back)."""
    order = sorted(cids, key=lambda cid: (levels[cid], cid))
    n = len(order)
    if n < k:
        return None
    index = {cid: i for i, cid in enumerate(order)}

    # cross[p] = number of arcs spanning the boundary between
    # positions p-1 and p of the linear order (difference array)
    diff = [0] * (n + 2)
    for arc in graph.arcs.values():
        a, b = sorted((index[arc.src], index[arc.dst]))
        if a != b:
            diff[a + 1] += 1
            diff[b + 1] -= 1
    cross = [0] * (n + 1)
    run = 0
    for p in range(1, n + 1):
        run += diff[p]
        cross[p] = run

    ideal = n / k
    lo = max(1, int(ideal / 2))
    hi = max(lo, int(ideal * 2) + 1)

    # dp[j][i]: cheapest total boundary cost putting the first i cells
    # into j shards; a boundary placed before position i costs cross[i]
    dp = [[_INF] * (n + 1) for _ in range(k + 1)]
    back: list[list[int]] = [[-1] * (n + 1) for _ in range(k + 1)]
    for i in range(lo, min(hi, n) + 1):
        dp[1][i] = 0
    for j in range(2, k + 1):
        for i in range(j, n + 1):
            best, best_prev = _INF, -1
            for size in range(lo, hi + 1):
                prev = i - size
                if prev < j - 1:
                    break
                c = dp[j - 1][prev]
                if c is not _INF and c + cross[prev] < best:
                    best = c + cross[prev]
                    best_prev = prev
            dp[j][i] = best
            back[j][i] = best_prev
    if dp[k][n] is _INF or dp[k][n] == _INF:
        return None

    bounds = [n]
    i = n
    for j in range(k, 1, -1):
        i = back[j][i]
        if i < 0:
            return None
        bounds.append(i)
    bounds.append(0)
    bounds.reverse()

    owner: dict[int, int] = {}
    for shard in range(k):
        for pos in range(bounds[shard], bounds[shard + 1]):
            owner[order[pos]] = shard
    return owner
