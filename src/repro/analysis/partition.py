"""Partition a machine-level instruction graph into K shards.

The sharded runner (:mod:`repro.machine.sharded`) executes each shard's
event loop in its own worker and routes every cross-shard arc as
packets, so the partitioner's job is to keep the cut *traffic* -- the
steady-state packet rate over arcs whose endpoints land on different
shards -- small while keeping the shards roughly the same size.

Arcs are weighted by a static packet-rate estimate from the compiled
graph: an arc fed by a ``CONST`` cell or a one-shot source carries one
setup packet for the whole run, while an arc on a streaming path
carries a packet per wavefront.  The balance/cut dynamic program then
minimizes the *weighted* cut, so a boundary through setup arcs beats
an equally-balanced boundary through the steady-state stream.

Schemes (``auto`` tries them in this order):

``components``
    When the graph has at least K weakly-connected components, pack
    whole components onto shards (largest-first greedy).  The cut is
    empty -- shards never exchange a packet -- which is the case wide
    embarrassingly-parallel workloads hit.

``levels``
    For acyclic graphs.  Cells are laid out in pipeline order by their
    :func:`~repro.analysis.paths.longest_path_levels` level (ties by
    cell id), and a small dynamic program picks the K-1 split points
    of that linear order that minimize the weighted cut, subject to a
    balance constraint (every shard holds between half and twice the
    ideal ``n/K`` cells).  Cutting between pipeline stages is exactly
    the min-cut a pipelined graph wants.

``scc``
    For cyclic graphs (e.g. the Todd for-iter scheme of fig7, whose
    feedback arcs defeat a topological layout): strongly-connected
    components are condensed, topologically ordered, and the same
    weighted split-point DP runs over that linear order -- so every
    feedback cycle stays inside one shard and only feed-forward
    traffic crosses the cut.

``round_robin``
    Degenerate safety net when the DP's balance constraint is
    unsatisfiable: cell ``i`` of the sorted cell-id order goes to
    shard ``i % K``.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from ..errors import ReproError
from ..graph.graph import DataflowGraph, GraphError
from ..graph.opcodes import Op
from .paths import longest_path_levels

_INF = float("inf")

#: estimated packets per run on a steady-state streaming arc, relative
#: to a one-shot setup arc.  The exact magnitude matters little; it
#: only has to dominate the setup weight so the DP prefers cutting
#: setup arcs.
_STREAM_WEIGHT = 8


class PartitionError(ReproError):
    """Raised on unsatisfiable partition requests."""


@dataclass(frozen=True)
class Partition:
    """Assignment of every cell to one of ``k`` shards."""

    k: int
    scheme: str
    owner: dict[int, int]           # cid -> shard index
    cut_arcs: tuple[int, ...]       # aids crossing shard boundaries
    #: estimated steady-state packet rate over the cut (sum of the
    #: crossing arcs' traffic weights)
    cut_weight: float = 0.0

    @property
    def sizes(self) -> list[int]:
        counts = [0] * self.k
        for shard in self.owner.values():
            counts[shard] += 1
        return counts

    def describe(self) -> str:
        return (
            f"Partition(k={self.k}, scheme={self.scheme}, "
            f"sizes={self.sizes}, cut={len(self.cut_arcs)} arcs, "
            f"weight={self.cut_weight:g})"
        )


def arc_weights(graph: DataflowGraph) -> dict[int, int]:
    """Static per-arc packet-rate estimate.

    Arcs out of ``CONST`` cells and one-shot pattern sources carry a
    single setup packet; everything else is assumed to run at the
    steady-state wavefront rate.
    """
    weights: dict[int, int] = {}
    for aid, arc in graph.arcs.items():
        src = graph.cells[arc.src]
        if src.op is Op.CONST:
            weights[aid] = 1
        elif src.op is Op.SOURCE:
            values = src.params.get("values")
            weights[aid] = (
                1 if values is not None and len(values) <= 1
                else _STREAM_WEIGHT
            )
        else:
            weights[aid] = _STREAM_WEIGHT
    return weights


def cut_distances(
    graph: DataflowGraph, owner: dict[int, int]
) -> dict[int, int]:
    """Per-cell hop distance to the nearest shard-boundary cell.

    A boundary cell is an endpoint of any arc whose endpoints live on
    different shards (distance 0); distance counts arc traversals in
    the *undirected* arc graph.  Cells with no path to a boundary are
    omitted (treat as unreachable/infinite): no event there can ever
    influence the cut.  Used by the adaptive lockstep horizon.
    """
    adj: dict[int, list[int]] = {cid: [] for cid in graph.cells}
    boundary: list[int] = []
    for arc in graph.arcs.values():
        adj[arc.src].append(arc.dst)
        adj[arc.dst].append(arc.src)
        if owner[arc.src] != owner[arc.dst]:
            boundary.extend((arc.src, arc.dst))
    dist: dict[int, int] = {}
    queue: deque[int] = deque()
    for cid in boundary:
        if cid not in dist:
            dist[cid] = 0
            queue.append(cid)
    while queue:
        cid = queue.popleft()
        d = dist[cid] + 1
        for nxt in adj[cid]:
            if nxt not in dist:
                dist[nxt] = d
                queue.append(nxt)
    return dist


def partition_graph(
    graph: DataflowGraph, k: int, scheme: str = "auto"
) -> Partition:
    """Assign every cell of ``graph`` to one of ``k`` shards."""
    if k < 1:
        raise PartitionError(f"shard count must be >= 1, got {k}")
    cids = sorted(graph.cells)
    if not cids:
        raise PartitionError("cannot partition an empty graph")
    if k > len(cids):
        raise PartitionError(
            f"cannot split {len(cids)} cells into {k} shards; every "
            f"shard needs at least one cell"
        )
    if scheme not in ("auto", "levels", "round_robin"):
        raise PartitionError(
            f"unknown partition scheme {scheme!r}; expected "
            f"'auto', 'levels' or 'round_robin'"
        )
    if k == 1:
        return _finish(graph, k, "single", {cid: 0 for cid in cids})

    weights = arc_weights(graph)

    if scheme == "auto":
        owner = _components_pack(graph, k, cids)
        if owner is not None:
            return _finish(graph, k, "components", owner, weights)

    if scheme in ("auto", "levels"):
        try:
            levels = longest_path_levels(graph)
        except GraphError:
            if scheme == "levels":
                raise PartitionError(
                    "scheme 'levels' needs an acyclic graph; use "
                    "'round_robin' (or 'auto') for graphs with "
                    "feedback arcs"
                )
            levels = None
        if levels is not None:
            order = sorted(cids, key=lambda cid: (levels[cid], cid))
            owner = _order_cut(graph, k, order, weights)
            if owner is not None:
                return _finish(graph, k, "levels", owner, weights)
        elif scheme == "auto":
            # cyclic: condense SCCs so feedback cycles stay intact,
            # then run the same weighted DP over the condensed order
            order = _scc_order(graph, cids)
            owner = _order_cut(graph, k, order, weights)
            if owner is not None:
                return _finish(graph, k, "scc", owner, weights)
    return _finish(
        graph, k, "round_robin",
        {cid: i % k for i, cid in enumerate(cids)},
        weights,
    )


def _finish(
    graph: DataflowGraph,
    k: int,
    scheme: str,
    owner: dict[int, int],
    weights: dict[int, int] | None = None,
) -> Partition:
    cut = tuple(
        aid
        for aid, arc in sorted(graph.arcs.items())
        if owner[arc.src] != owner[arc.dst]
    )
    weight = (
        float(sum(weights[aid] for aid in cut)) if weights else float(len(cut))
    ) if cut else 0.0
    return Partition(
        k=k, scheme=scheme, owner=owner, cut_arcs=cut, cut_weight=weight
    )


def _balance_bounds(n: int, k: int) -> tuple[int, int]:
    ideal = n / k
    lo = max(1, int(ideal / 2))
    hi = max(lo, int(ideal * 2) + 1)
    return lo, hi


def _components_pack(
    graph: DataflowGraph, k: int, cids: list[int]
) -> dict[int, int] | None:
    """Zero-cut packing of whole weakly-connected components, or None
    when there are fewer than K components or the greedy packing
    violates the balance bounds."""
    parent = {cid: cid for cid in cids}

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    for arc in graph.arcs.values():
        ra, rb = find(arc.src), find(arc.dst)
        if ra != rb:
            parent[ra] = rb
    comps: dict[int, list[int]] = {}
    for cid in cids:
        comps.setdefault(find(cid), []).append(cid)
    if len(comps) < k:
        return None
    # largest-first greedy onto the least-loaded shard; deterministic
    # order via (size desc, smallest member cid)
    ordered = sorted(comps.values(), key=lambda c: (-len(c), c[0]))
    loads = [0] * k
    owner: dict[int, int] = {}
    for comp in ordered:
        shard = min(range(k), key=lambda s: (loads[s], s))
        loads[shard] += len(comp)
        for cid in comp:
            owner[cid] = shard
    lo, hi = _balance_bounds(len(cids), k)
    if min(loads) < lo or max(loads) > hi:
        return None
    return owner


def _scc_order(graph: DataflowGraph, cids: list[int]) -> list[int]:
    """Linear order that keeps each strongly-connected component
    contiguous, SCCs in topological order of the condensation (ties
    by smallest member cid), cells inside an SCC by cid.

    Iterative Tarjan -- the graphs here can be deep pipelines, so no
    recursion.
    """
    index: dict[int, int] = {}
    low: dict[int, int] = {}
    on_stack: set[int] = set()
    stack: list[int] = []
    comps: list[list[int]] = []
    counter = 0
    succ: dict[int, list[int]] = {cid: [] for cid in cids}
    for arc in graph.arcs.values():
        succ[arc.src].append(arc.dst)
    for cid in succ:
        succ[cid].sort()

    for root in cids:
        if root in index:
            continue
        work = [(root, 0)]
        while work:
            node, pi = work[-1]
            if pi == 0:
                index[node] = low[node] = counter
                counter += 1
                stack.append(node)
                on_stack.add(node)
            advanced = False
            children = succ[node]
            while pi < len(children):
                child = children[pi]
                pi += 1
                if child not in index:
                    work[-1] = (node, pi)
                    work.append((child, 0))
                    advanced = True
                    break
                if child in on_stack:
                    low[node] = min(low[node], index[child])
            if advanced:
                continue
            work[-1] = (node, pi)
            if pi >= len(children):
                work.pop()
                if work:
                    parent_node = work[-1][0]
                    low[parent_node] = min(low[parent_node], low[node])
                if low[node] == index[node]:
                    comp = []
                    while True:
                        w = stack.pop()
                        on_stack.discard(w)
                        comp.append(w)
                        if w == node:
                            break
                    comp.sort()
                    comps.append(comp)
    # Tarjan emits SCCs in reverse topological order of the
    # condensation; reverse for a forward pipeline order
    ordered = list(reversed(comps))
    return [cid for comp in ordered for cid in comp]


def _order_cut(
    graph: DataflowGraph,
    k: int,
    order: list[int],
    weights: dict[int, int],
) -> dict[int, int] | None:
    """Weighted min-cut over a linear cell order, or None when the
    balance constraint is unsatisfiable (caller falls back)."""
    n = len(order)
    if n < k:
        return None
    index = {cid: i for i, cid in enumerate(order)}

    # cross[p] = total weight of arcs spanning the boundary between
    # positions p-1 and p of the linear order (difference array)
    diff = [0] * (n + 2)
    for aid, arc in graph.arcs.items():
        a, b = sorted((index[arc.src], index[arc.dst]))
        if a != b:
            w = weights.get(aid, _STREAM_WEIGHT)
            diff[a + 1] += w
            diff[b + 1] -= w
    cross = [0] * (n + 1)
    run = 0
    for p in range(1, n + 1):
        run += diff[p]
        cross[p] = run

    lo, hi = _balance_bounds(n, k)

    # dp[j][i]: cheapest total boundary cost putting the first i cells
    # into j shards; a boundary placed before position i costs cross[i]
    dp = [[_INF] * (n + 1) for _ in range(k + 1)]
    back: list[list[int]] = [[-1] * (n + 1) for _ in range(k + 1)]
    for i in range(lo, min(hi, n) + 1):
        dp[1][i] = 0
    for j in range(2, k + 1):
        for i in range(j, n + 1):
            best, best_prev = _INF, -1
            for size in range(lo, hi + 1):
                prev = i - size
                if prev < j - 1:
                    break
                c = dp[j - 1][prev]
                if c is not _INF and c + cross[prev] < best:
                    best = c + cross[prev]
                    best_prev = prev
            dp[j][i] = best
            back[j][i] = best_prev
    if dp[k][n] == _INF:
        return None

    bounds = [n]
    i = n
    for j in range(k, 1, -1):
        i = back[j][i]
        if i < 0:
            return None
        bounds.append(i)
    bounds.append(0)
    bounds.reverse()

    owner: dict[int, int] = {}
    for shard in range(k):
        for pos in range(bounds[shard], bounds[shard + 1]):
            owner[order[pos]] = shard
    return owner
