"""Whole-program analysis reports.

:func:`analyze_program` bundles the static analyses into one structured
report for a compiled program: per-block structure (loop shapes and
their rate bounds), balance verification, buffering cost, traffic
estimate, and the end-to-end rate prediction -- the numbers a compiler
engineer would check before ever simulating.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Optional

from ..graph.opcodes import Op
from .traffic import TrafficReport, static_traffic_estimate


@dataclass
class BlockReport:
    name: str
    out_range: tuple[int, int]
    cells: int
    loop_length: Optional[int] = None
    loop_tokens: Optional[int] = None
    loop_rate_bound: Optional[Fraction] = None


@dataclass
class ProgramReport:
    """Static facts about one compiled program."""

    cells: int
    cells_expanded: int
    buffer_stages: int
    balanced: bool
    blocks: list[BlockReport] = field(default_factory=list)
    traffic: Optional[TrafficReport] = None
    #: min over blocks of their loop rate bounds (1/2 when loop-free)
    rate_bound: Fraction = Fraction(1, 2)

    @property
    def initiation_interval_bound(self) -> Fraction:
        return 1 / self.rate_bound

    @property
    def fully_pipelined(self) -> bool:
        return self.rate_bound == Fraction(1, 2)

    def summary(self) -> str:
        lines = [
            f"{self.cells} cells ({self.cells_expanded} expanded), "
            f"{self.buffer_stages} buffer stages, "
            f"balanced={self.balanced}, "
            f"II bound {self.initiation_interval_bound} "
            f"({'fully pipelined' if self.fully_pipelined else 'throttled'})"
        ]
        for b in self.blocks:
            loop = (
                f" loop {b.loop_length}/{b.loop_tokens} "
                f"(rate<={b.loop_rate_bound})"
                if b.loop_length
                else ""
            )
            lines.append(
                f"  {b.name}: [{b.out_range[0]},{b.out_range[1]}] "
                f"{b.cells} cells{loop}"
            )
        if self.traffic is not None:
            lines.append(f"  {self.traffic}")
        return "\n".join(lines)


def analyze_program(cp) -> ProgramReport:
    """Analyze a :class:`~repro.compiler.pipeline.CompiledProgram`."""
    from ..compiler.balance import verify_balanced

    g = cp.graph
    rate = Fraction(1, 2)
    blocks = []
    for name, art in cp.artifacts.items():
        loop = art.graph.meta.get("loop")
        br = BlockReport(
            name=name,
            out_range=(art.out_lo, art.out_hi),
            cells=len(art.graph),
        )
        if loop:
            br.loop_length = loop["length"]
            br.loop_tokens = loop["tokens"]
            br.loop_rate_bound = loop["rate_bound"]
            if loop["rate_bound"] is not None:
                rate = min(rate, loop["rate_bound"])
        blocks.append(br)
    return ProgramReport(
        cells=len(g),
        cells_expanded=g.cell_count(expanded=True),
        buffer_stages=sum(
            c.params["depth"] for c in g.cells_by_op(Op.FIFO)
        ),
        balanced=verify_balanced(g),
        blocks=blocks,
        traffic=static_traffic_estimate(g),
        rate_bound=rate,
    )
