"""Packet-traffic accounting (the paper's Section 2 claim).

*"In the case of application codes we have analyzed, one eighth or less
of the operation packets would be sent to the array memories."*

Every cell firing is one operation packet; its destination class
depends on the opcode: arithmetic/relational work goes to function
units, moves/gates/merges execute inside the processing element, and
array build/select operations go to array memory units.  This module
computes the breakdown from any simulator's firing counts (unit-delay
or event-driven).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..graph.graph import DataflowGraph
from ..graph.opcodes import (
    ARRAY_MEMORY_OPS,
    FUNCTION_UNIT_OPS,
    Op,
)


@dataclass
class TrafficReport:
    """Operation-packet counts by destination unit class."""

    to_function_units: int = 0
    to_array_memories: int = 0
    local: int = 0

    @property
    def total(self) -> int:
        return self.to_function_units + self.to_array_memories + self.local

    @property
    def am_fraction(self) -> float:
        """Fraction of operation packets sent to array memories; the
        paper reports <= 1/8 for application codes."""
        return self.to_array_memories / self.total if self.total else 0.0

    @property
    def fu_fraction(self) -> float:
        return self.to_function_units / self.total if self.total else 0.0

    def __str__(self) -> str:
        return (
            f"op packets: {self.total} total, "
            f"{self.to_function_units} to FUs ({self.fu_fraction:.1%}), "
            f"{self.to_array_memories} to AMs ({self.am_fraction:.1%}), "
            f"{self.local} local"
        )


def traffic_breakdown(
    g: DataflowGraph, fire_counts: dict[int, int]
) -> TrafficReport:
    """Classify every firing of ``g`` into its operation-packet class.

    SOURCE/SINK pseudo-cells model the block boundary, not machine
    instructions, so they are excluded; AM_READ/AM_WRITE *are* array
    memory instructions and are counted there.
    """
    report = TrafficReport()
    for cell in g:
        n = fire_counts.get(cell.cid, 0)
        if not n:
            continue
        if cell.op in (Op.SOURCE, Op.SINK, Op.CONST):
            continue
        if cell.op in ARRAY_MEMORY_OPS:
            report.to_array_memories += n
        elif cell.op in FUNCTION_UNIT_OPS and cell.op is not Op.ID:
            report.to_function_units += n
        else:
            report.local += n
    return report


def static_traffic_estimate(g: DataflowGraph) -> TrafficReport:
    """Breakdown assuming every cell fires equally often (steady state
    of a fully pipelined graph) -- a compile-time estimate."""
    return traffic_breakdown(g, {cid: 1 for cid in g.cells})
