"""Static initiation-interval analysis of instruction graphs.

The acknowledge discipline makes a machine-level data flow program a
*marked graph*: every destination arc holds at most one token, and the
reverse acknowledge path behaves like a complementary place.  Model:

* for every arc ``u -> v`` add a forward edge ``u -> v`` carrying the
  arc's initial token count (0 or 1), and a reverse edge ``v -> u``
  carrying ``1 - tokens`` (the free slot / pending acknowledge);
* each edge is one instruction time long.

The steady-state firing rate of every cell in a strongly connected
component is then the **minimum cycle mean** of token count over the
component's directed cycles (classic marked-graph result), and the
graph's rate is the minimum over components reachable on the output
path.  This analysis reproduces the paper's numbers:

* a simple chain: each 2-edge forward/reverse loop carries one token ->
  rate 1/2 (the "two instruction times" refire period);
* Todd's 3-cell feedback loop with one initial value -> 1/3 (Section 7);
* the companion scheme's 4-cell loop with two values -> 2/4 = 1/2, and
  the reverse cycle of an *odd* 3-cell loop with two values -> 1/3,
  which is why the paper inserts an ID to make the loop even;
* an unbalanced fork/join: the cycle through the short arc's reverse
  edge has mean 1/3.

Gated (conditionally consumed/produced) arcs make the model an
approximation: the analysis treats them as unconditional, which matches
steady-state behaviour of the paper's constructions; the simulator is
the ground truth and the test suite cross-validates the two.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Optional

from ..errors import AnalysisError
from ..graph.graph import DataflowGraph
from ..graph.lower import lower_fifos
from ..graph.opcodes import Op

#: The machine's hard rate ceiling: one firing per two instruction times.
MAX_RATE = Fraction(1, 2)


@dataclass
class RateReport:
    """Outcome of the static rate analysis."""

    rate: Fraction                   # firings per instruction time
    critical_cycle: list[int]        # cell ids on a rate-limiting cycle
    n_components: int

    @property
    def initiation_interval(self) -> Fraction:
        if self.rate == 0:
            return Fraction(0)  # deadlocked; II undefined
        return 1 / self.rate

    @property
    def fully_pipelined(self) -> bool:
        return self.rate == MAX_RATE


def _marked_edges(g: DataflowGraph) -> list[tuple[int, int, int]]:
    """(src, dst, tokens) edges of the marked graph (forward + reverse)."""
    edges = []
    for arc in g.arcs.values():
        tokens = 1 if arc.has_initial else 0
        edges.append((arc.src, arc.dst, tokens))
        edges.append((arc.dst, arc.src, 1 - tokens))
    return edges


def _tarjan_sccs(nodes: list[int], adj: dict[int, list[tuple[int, int]]]) -> list[list[int]]:
    """Iterative Tarjan SCC over the adjacency (dst, tokens) lists."""
    index: dict[int, int] = {}
    low: dict[int, int] = {}
    on_stack: set[int] = set()
    stack: list[int] = []
    sccs: list[list[int]] = []
    counter = 0

    for root in nodes:
        if root in index:
            continue
        work: list[tuple[int, int]] = [(root, 0)]
        while work:
            v, pi = work[-1]
            if pi == 0:
                index[v] = low[v] = counter
                counter += 1
                stack.append(v)
                on_stack.add(v)
            advanced = False
            neighbors = adj.get(v, [])
            while pi < len(neighbors):
                w = neighbors[pi][0]
                pi += 1
                if w not in index:
                    work[-1] = (v, pi)
                    work.append((w, 0))
                    advanced = True
                    break
                if w in on_stack:
                    low[v] = min(low[v], index[w])
            if advanced:
                continue
            work.pop()
            if low[v] == index[v]:
                comp = []
                while True:
                    w = stack.pop()
                    on_stack.discard(w)
                    comp.append(w)
                    if w == v:
                        break
                sccs.append(comp)
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[v])
    return sccs


def _karp_min_cycle_mean(
    comp: list[int], adj: dict[int, list[tuple[int, int]]]
) -> tuple[Optional[Fraction], list[int]]:
    """Karp's minimum cycle mean on one SCC.

    Returns (mean, cycle) where ``mean`` is the minimum over directed
    cycles of (sum of edge token counts) / (number of edges), or None if
    the component has no cycle (single node without self-loop).
    """
    comp_set = set(comp)
    n = len(comp)
    if n == 1:
        v = comp[0]
        self_loops = [t for (w, t) in adj.get(v, []) if w == v]
        if not self_loops:
            return None, []
        return Fraction(min(self_loops), 1), [v]

    idx = {v: i for i, v in enumerate(comp)}
    INF = float("inf")
    # d[k][i]: min token weight of a k-edge walk from a fixed root to i.
    d = [[INF] * n for _ in range(n + 1)]
    pred: list[list[Optional[int]]] = [[None] * n for _ in range(n + 1)]
    d[0][0] = 0.0  # root = comp[0]
    edges = [
        (idx[u], idx[w], t)
        for u in comp
        for (w, t) in adj.get(u, [])
        if w in comp_set
    ]
    for k in range(1, n + 1):
        dk, dk1, pk = d[k], d[k - 1], pred[k]
        for ui, wi, t in edges:
            cand = dk1[ui] + t
            if cand < dk[wi]:
                dk[wi] = cand
                pk[wi] = ui
    best_mean: Optional[Fraction] = None
    best_v = -1
    for v in range(n):
        if d[n][v] == INF:
            continue
        worst: Optional[Fraction] = None
        for k in range(n):
            if d[k][v] == INF:
                continue
            mean = Fraction(int(d[n][v] - d[k][v]), n - k)
            if worst is None or mean > worst:
                worst = mean
        if worst is not None and (best_mean is None or worst < best_mean):
            best_mean = worst
            best_v = v
    if best_mean is None:
        return None, []
    # Recover a cycle on the critical walk: walk the predecessor chain
    # back from best_v; within n+1 hops some vertex repeats, and the
    # portion between the repeats is a cycle of the critical mean.
    walk: list[int] = []
    pos: dict[int, int] = {}
    cycle: list[int] = []
    k, v = n, best_v
    while k >= 0:
        if v in pos:
            cycle = walk[pos[v]:]
            break
        pos[v] = len(walk)
        walk.append(v)
        p = pred[k][v]
        if p is None:
            break
        v = p
        k -= 1
    if not cycle:
        cycle = walk
    return best_mean, [comp[i] for i in cycle]


def analyze_rate(g: DataflowGraph, expand_fifos: bool = True) -> RateReport:
    """Compute the steady-state firing rate bound of ``g``.

    ``expand_fifos`` lowers FIFO(d) cells to their identity chains first
    so buffer capacity participates correctly in the cycle structure.
    """
    if expand_fifos and g.cells_by_op(Op.FIFO):
        g = lower_fifos(g)
    if not g.cells:
        raise AnalysisError("empty graph")

    adj: dict[int, list[tuple[int, int]]] = {}
    for src, dst, tokens in _marked_edges(g):
        adj.setdefault(src, []).append((dst, tokens))
    nodes = list(g.cells)

    sccs = _tarjan_sccs(nodes, adj)
    best: Optional[Fraction] = None
    best_cycle: list[int] = []
    for comp in sccs:
        mean, cycle = _karp_min_cycle_mean(comp, adj)
        if mean is None:
            continue
        if best is None or mean < best:
            best = mean
            best_cycle = cycle
    if best is None:
        # No cycles at all: cannot happen once reverse edges exist for
        # any arc; a graph with no arcs has undefined rate.
        raise AnalysisError("graph has no arcs; rate undefined")
    return RateReport(rate=best, critical_cycle=best_cycle, n_components=len(sccs))


def initiation_interval_bound(g: DataflowGraph) -> Fraction:
    """Shorthand: the analytical initiation interval (steps per result)."""
    return analyze_rate(g).initiation_interval


def is_fully_pipelined(g: DataflowGraph) -> bool:
    """True when the static bound equals the machine maximum of 1/2."""
    return analyze_rate(g).fully_pipelined
