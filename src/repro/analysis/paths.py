"""Path-balance checking for acyclic instruction graphs.

The paper (Section 3): *"For an instruction graph to be fully
pipelined, it is necessary that each path through the graph pass
through exactly the same number of instruction cells."*  These helpers
verify that property after the compiler's balancing pass and locate the
offending reconvergence when it fails.

Arc *weights* generalize the cell count by one instruction time per
hop; a FIFO(d) contributes d, and the compiler adds stream *phase
offsets* for gated array-window selection (see
:mod:`repro.compiler.balance`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from ..graph.cell import Arc
from ..graph.graph import DataflowGraph
from ..graph.opcodes import Op


@dataclass
class BalanceReport:
    """Result of :func:`check_balance`."""

    balanced: bool
    levels: dict[int, int]
    #: first arc found violating level consistency (None when balanced)
    violation: Optional[Arc] = None
    #: total slack over all arcs (0 when perfectly balanced)
    total_slack: int = 0


def default_arc_weight(g: DataflowGraph) -> Callable[[Arc], int]:
    """One instruction time per hop, plus the arc's phase extra
    (``arc.weight - 1``); a FIFO(d) destination counts d hops."""

    def weight(arc: Arc) -> int:
        dst = g.cells[arc.dst]
        hop = dst.params["depth"] if dst.op is Op.FIFO else 1
        return hop + (arc.weight - 1)

    return weight


def longest_path_levels(
    g: DataflowGraph,
    weight: Optional[Callable[[Arc], int]] = None,
    ignore_arcs: tuple[int, ...] = (),
) -> dict[int, int]:
    """Longest-path level of every cell (sources at level 0).

    This is the labeling used by the naive balancing algorithm: a cell's
    level is the latest over its input paths.
    """
    w = weight or default_arc_weight(g)
    ignored = set(ignore_arcs)
    levels: dict[int, int] = {}
    for cid in g.topo_order(ignore_arcs=ignored):
        level = 0
        for arc in g.in_arcs_of(cid):
            if arc.aid in ignored:
                continue
            level = max(level, levels[arc.src] + w(arc))
        levels[cid] = level
    return levels


def check_balance(
    g: DataflowGraph,
    weight: Optional[Callable[[Arc], int]] = None,
    ignore_arcs: tuple[int, ...] = (),
) -> BalanceReport:
    """Check the equal-path-length property of an acyclic graph.

    A graph is balanced when a consistent level assignment exists with
    ``level(dst) == level(src) + weight(arc)`` on every arc -- i.e. all
    reconvergent paths have equal weighted length.  Sources are anchored
    at their longest-path level so independent sources may sit at
    different levels (they are self-paced).
    """
    w = weight or default_arc_weight(g)
    ignored = set(ignore_arcs)
    levels = longest_path_levels(g, w, ignore_arcs=tuple(ignored))
    total_slack = 0
    violation: Optional[Arc] = None
    for arc in g.arcs.values():
        if arc.aid in ignored:
            continue
        slack = levels[arc.dst] - levels[arc.src] - w(arc)
        if slack != 0 and violation is None:
            violation = arc
        total_slack += max(slack, 0)
    return BalanceReport(
        balanced=violation is None,
        levels=levels,
        violation=violation,
        total_slack=total_slack,
    )


def pipeline_depth(g: DataflowGraph, ignore_arcs: tuple[int, ...] = ()) -> int:
    """Weighted longest path (instruction times from source to sink)."""
    levels = longest_path_levels(g, ignore_arcs=ignore_arcs)
    return max(levels.values(), default=0)


def count_buffer_cells(g: DataflowGraph) -> int:
    """Total identity/buffer stages in the graph (FIFO depths + plain
    IDs), the cost metric minimized by optimal balancing (Section 8)."""
    total = 0
    for cell in g:
        if cell.op is Op.FIFO:
            total += cell.params["depth"]
        elif cell.op is Op.ID:
            total += 1
    return total
