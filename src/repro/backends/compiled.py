"""Compiled steady-state "turbo" backend.

The event machine spends almost all of a long run re-deriving the same
periodic steady state the paper proves exists (Theorems 1-4): after a
prologue, every ``II``-cycle period fires the same cells in the same
order, advancing each stream by a fixed element count.  This backend
executes the *same machine model* but recognizes the period and
fast-forwards over it:

1. **Detect** -- at every firing of the anchor source cell, take a
   structural signature of the whole machine state (operand occupancy,
   pending acknowledges, PE queues, in-flight events with
   time-relative stamps, unit pipelines, round-robin cursors) with
   data values abstracted away.  Three equally spaced identical
   signatures with identical counter deltas establish the period:
   ``r`` anchor elements every ``dt`` cycles.

2. **Validate** -- a period may be replayed ``J`` times only if
   nothing value-dependent changes across the replay.
   :func:`~repro.compiler.schedule.analyze_schedule` guarantees all
   control operands are fed verbatim from source streams, so the
   *future* control sequence is checked directly against
   ``C[i] == C[i - w]`` over the whole replay span (plus a margin
   covering in-flight tokens), and ``J`` is capped so no source
   exhausts and ``max_cycles`` behavior is preserved.

3. **Jump** -- shift every pending event, unit pipeline and the clock
   forward by ``J * dt``; scale every additive counter by ``J`` window
   deltas; extend each sink's arrival times by ``J`` shifted copies of
   the window's arrival pattern.  The machine then continues concrete
   execution (epilogue included) from a state bit-identical to the one
   the event machine would have reached.

Output *values* for the skipped elements come from the
:class:`~repro.compiler.schedule.StreamEvaluator`, whose batched Kahn
evaluation is schedule-independent and therefore bit-identical to the
machine's own arithmetic; the values the machine did compute before
the first jump are cross-checked against it before any jump is taken.

Any graph the analysis cannot prove replayable (computed controls,
DIV, array-memory writes), and any run whose schedule never settles
(data-dependent merges, tiny streams), simply executes concretely --
the backend is then the event machine with a disarmed detector, so
bit-identity holds trivially.
"""

from __future__ import annotations

import heapq
from typing import Any, Optional

from ..compiler.schedule import (
    ScheduleError,
    SteadySchedule,
    StreamEvaluator,
    analyze_schedule,
)
from ..errors import ReproError, SimulationError
from ..graph.cell import Cell
from ..machine.machine import Machine

#: fewer periods than this are not worth a jump's bookkeeping
_MIN_JUMP = 8
#: anchor firings examined before period detection gives up, keeping
#: never-periodic runs within a constant factor of plain event cost
_CALIBRATION_BUDGET = 4096
#: event kinds a clean (fault-free, checkpoint-free) run can have in
#: flight, with the argument positions that carry data values
_TICKERS = ("watchdog_tick", "checkpoint_tick")


def _values_equal(a: list, b: list) -> bool:
    """Elementwise equality where NaN matches NaN (both engines produce
    the identical NaN through the identical operation sequence)."""
    if len(a) != len(b):
        return False
    for x, y in zip(a, b):
        if x == y or (x != x and y != y):
            continue
        return False
    return True


class TurboMachine(Machine):
    """The event machine plus steady-state period detection and
    fast-forward.  Constructed exactly like :class:`Machine`; after
    :meth:`run`, :attr:`schedule` reports what the detector did and
    :meth:`finalize_values` must be called before reading outputs."""

    def __init__(self, graph, **kwargs) -> None:
        super().__init__(graph, **kwargs)
        self.schedule = SteadySchedule()
        self._cid_list = sorted(self.graph.cells)
        self._cid_index = {c: i for i, c in enumerate(self._cid_list)}
        self._sink_cids = sorted(self.sink_times)
        self._occ: dict[Any, list[tuple]] = {}
        self._anchor_fires = 0
        self._jumped = False
        self._eval_values: Optional[dict[int, list[Any]]] = None
        self._max_cycles_cap: Optional[int] = None
        analysis = analyze_schedule(self.graph, self.inputs)
        # any machinery with observable side effects during the skipped
        # window (fault injection, snapshots, event traces, the
        # retransmission layer) makes a jump unsound -- run concretely
        self._armed = (
            analysis.replayable
            and self.injector is None
            and self.ckpt is None
            and self.trace is None
            and not self._reliable
        )
        if not self._armed:
            self.schedule.fallback_reason = analysis.reason or (
                "fault injection, checkpointing, tracing or the "
                "reliability layer is active"
            )
            self._anchor = None
            self._src_cids: list[int] = []
            self._controls: list[tuple[int, list[bool]]] = []
            return
        self._anchor = analysis.anchor
        self.schedule.anchor = analysis.anchor
        self._src_cids = sorted(analysis.source_cids)
        #: (consumer cell id, boolean control sequence) per control arc
        self._controls = [
            (
                ca.dst,
                [
                    bool(v)
                    for v in self._source_seq(self.graph.cells[ca.source])
                ],
            )
            for ca in analysis.control_arcs
        ]

    # ------------------------------------------------------------------
    # hooks into the event machine
    # ------------------------------------------------------------------
    def run(self, max_cycles: int = 50_000_000, **kwargs):
        self._max_cycles_cap = max_cycles
        return super().run(max_cycles=max_cycles, **kwargs)

    def _fire(self, cell: Cell) -> None:
        if self._armed and cell.cid == self._anchor:
            self._on_anchor()
        super()._fire(cell)

    # ------------------------------------------------------------------
    # period detection
    # ------------------------------------------------------------------
    def _disarm(self, reason: str) -> None:
        self._armed = False
        self._occ.clear()
        if not self.schedule.jumps:
            self.schedule.fallback_reason = reason

    def _on_anchor(self) -> None:
        self._anchor_fires += 1
        if self._anchor_fires > _CALIBRATION_BUDGET:
            self._disarm(
                "no steady-state recurrence within the calibration "
                "budget"
            )
            return
        sig = self._signature()
        if sig is None:
            self._disarm("unexpected event kind in flight")
            return
        snaps = self._occ.setdefault(sig, [])
        snaps.append(self._snapshot())
        if len(snaps) > 3:
            snaps.pop(0)
        if len(snaps) == 3:
            self._maybe_jump(*snaps)

    def _signature(self) -> Optional[tuple]:
        """Structural machine state with values abstracted and times
        made clock-relative; two firings with equal signatures evolve
        through identical event schedules as long as their future
        control decisions agree."""
        T = self.now
        cells = []
        for cid in self._cid_list:
            st = self.cell_state[cid]
            cells.append(
                (tuple(sorted(st.operands)), st.acks_pending, st.queued)
            )
        heap = []
        for t, _seq, kind, args, _aux in sorted(self._events):
            if kind in _TICKERS:
                continue            # self-re-arming, state-independent
            if kind in ("dispatch", "deliver_ack"):
                a = args
            elif kind in ("record_sink", "deliver_results"):
                a = (args[0],)      # drop the data value
            else:
                return None
            heap.append((t - T, kind, a))
        return (
            tuple(cells),
            tuple(heap),
            tuple(tuple(q) for q in self._pe_queues),
            tuple(self._dispatch_pending),
            tuple(max(0, u.next_free - T) for u in self.pes),
            tuple(max(0, u.next_free - T) for u in self.fus),
            tuple(max(0, u.next_free - T) for u in self.ams),
            max(0, self._rn_next_free - T),
            self._fu_rr,
            self._am_rr,
        )

    def _snapshot(self) -> tuple:
        """Every additive counter plus stream cursors, for window-delta
        scaling.  Index layout is relied on by ``_maybe_jump`` /
        ``_apply_jump``: 0 anchor-fires, 1 clock, 2 packets, 3/4 PE
        busy/ops, 5/6 FU, 7/8 AM, 9 fire counts, 10 progress, 11 sink
        lengths, 12 source positions."""
        pk = self.packets
        return (
            self._anchor_fires,
            self.now,
            (pk.op_local, pk.op_fu, pk.op_am, pk.results, pk.acks),
            tuple(u.busy_cycles for u in self.pes),
            tuple(u.ops for u in self.pes),
            tuple(u.busy_cycles for u in self.fus),
            tuple(u.ops for u in self.fus),
            tuple(u.busy_cycles for u in self.ams),
            tuple(u.ops for u in self.ams),
            tuple(
                self.cell_state[c].fire_count for c in self._cid_list
            ),
            self._progress,
            tuple(len(self.sink_times[c]) for c in self._sink_cids),
            tuple(
                self.cell_state[c].source_pos for c in self._src_cids
            ),
        )

    @staticmethod
    def _window_delta(a: tuple, b: tuple) -> tuple:
        def diff(x, y):
            if isinstance(x, tuple):
                return tuple(diff(i, j) for i, j in zip(x, y))
            return y - x
        return tuple(diff(x, y) for x, y in zip(a[2:], b[2:]))

    # ------------------------------------------------------------------
    # jump validation
    # ------------------------------------------------------------------
    def _maybe_jump(self, s1: tuple, s2: tuple, s3: tuple) -> None:
        r = s3[0] - s2[0]
        dt = s3[1] - s2[1]
        if r <= 0 or dt <= 0:
            return
        if s2[0] - s1[0] != r or s2[1] - s1[1] != dt:
            return              # occurrences not equally spaced (yet)
        if self._window_delta(s1, s2) != self._window_delta(s2, s3):
            return
        J = self._max_jump(s2, s3, dt)
        if J < _MIN_JUMP:
            return
        if not self._values_ready():
            return              # evaluator refused; detector disarmed
        self._apply_jump(s2, s3, r, dt, J)

    def _max_jump(self, s2: tuple, s3: tuple, dt: int) -> int:
        """Largest period count the current state provably replays."""
        J = 1 << 60
        # no source may exhaust mid-replay (the drain runs concretely)
        for i, cid in enumerate(self._src_cids):
            dpos = s3[12][i] - s2[12][i]
            if dpos <= 0:
                continue
            remaining = (
                len(self._source_seq(self.graph.cells[cid]))
                - 1
                - s3[12][i]
            )
            J = min(J, remaining // dpos)
        # every control sequence must repeat with the period over the
        # whole replay span; the margin covers control tokens already
        # in flight (bounded by two per cell of the delivery chain)
        margin = 2 * len(self._cid_list) + 8
        for dst, trace in self._controls:
            di = self._cid_index[dst]
            w = s3[9][di] - s2[9][di]
            if w <= 0:
                continue
            b = s3[9][di]
            lim = len(trace)
            i = b
            while i < lim and trace[i] == trace[i - w]:
                i += 1
            J = min(J, ((i - b) - margin) // w)
        # a run the event machine would time out must still time out at
        # the same cycle, so never jump past the budget
        if self._max_cycles_cap is not None:
            J = min(J, (self._max_cycles_cap - self.now) // dt)
        return J

    def _values_ready(self) -> bool:
        """Run the stream evaluator (once) and cross-check it against
        every value the machine has computed so far; jumps are only
        taken when the two engines agree bit for bit on the prefix."""
        if self._eval_values is not None:
            return True
        try:
            values = StreamEvaluator(self.graph, self.inputs).run()
        except ScheduleError as exc:
            self._disarm(f"stream evaluation failed: {exc}")
            return False
        for cid in self._sink_cids:
            got = self.sink_values[cid]
            want = values[cid]
            if len(want) < len(got) or not _values_equal(
                got, want[: len(got)]
            ):
                self._disarm(
                    "stream evaluator disagrees with the machine's "
                    "value prefix"
                )
                return False
        self._eval_values = values
        return True

    # ------------------------------------------------------------------
    # the jump itself
    # ------------------------------------------------------------------
    def _apply_jump(
        self, s2: tuple, s3: tuple, r: int, dt: int, J: int
    ) -> None:
        T = self.now
        S = J * dt
        # shift every pending event; watchdog ticks instead advance to
        # their next cadence point at or after the new clock (they are
        # scheduled absolutely and must stay on multiples of the
        # interval, exactly as in the un-jumped run)
        I = self._wd_interval
        shifted = []
        for t, seq, kind, args, aux in self._events:
            if kind in _TICKERS:
                if t < T + S:
                    t += ((T + S - t + I - 1) // I) * I
            else:
                t += S
            shifted.append((t, seq, kind, args, aux))
        heapq.heapify(shifted)
        self._events = shifted
        self.now = T + S
        for pool in (self.pes, self.fus, self.ams):
            for u in pool:
                u.next_free += S
        if self.config.rn_bandwidth:
            self._rn_next_free += S
        # replay J windows' worth of every additive counter
        pk = self.packets
        pk2, pk3 = s2[2], s3[2]
        pk.op_local += J * (pk3[0] - pk2[0])
        pk.op_fu += J * (pk3[1] - pk2[1])
        pk.op_am += J * (pk3[2] - pk2[2])
        pk.results += J * (pk3[3] - pk2[3])
        pk.acks += J * (pk3[4] - pk2[4])
        for pool, bi, oi in (
            (self.pes, 3, 4), (self.fus, 5, 6), (self.ams, 7, 8)
        ):
            for u, b2, b3, o2, o3 in zip(
                pool, s2[bi], s3[bi], s2[oi], s3[oi]
            ):
                u.busy_cycles += J * (b3 - b2)
                u.ops += J * (o3 - o2)
        for cid, f2, f3 in zip(self._cid_list, s2[9], s3[9]):
            self.cell_state[cid].fire_count += J * (f3 - f2)
        self._progress += J * (s3[10] - s2[10])
        for cid, p2, p3 in zip(self._src_cids, s2[12], s3[12]):
            self.cell_state[cid].source_pos += J * (p3 - p2)
        # sink arrivals: J shifted copies of the window's pattern, with
        # value placeholders finalize_values() replaces
        for cid, L2, L3 in zip(self._sink_cids, s2[11], s3[11]):
            times = self.sink_times[cid]
            window = times[L2:L3]
            for j in range(1, J + 1):
                off = j * dt
                times.extend(t + off for t in window)
            self.sink_values[cid].extend([None] * (J * len(window)))
        self._wd_last = -1
        self._wd_stalls = 0
        self._jumped = True
        sch = self.schedule
        if sch.prologue_cycles is None:
            sch.prologue_cycles = T
            sch.period_cycles = dt
            sch.period_elements = r
        sch.jumps.append((T, J, S))
        # keep detecting: the drain may still expose another long
        # stretch (e.g. after a control-pattern change)
        self._occ.clear()
        self._anchor_fires = 0

    # ------------------------------------------------------------------
    # results
    # ------------------------------------------------------------------
    def finalize_values(self) -> None:
        """Replace post-jump placeholder sink values with the stream
        evaluator's results.  Must be called after :meth:`run`; a
        length mismatch means replay and evaluation diverged and is a
        loud internal error, never silent corruption."""
        if not self._jumped:
            return
        assert self._eval_values is not None
        for cid in self._sink_cids:
            vals = self.sink_values[cid]
            want = self._eval_values[cid]
            if len(want) != len(vals):
                raise SimulationError(
                    f"compiled backend internal error: sink cell {cid} "
                    f"timed {len(vals)} arrivals but evaluated "
                    f"{len(want)} values"
                )
            vals[:] = want


class CompiledBackend:
    """Steady-state schedule replay backend (``backend="compiled"``).

    Bit-identical to ``backend="event"`` -- values, sink times, cycle
    counts and statistics -- while skipping almost all steady-state
    event processing on periodic workloads.  Rejects every option it
    cannot honor exactly (faults, checkpoints, sharding, reliability,
    tracing)."""

    name = "compiled"

    def execute(self, request) -> Any:
        from ..api import RunResult

        request.reject(
            self.name, "shards", "faults", "checkpoint",
            "processes", "partition", "heal", "shard_config",
        )
        unsupported = sorted(set(request.options) - {"policy"})
        if unsupported:
            raise ReproError(
                f"backend {self.name!r} does not support option(s) "
                + ", ".join(repr(o) for o in unsupported)
            )
        machine = TurboMachine(
            request.graph,
            config=request.config,
            inputs=request.inputs,
            recovery=request.recovery,
            **{
                k: request.options[k]
                for k in ("policy",)
                if k in request.options
            },
        )
        if request.workload_id is not None:
            machine.workload_id = request.workload_id
        stats = machine.run(max_cycles=request.max_cycles or 50_000_000)
        machine.finalize_values()
        outputs = machine.outputs()
        return RunResult(
            backend=self.name,
            outputs=outputs,
            sink_times={
                s: list(machine.sink_arrival_times(s)) for s in outputs
            },
            cycles=stats.cycles,
            stats=stats,
            engine=machine,
        )
