"""Execution backends beyond the three built into the facade.

The facade (:mod:`repro.api`) registers each backend here in
:data:`repro.api.BACKENDS` behind a thin lazy-import proxy, so
``import repro`` stays cheap; external engines use the same
:func:`repro.api.register_backend` extension point.
"""

from .compiled import CompiledBackend, TurboMachine

__all__ = ["CompiledBackend", "TurboMachine"]
