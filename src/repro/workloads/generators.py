"""Random workload generators for benchmarks and fuzz tests.

Generation is deterministic given the ``random.Random`` instance, so
benchmarks are reproducible.
"""

from __future__ import annotations

import random
from typing import Optional

from ..graph.graph import DataflowGraph
from ..graph.opcodes import Op

_BIN_CHOICES = ["+", "-", "*"]
_LIT_CHOICES = ["1.", "2.", "0.5", "0.25", "3."]


def random_pe_source(
    rng: random.Random,
    depth: int = 3,
    arrays: tuple[str, ...] = ("A", "B"),
    offsets: tuple[int, ...] = (-1, 0, 1),
    allow_conditionals: bool = True,
) -> str:
    """A random primitive expression on ``i`` as Val source text."""

    def leaf() -> str:
        r = rng.random()
        if r < 0.4:
            name = rng.choice(arrays)
            off = rng.choice(offsets)
            if off == 0:
                return f"{name}[i]"
            return f"{name}[i{'+' if off > 0 else '-'}{abs(off)}]"
        if r < 0.7:
            return rng.choice(_LIT_CHOICES)
        return "(i * 0.5)"

    def expr(d: int) -> str:
        if d == 0:
            return leaf()
        r = rng.random()
        if allow_conditionals and r < 0.15:
            return (
                f"(if i < m / 2 then {expr(d - 1)} else {expr(d - 1)} endif)"
            )
        if allow_conditionals and r < 0.25:
            return (
                f"(if {rng.choice(arrays)}[i] > 0. then {expr(d - 1)} "
                f"else {expr(d - 1)} endif)"
            )
        if r < 0.35:
            return f"(let v : real := {expr(d - 1)} in (v + {leaf()}) endlet)"
        op = rng.choice(_BIN_CHOICES)
        return f"({expr(d - 1)} {op} {expr(d - 1)})"

    return expr(depth)


def random_forall_program(
    rng: random.Random,
    depth: int = 3,
    name: str = "Y",
    lo: str = "1",
    hi: str = "m",
) -> str:
    body = random_pe_source(rng, depth=depth)
    return (
        f"{name} : array[real] := forall i in [{lo}, {hi}] "
        f"construct {body} endall"
    )


def random_pipe_program(
    rng: random.Random,
    n_blocks: int = 4,
    depth: int = 2,
    include_recurrence: bool = True,
) -> str:
    """A random pipe-structured program: a chain/diamond of forall
    blocks over one external input, optionally ending in a simple
    for-iter block (Theorem 4 shape)."""
    blocks = []
    produced = ["U0"]
    for k in range(n_blocks - (1 if include_recurrence else 0)):
        name = f"Bk{k}"
        feeds = rng.sample(produced, k=min(len(produced), 2))
        arrays = tuple(feeds)
        body = random_pe_source(
            rng,
            depth=depth,
            arrays=arrays,
            offsets=(0,),
            allow_conditionals=False,
        )
        blocks.append(
            f"{name} : array[real] := forall i in [1, m] construct "
            f"{body} endall"
        )
        produced.append(name)
    if include_recurrence:
        src = produced[-1]
        blocks.append(
            f"""XR : array[real] :=
  for i : integer := 1; T : array[real] := [0: 0.] do
    if i < m then
      iter T := T[i: 0.5 * T[i-1] + {src}[i]]; i := i + 1 enditer
    else T[i: 0.5 * T[i-1] + {src}[i]]
    endif
  endfor"""
        )
    return ";\n".join(blocks)


def random_layered_graph(
    rng: random.Random,
    n_layers: int = 5,
    width: int = 4,
    skip_prob: float = 0.3,
) -> DataflowGraph:
    """A random layered instruction DAG (for balancing benchmarks):
    unit-weight cells with occasional layer-skipping arcs that create
    path imbalance."""
    g = DataflowGraph("random_dag")
    src = g.add_source("src", stream="x")
    fan = g.add_cell(Op.ID, name="fan")
    g.connect(src, fan, 0)
    prev_layer = [fan]
    all_layers = [prev_layer]
    for li in range(n_layers):
        layer = []
        for k in range(width):
            upstream = rng.choice(prev_layer)
            skip: Optional[int] = None
            if li >= 2 and rng.random() < skip_prob:
                skip_layer = all_layers[rng.randrange(0, li)]
                skip = rng.choice(skip_layer)
            if skip is not None and skip != upstream:
                cell = g.add_cell(Op.ADD, name=f"n{li}_{k}")
                g.connect(upstream, cell, 0)
                g.connect(skip, cell, 1)
            else:
                cell = g.add_cell(Op.ID, name=f"n{li}_{k}")
                g.connect(upstream, cell, 0)
            layer.append(cell)
        prev_layer = layer
        all_layers.append(layer)
    # join the last layer (and any dangling cells) into one sink stream
    dangling = [
        cid for cid in g.cells
        if not g.out_arcs[cid] and g.cells[cid].op is not Op.SINK
    ]
    acc = dangling[0]
    for cid in dangling[1:]:
        j = g.add_cell(Op.ADD, name=f"join{cid}")
        g.connect(acc, j, 0)
        g.connect(cid, j, 1)
        acc = j
    sink = g.add_sink("out", stream="y")
    g.connect(acc, sink, 0)
    return g


def random_recurrence_program(
    rng: random.Random,
    coeff_depth: int = 1,
) -> str:
    """A random *simple* for-iter (affine recurrence with PE
    coefficients)."""
    coeff = random_pe_source(
        rng, depth=coeff_depth, arrays=("A",), offsets=(0,),
        allow_conditionals=False,
    )
    offset = random_pe_source(
        rng, depth=coeff_depth, arrays=("B",), offsets=(0,),
        allow_conditionals=False,
    )
    element = f"(0.25 * ({coeff})) * T[i-1] + ({offset})"
    return f"""X : array[real] :=
  for i : integer := 1; T : array[real] := [0: 0.] do
    if i < m then
      iter T := T[i: {element}]; i := i + 1 enditer
    else T[i: {element}]
    endif
  endfor"""


def parallel_chain_graph(
    n_chains: int = 250,
    depth: int = 40,
    m: int = 4,
) -> DataflowGraph:
    """Many independent source -> ID-chain -> sink pipelines.

    The scaling workload for the sharded backend: with ``n_chains``
    disjoint components the partitioner cuts zero arcs, every shard
    runs its chains with no cross-shard traffic, and adaptive lockstep
    windows collapse the whole run into a handful of barriers -- so
    measured speedup reflects the event loops, not coordination.  The
    defaults build ``n_chains * (depth + 2)`` = 10500 cells, past the
    10^4-cell mark the ROADMAP's scaling exit criterion names.

    Deterministic by construction (pattern sources carry their own
    values), so repeated runs are bit-identical.
    """
    g = DataflowGraph("parallel_chains")
    for c in range(n_chains):
        values = [float((c * 31 + i * 7) % 97) * 0.5 for i in range(m)]
        prev = g.add_pattern_source(f"src{c}", values)
        for d in range(depth):
            cell = g.add_cell(Op.ID, name=f"c{c}_{d}")
            g.connect(prev, cell, 0)
            prev = cell
        sink = g.add_sink(f"out{c}", stream=f"y{c}", limit=m)
        g.connect(prev, sink, 0)
    return g
