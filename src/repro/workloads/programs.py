"""The paper's example programs as canonical Val sources.

These strings are the single source of truth used by tests, examples
and benchmarks.  ``m`` is the symbolic array-size parameter; pass it as
``params={'m': ...}`` to the interpreter/compiler.
"""

from __future__ import annotations

#: Section 3 / Figure 2 code fragment, wrapped in a forall so it forms a
#: block program operating element-wise on streams a and b:
#: ``let y : real := a*b in (y+2.)*(y-3.) endlet``.
FIG2_SOURCE = """
Y : array[real] :=
  forall i in [0, m - 1]
    y : real := a[i] * b[i]
  construct
    (y + 2.) * (y - 3.)
  endall
"""

#: Example 1 (Section 4): the primitive forall with boundary handling.
#: Builds A[0..m+1] from B[0..m+1] and C[0..m+1].
EXAMPLE1_SOURCE = """
A : array[real] :=
  forall i in [0, m + 1]        % range specification
    P : real :=                 % definition part
      if (i = 0) | (i = m + 1) then C[i]
      else
        0.25 * (C[i-1] + 2. * C[i] + C[i+1])
      endif
  construct
    B[i] * (P * P)              % accumulation
  endall
"""

#: Example 2 (Section 4): the primitive for-iter expressing the first
#: order recurrence x_i = A[i] * x_{i-1} + B[i], x_0 = 0.
#: The terminating arm appends the final element (see DESIGN.md: the
#: paper's listing omits it, which would silently drop x_m).
EXAMPLE2_SOURCE = """
X : array[real] :=
  for
    i : integer := 1;           % loop initialization
    T : array[real] := [0: 0.]
  do
    let P : real := A[i] * T[i-1] + B[i]   % definition part
    in
      if i < m then             % loop body
        iter
          T := T[i: P];
          i := i + 1
        enditer
      else T[i: P]
      endif
    endlet
  endfor
"""

#: Example 2 exactly as printed in the paper (no final append): the
#: result then covers indices 0..m-1 only.
EXAMPLE2_PAPER_LITERAL_SOURCE = """
X : array[real] :=
  for
    i : integer := 1;
    T : array[real] := [0: 0.]
  do
    let P : real := A[i] * T[i-1] + B[i]
    in
      if i < m then
        iter T := T[i: P]; i := i + 1 enditer
      else T
      endif
    endlet
  endfor
"""

#: Figure 3: the pipe-structured program combining Examples 1 and 2 --
#: the forall feeds the for-iter.  Inputs B, C of [0, m+1]; D supplies
#: the recurrence's additive term.
FIG3_SOURCE = """
A : array[real] :=
  forall i in [0, m + 1]
    P : real :=
      if (i = 0) | (i = m + 1) then C[i]
      else
        0.25 * (C[i-1] + 2. * C[i] + C[i+1])
      endif
  construct
    B[i] * (P * P)
  endall;

X : array[real] :=
  for
    i : integer := 1;
    T : array[real] := [0: 0.]
  do
    let P : real := A[i] * T[i-1] + D[i]
    in
      if i < m then
        iter T := T[i: P]; i := i + 1 enditer
      else T[i: P]
      endif
    endlet
  endfor
"""

#: Figure 5 (Section 5): the conditional primitive expression with a
#: runtime (data-dependent) control stream C.
FIG5_SOURCE = """
Y : array[real] :=
  forall i in [0, m - 1]
  construct
    if C[i] then
      -(A[i] + B[i])
    else
      5. * (A[i] * B[i] + 2.)
    endif
  endall
"""

#: Figure 4 (Section 5): the array-selection expression from Example
#: 1's interior rule, on its own: 0.25*(C[i-1] + 2*C[i] + C[i+1]) for
#: i in [1, m], C indexed [0, m+1].
FIG4_SOURCE = """
S : array[real] :=
  forall i in [1, m]
  construct
    0.25 * (C[i-1] + 2. * C[i] + C[i+1])
  endall
"""

#: A pure first-order *additive* recurrence (prefix sums): x_i = x_{i-1}
#: + A[i].  Companion function exists with multiplicative part == 1.
PREFIX_SUM_SOURCE = """
S : array[real] :=
  for
    i : integer := 1;
    T : array[real] := [0: 0.]
  do
    if i < m then
      iter T := T[i: T[i-1] + A[i]]; i := i + 1 enditer
    else T[i: T[i-1] + A[i]]
    endif
  endfor
"""

#: A deeper pipe-structured program: four blocks in a diamond-shaped
#: flow dependency graph (used by the Theorem 4 and balancing benches).
DIAMOND_PIPE_SOURCE = """
U : array[real] :=
  forall i in [0, m + 1]
  construct
    0.5 * (C[i] + B[i])
  endall;

V : array[real] :=
  forall i in [1, m]
  construct
    U[i-1] + 2. * U[i] + U[i+1]
  endall;

W : array[real] :=
  forall i in [1, m]
  construct
    U[i] * U[i]
  endall;

Z : array[real] :=
  forall i in [1, m]
  construct
    V[i] - W[i]
  endall
"""

#: All canonical sources by short name (used by tests and the docs).
SOURCES = {
    "fig2": FIG2_SOURCE,
    "example1": EXAMPLE1_SOURCE,
    "example2": EXAMPLE2_SOURCE,
    "example2_paper": EXAMPLE2_PAPER_LITERAL_SOURCE,
    "fig3": FIG3_SOURCE,
    "fig4": FIG4_SOURCE,
    "fig5": FIG5_SOURCE,
    "prefix_sum": PREFIX_SUM_SOURCE,
    "diamond": DIAMOND_PIPE_SOURCE,
}
