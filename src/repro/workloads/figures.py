"""The paper-figure workloads as ready-to-run machine programs.

Each figure of the paper maps to one canonical Val source plus the
compile options that reproduce that figure's graph:

========  ==========================================================
figure    program
========  ==========================================================
fig2      Section 3 pipelined expression (``(y+2.)*(y-3.)``)
fig4      array-selection subgraph of Example 1's interior rule
fig5      conditional primitive with a runtime control stream
fig6      Example 1's primitive forall under the pipeline scheme
fig7      Example 2's for-iter under Todd's translation
========  ==========================================================

Used by the fault-injection suite and the ``repro faults`` CLI, which
must demonstrate recovery on every paper-figure workload.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any

from ..compiler import compile_program
from ..compiler.pipeline import CompiledProgram
from ..errors import ReproError
from .programs import SOURCES


@dataclass(frozen=True)
class FigureWorkload:
    """One figure's source and the options that reproduce its graph."""

    figure: str
    source_name: str
    compile_opts: dict[str, Any] = field(default_factory=dict)
    #: input streams that carry booleans instead of reals
    bool_inputs: tuple[str, ...] = ()

    def compile(self, m: int = 16) -> CompiledProgram:
        return compile_program(
            SOURCES[self.source_name], params={"m": m}, **self.compile_opts
        )

    def make_inputs(
        self, program: CompiledProgram, seed: int = 0
    ) -> dict[str, list[Any]]:
        """Deterministic pseudo-random inputs matching the input specs."""
        rng = random.Random(seed)
        inputs: dict[str, list[Any]] = {}
        for name, spec in program.input_specs.items():
            if name in self.bool_inputs:
                inputs[name] = [
                    rng.random() < 0.5 for _ in range(spec.length)
                ]
            else:
                inputs[name] = [
                    rng.uniform(-1.0, 1.0) for _ in range(spec.length)
                ]
        return inputs


FIGURES: dict[str, FigureWorkload] = {
    "fig2": FigureWorkload("fig2", "fig2"),
    "fig4": FigureWorkload("fig4", "fig4"),
    "fig5": FigureWorkload("fig5", "fig5", bool_inputs=("C",)),
    "fig6": FigureWorkload(
        "fig6", "example1", compile_opts={"forall_scheme": "pipeline"}
    ),
    "fig7": FigureWorkload(
        "fig7", "example2", compile_opts={"foriter_scheme": "todd"}
    ),
}


def figure_workload(name: str) -> FigureWorkload:
    try:
        return FIGURES[name]
    except KeyError:
        raise ReproError(
            f"unknown figure workload {name!r}; choose from {sorted(FIGURES)}"
        ) from None
