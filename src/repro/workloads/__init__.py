"""Workloads: the paper's example programs, application-style physics
pipelines, and random generators for benchmarks and fuzz tests."""

from .figures import FIGURES, FigureWorkload, figure_workload
from .generators import (
    parallel_chain_graph,
    random_forall_program,
    random_layered_graph,
    random_pe_source,
    random_pipe_program,
    random_recurrence_program,
)
from .physics import (
    WEATHER_STEP_SOURCE,
    am_backed,
    compile_weather_step,
    initial_weather_state,
    run_timesteps,
    weather_state_map,
)
from .programs import (
    DIAMOND_PIPE_SOURCE,
    EXAMPLE1_SOURCE,
    EXAMPLE2_PAPER_LITERAL_SOURCE,
    EXAMPLE2_SOURCE,
    FIG2_SOURCE,
    FIG3_SOURCE,
    FIG4_SOURCE,
    FIG5_SOURCE,
    PREFIX_SUM_SOURCE,
    SOURCES,
)

__all__ = [
    "DIAMOND_PIPE_SOURCE",
    "EXAMPLE1_SOURCE",
    "EXAMPLE2_PAPER_LITERAL_SOURCE",
    "EXAMPLE2_SOURCE",
    "FIG2_SOURCE",
    "FIG3_SOURCE",
    "FIG4_SOURCE",
    "FIG5_SOURCE",
    "FIGURES",
    "FigureWorkload",
    "figure_workload",
    "PREFIX_SUM_SOURCE",
    "SOURCES",
    "WEATHER_STEP_SOURCE",
    "am_backed",
    "parallel_chain_graph",
    "compile_weather_step",
    "initial_weather_state",
    "random_forall_program",
    "random_layered_graph",
    "random_pe_source",
    "random_pipe_program",
    "random_recurrence_program",
    "run_timesteps",
    "weather_state_map",
]
