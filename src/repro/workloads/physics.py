"""Application-style workloads: time-stepped physics pipelines.

Section 2 of the paper: arrays are streams between blocks; the array
memories hold only *long-lived* data, "for example, the data produced
by one time step of a physics simulation which will not be used until
the computation for the next time step begins", and on analyzed
application codes one eighth or less of the operation packets go to the
array memories.

This module builds such workloads: a pipe-structured program per time
step (several forall/for-iter blocks chained as streams), with the
state array read from array memory at the start of the step and the new
state written back at the end.  :func:`am_backed` converts a compiled
program's external sources/sink into AM instructions;
:func:`run_timesteps` drives the host loop.
"""

from __future__ import annotations

from typing import Any, Optional

from ..compiler import CompiledProgram, compile_program
from ..errors import SimulationError
from ..graph.graph import DataflowGraph
from ..graph.opcodes import Op
from ..machine import Machine, MachineConfig, MachineStats

#: One time step of a 1-D "weather-like" model: smooth the state with a
#: boundary-preserving stencil, form an energy-like quadratic, damp it
#: against the previous state, and integrate with a first-order
#: recurrence.  Four blocks -> the state flows as a stream between them
#: and touches array memory only at the step boundary.
WEATHER_STEP_SOURCE = """
S1 : array[real] :=
  forall i in [0, m + 1]
    P : real :=
      if (i = 0) | (i = m + 1) then U[i]
      else
        0.25 * (U[i-1] + 2. * U[i] + U[i+1])
      endif
  construct
    P
  endall;

S2 : array[real] :=
  forall i in [1, m + 1]
  construct
    S1[i] * S1[i] - 0.5 * S1[i]
  endall;

S3 : array[real] :=
  forall i in [1, m + 1]
  construct
    0.9 * S2[i] + 0.1 * U[i]
  endall;

V : array[real] :=
  for
    i : integer := 1;
    T : array[real] := [0: 0.5]
  do
    if i < m + 1 then
      iter T := T[i: 0.5 * T[i-1] + S3[i]]; i := i + 1 enditer
    else T[i: 0.5 * T[i-1] + S3[i]]
    endif
  endfor
"""


def compile_weather_step(m: int, **opts: Any) -> CompiledProgram:
    """Compile one time step of the weather-like model."""
    return compile_program(WEATHER_STEP_SOURCE, params={"m": m}, **opts)


def am_backed(
    cp: CompiledProgram,
    arrays: Optional[set[str]] = None,
) -> DataflowGraph:
    """A copy of the compiled graph with its external input sources and
    output sinks turned into array memory instructions.

    ``arrays`` restricts the conversion (default: every external input
    and every output) -- modeling which data is long-lived state.
    """
    g = cp.graph.copy()
    g.meta["feedback_arcs"] = list(cp.graph.meta.get("feedback_arcs", ()))
    # copy() renumbers; recompute feedback arcs structurally
    from ..compiler.foriter import _mark_feedback

    _mark_feedback(g)
    targets = arrays
    for cell in list(g.cells.values()):
        if cell.op is Op.SOURCE and "stream" in cell.params:
            name = cell.params["stream"]
            if targets is None or name in targets:
                cell.op = Op.AM_READ
        elif cell.op is Op.SINK:
            name = cell.params["stream"]
            if targets is None or name in targets:
                cell.op = Op.AM_WRITE
    return g


def run_timesteps(
    cp: CompiledProgram,
    state: dict[str, list[float]],
    state_map: dict[str, str],
    n_steps: int,
    config: Optional[MachineConfig] = None,
    am_arrays: Optional[set[str]] = None,
) -> tuple[dict[str, list[float]], list[MachineStats]]:
    """Drive ``n_steps`` time steps on the machine-level model.

    ``state`` holds the long-lived arrays (keyed by input name);
    ``state_map`` says which program output feeds which input at the
    next step (e.g. ``{"V": "U"}``).  Returns the final state and the
    per-step machine statistics.
    """
    g = am_backed(cp, arrays=am_arrays)
    stats_log: list[MachineStats] = []
    state = {k: list(v) for k, v in state.items()}
    for _step in range(n_steps):
        for name, spec in cp.input_specs.items():
            if len(state.get(name, [])) != spec.length:
                raise SimulationError(
                    f"state array {name!r} has {len(state.get(name, []))} "
                    f"elements; the step needs {spec.length}"
                )
        machine = Machine(g, config=config, inputs=state)
        stats_log.append(machine.run())
        outputs = machine.outputs()
        for out_name, in_name in state_map.items():
            new = outputs[out_name]
            spec = cp.input_specs[in_name]
            out_lo, _ = cp.output_specs[out_name]
            # align the produced range onto the consumed range
            offset = spec.lo - out_lo
            if offset < 0 or offset + spec.length > len(new):
                raise SimulationError(
                    f"output {out_name!r} ({len(new)} elements from "
                    f"{out_lo}) cannot cover input {in_name!r} "
                    f"[{spec.lo},{spec.hi}]"
                )
            state[in_name] = new[offset: offset + spec.length]
    return state, stats_log


def weather_state_map() -> dict[str, str]:
    return {"V": "U"}


def initial_weather_state(m: int, seed: int = 0) -> dict[str, list[float]]:
    import random

    rng = random.Random(seed)
    return {"U": [rng.uniform(0.0, 1.0) for _ in range(m + 2)]}
