"""repro -- Maximum Pipelining of Array Operations on a Static Data Flow Machine.

A from-scratch reproduction of Dennis & Gao (ICPP 1983 / MIT CSG Memo
233): a compiler from the Val array-language subset to machine-level
static dataflow programs that run fully pipelined, plus the simulators
and analyses needed to demonstrate the paper's theorems.

Quickstart
----------
>>> from repro import compile_program
>>> src = '''
... X : array[real] :=
...   for i : integer := 1; T : array[real] := [0: 0.] do
...     if i < m then
...       iter T := T[i: A[i] * T[i-1] + B[i]]; i := i + 1 enditer
...     else T[i: A[i] * T[i-1] + B[i]]
...     endif
...   endfor
... '''
>>> cp = compile_program(src, params={"m": 4})
>>> result = cp.run({"A": [1.0] * 4, "B": [1.0] * 4})
>>> result.outputs["X"].to_list()
[0.0, 1.0, 2.0, 3.0, 4.0]
>>> result.initiation_interval("X")  # 2.0 == maximally pipelined
2.0

Packages
--------
* :mod:`repro.val` -- Val frontend (parser, types, classification,
  reference interpreter);
* :mod:`repro.graph` -- machine-level instruction-graph IR;
* :mod:`repro.compiler` -- the paper's mapping schemes and balancing;
* :mod:`repro.sim` -- unit-delay ("instruction time") simulator;
* :mod:`repro.machine` -- event-driven packet-level machine model;
* :mod:`repro.faults` -- seeded fault plans and injection for the
  machine model's reliability layer;
* :mod:`repro.analysis` -- static rate / balance / traffic analyses;
* :mod:`repro.workloads` -- canonical programs and generators.
"""

from .compiler import CompiledProgram, ProgramResult, compile_program
from .errors import (
    AnalysisError,
    ClassificationError,
    CompileError,
    DeadlockError,
    GraphError,
    RecurrenceError,
    ReproError,
    SimulationError,
    SimulationTimeout,
    SnapshotError,
    ValSyntaxError,
    ValTypeError,
)
from .checkpoint import CheckpointConfig, replay_bundle
from .faults import FaultInjector, FaultPlan, FaultStats, UnitFault
from .machine import Machine, MachineConfig, run_machine
from .sim import RunResult, SyncSimulator, run_graph
from .val import ValArray, parse_program, run_program

__version__ = "1.0.0"

__all__ = [
    "AnalysisError",
    "CheckpointConfig",
    "ClassificationError",
    "CompileError",
    "CompiledProgram",
    "DeadlockError",
    "FaultInjector",
    "FaultPlan",
    "FaultStats",
    "GraphError",
    "Machine",
    "MachineConfig",
    "ProgramResult",
    "RecurrenceError",
    "ReproError",
    "RunResult",
    "SimulationError",
    "SimulationTimeout",
    "SnapshotError",
    "SyncSimulator",
    "UnitFault",
    "ValArray",
    "ValSyntaxError",
    "ValTypeError",
    "__version__",
    "compile_program",
    "parse_program",
    "replay_bundle",
    "run_graph",
    "run_machine",
    "run_program",
]
