"""repro -- Maximum Pipelining of Array Operations on a Static Data Flow Machine.

A from-scratch reproduction of Dennis & Gao (ICPP 1983 / MIT CSG Memo
233): a compiler from the Val array-language subset to machine-level
static dataflow programs that run fully pipelined, plus the simulators
and analyses needed to demonstrate the paper's theorems.

Quickstart
----------
>>> import repro
>>> src = '''
... X : array[real] :=
...   for i : integer := 1; T : array[real] := [0: 0.] do
...     if i < m then
...       iter T := T[i: A[i] * T[i-1] + B[i]]; i := i + 1 enditer
...     else T[i: A[i] * T[i-1] + B[i]]
...     endif
...   endfor
... '''
>>> cp = repro.compile_program(src, params={"m": 4})
>>> result = cp.run({"A": [1.0] * 4, "B": [1.0] * 4})
>>> result.outputs["X"].to_list()
[0.0, 1.0, 2.0, 3.0, 4.0]
>>> result.initiation_interval("X")  # 2.0 == maximally pipelined
2.0

Any compiled program (or raw graph, or Val source) also runs through
the unified backend facade -- the unit-delay simulator, the
packet-level machine, or K machine shards in separate processes::

    result = repro.run(src, {"A": [1.0] * 4, "B": [1.0] * 4},
                       params={"m": 4}, backend="sharded", shards=4)

Packages
--------
* :mod:`repro.val` -- Val frontend (parser, types, classification,
  reference interpreter);
* :mod:`repro.graph` -- machine-level instruction-graph IR;
* :mod:`repro.compiler` -- the paper's mapping schemes and balancing;
* :mod:`repro.sim` -- unit-delay ("instruction time") simulator;
* :mod:`repro.machine` -- event-driven packet-level machine model;
* :mod:`repro.faults` -- seeded fault plans and injection for the
  machine model's reliability layer;
* :mod:`repro.analysis` -- static rate / balance / traffic analyses;
* :mod:`repro.workloads` -- canonical programs and generators.
"""

from .api import (
    BACKENDS,
    BackendProtocol,
    RunRequest,
    RunResult,
    register_backend,
    resume,
    run,
)
from .compiler import CompiledProgram, ProgramResult, compile_program
from .errors import (
    AnalysisError,
    ClassificationError,
    CompileError,
    DeadlockError,
    GraphError,
    RecurrenceError,
    ReproError,
    SimulationError,
    SimulationTimeout,
    SnapshotError,
    ValSyntaxError,
    ValTypeError,
)
from .checkpoint import CheckpointConfig, replay_bundle
from .client import ServeClient, connect
from .faults import FaultInjector, FaultPlan, FaultStats, UnitFault
from .machine import (
    Machine,
    MachineConfig,
    RecoveryPolicy,
    ShardConfig,
    ShardedRunner,
    TransportConfig,
    run_machine,
    run_sharded,
    shutdown_worker_pool,
)
from .sim import SyncSimulator, run_graph
from .val import ValArray, parse_program, run_program

__version__ = "1.0.0"

__all__ = [
    "AnalysisError",
    "BACKENDS",
    "BackendProtocol",
    "CheckpointConfig",
    "ClassificationError",
    "CompileError",
    "CompiledProgram",
    "DeadlockError",
    "FaultInjector",
    "FaultPlan",
    "FaultStats",
    "GraphError",
    "Machine",
    "MachineConfig",
    "ProgramResult",
    "RecoveryPolicy",
    "RecurrenceError",
    "ReproError",
    "RunRequest",
    "RunResult",
    "ServeClient",
    "ShardConfig",
    "ShardedRunner",
    "SimulationError",
    "SimulationTimeout",
    "SnapshotError",
    "SyncSimulator",
    "TransportConfig",
    "UnitFault",
    "ValArray",
    "ValSyntaxError",
    "ValTypeError",
    "__version__",
    "compile_program",
    "connect",
    "parse_program",
    "register_backend",
    "replay_bundle",
    "resume",
    "run",
    "run_graph",
    "run_machine",
    "run_program",
    "run_sharded",
    "shutdown_worker_pool",
]
