"""Dataflow instruction-graph IR for the static dataflow machine.

This package defines the machine-level program representation used by
both simulators and produced by the compiler: instruction cells
(:class:`~repro.graph.cell.Cell`), destination arcs with the
single-token acknowledge discipline (:class:`~repro.graph.cell.Arc`),
and the :class:`~repro.graph.graph.DataflowGraph` container.
"""

from .asm import from_asm, read_asm, to_asm, write_asm
from .cell import GATE_PORT, Arc, Cell
from .control import (
    add_pattern_source,
    build_todd_counter,
    first_k_pattern,
    last_k_pattern,
    pattern_to_str,
    predicate_pattern,
    str_to_pattern,
    window_pattern,
)
from .dot import to_dot, write_dot
from .graph import DataflowGraph, wire_merge
from .lower import lower_fifos, strip_names
from .opcodes import (
    ARRAY_MEMORY_OPS,
    BINARY_OPS,
    FUNCTION_UNIT_OPS,
    LOCAL_OPS,
    MERGE_CONTROL_PORT,
    MERGE_FALSE_PORT,
    MERGE_TRUE_PORT,
    UNARY_OPS,
    Op,
    apply_scalar,
    arity,
)
from .validate import check_stream_inputs, validate

__all__ = [
    "ARRAY_MEMORY_OPS",
    "Arc",
    "BINARY_OPS",
    "Cell",
    "DataflowGraph",
    "FUNCTION_UNIT_OPS",
    "GATE_PORT",
    "LOCAL_OPS",
    "MERGE_CONTROL_PORT",
    "MERGE_FALSE_PORT",
    "MERGE_TRUE_PORT",
    "Op",
    "UNARY_OPS",
    "add_pattern_source",
    "apply_scalar",
    "arity",
    "build_todd_counter",
    "check_stream_inputs",
    "first_k_pattern",
    "from_asm",
    "last_k_pattern",
    "lower_fifos",
    "pattern_to_str",
    "read_asm",
    "predicate_pattern",
    "str_to_pattern",
    "strip_names",
    "to_asm",
    "to_dot",
    "validate",
    "window_pattern",
    "wire_merge",
    "write_asm",
    "write_dot",
]
