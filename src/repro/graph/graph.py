"""The dataflow instruction graph container and builder API.

:class:`DataflowGraph` owns the cells and arcs of one machine-level
program (or of one program block before linking).  It offers a small
builder API used throughout the compiler:

>>> from repro.graph import DataflowGraph, Op
>>> g = DataflowGraph()
>>> a = g.add_source("a", stream="a")
>>> b = g.add_source("b", stream="b")
>>> m = g.add_cell(Op.MUL, name="mult")
>>> g.connect(a, m, 0); g.connect(b, m, 1)
>>> out = g.add_sink("y", stream="y")
>>> g.connect(m, out, 0)

Graphs can be merged (:meth:`absorb`), validated
(:func:`repro.graph.validate.validate`), lowered
(:func:`repro.graph.lower.lower_fifos`) and exported to Graphviz dot
(:func:`repro.graph.dot.to_dot`).
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, Optional

from ..errors import GraphError
from .cell import _NO_TOKEN, GATE_PORT, Arc, Cell
from .opcodes import (
    MERGE_CONTROL_PORT,
    MERGE_FALSE_PORT,
    MERGE_TRUE_PORT,
    Op,
)


class DataflowGraph:
    """A mutable machine-level dataflow program."""

    def __init__(self, name: str = "") -> None:
        self.name = name
        self.cells: dict[int, Cell] = {}
        self.arcs: dict[int, Arc] = {}
        #: (cid, port) -> Arc feeding that operand port
        self.in_arc: dict[tuple[int, int], Arc] = {}
        #: cid -> list of destination arcs, in insertion order
        self.out_arcs: dict[int, list[Arc]] = {}
        #: free-form metadata (stream ranges, block info, ...)
        self.meta: dict[str, Any] = {}
        self._next_cid = 0
        self._next_aid = 0

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_cell(
        self,
        op: Op,
        name: str = "",
        consts: Optional[dict[int, Any]] = None,
        gated: bool = False,
        **params: Any,
    ) -> int:
        """Add a cell and return its id."""
        cid = self._next_cid
        self._next_cid += 1
        self.cells[cid] = Cell(
            cid=cid,
            op=op,
            name=name,
            consts=dict(consts or {}),
            gated=gated,
            params=params,
        )
        self.out_arcs[cid] = []
        return cid

    def add_source(self, name: str, stream: str) -> int:
        """Add a SOURCE cell emitting the host stream named ``stream``."""
        return self.add_cell(Op.SOURCE, name=name, stream=stream)

    def add_pattern_source(self, name: str, values: list[Any]) -> int:
        """Add a SOURCE cell emitting a fixed (compile-time) value sequence.

        Used for the boolean control sequences of Figures 4-8 (``T..TFF``
        etc.), which the paper generates with Todd's counter subgraphs; we
        model them as pattern sources (see :mod:`repro.graph.control` for
        the Todd-style expansion).
        """
        return self.add_cell(Op.SOURCE, name=name, values=list(values))

    def add_const(self, value: Any, name: str = "") -> int:
        """Add a free-running CONST cell (rarely needed; prefer constant
        operands via ``consts``)."""
        return self.add_cell(Op.CONST, name=name or f"const_{value}", value=value)

    def add_sink(self, name: str, stream: str, limit: Optional[int] = None) -> int:
        """Add a SINK cell recording its input stream under key ``stream``.

        ``limit`` optionally declares how many tokens are expected, letting
        the simulator stop as soon as all sinks are satisfied.
        """
        params: dict[str, Any] = {"stream": stream}
        if limit is not None:
            params["limit"] = limit
        return self.add_cell(Op.SINK, name=name, **params)

    def add_fifo(self, depth: int, name: str = "") -> int:
        """Add a FIFO buffer cell of the given depth (chain of ``depth``
        identity cells, semantically)."""
        if depth < 1:
            raise GraphError(f"FIFO depth must be >= 1, got {depth}")
        return self.add_cell(Op.FIFO, name=name or f"fifo{depth}", depth=depth)

    def add_merge(self, name: str = "merge") -> int:
        """Add a MERGE cell (control = port 0, I1 = port 1, I2 = port 2)."""
        return self.add_cell(Op.MERGE, name=name)

    def connect(
        self,
        src: int,
        dst: int,
        dst_port: int = 0,
        tag: Optional[bool] = None,
        initial: Any = _NO_TOKEN,
        weight: int = 1,
    ) -> Arc:
        """Add a destination field from ``src`` to ``(dst, dst_port)``."""
        if src not in self.cells:
            raise GraphError(f"unknown source cell {src}")
        if dst not in self.cells:
            raise GraphError(f"unknown destination cell {dst}")
        key = (dst, dst_port)
        if key in self.in_arc:
            raise GraphError(
                f"port {dst_port} of cell {self.cells[dst].label} already driven"
            )
        dcell = self.cells[dst]
        if dst_port == GATE_PORT:
            dcell.gated = True
        elif dst_port < 0 or dst_port >= dcell.n_data_ports:
            raise GraphError(
                f"cell {dcell.label} ({dcell.op.value}) has no port {dst_port}"
            )
        if dst_port in dcell.consts:
            raise GraphError(
                f"port {dst_port} of cell {dcell.label} is a constant operand"
            )
        if tag is not None and not self.cells[src].gated:
            # Tagging a destination implies the source has a gate operand;
            # mark it so validation insists the gate port gets connected.
            self.cells[src].gated = True
        arc = Arc(
            aid=self._next_aid,
            src=src,
            dst=dst,
            dst_port=dst_port,
            tag=tag,
            initial=initial,
            weight=weight,
        )
        self._next_aid += 1
        self.arcs[arc.aid] = arc
        self.in_arc[key] = arc
        self.out_arcs[src].append(arc)
        return arc

    def connect_gate(self, src: int, dst: int, initial: Any = _NO_TOKEN) -> Arc:
        """Feed ``dst``'s gate control operand from ``src``."""
        return self.connect(src, dst, GATE_PORT, initial=initial)

    def set_const(self, cid: int, port: int, value: Any) -> None:
        """Bind a literal to an operand port (instruction immediate)."""
        if (cid, port) in self.in_arc:
            raise GraphError(f"port {port} of cell {cid} already driven by an arc")
        self.cells[cid].consts[port] = value

    # ------------------------------------------------------------------
    # editing (used by balancing / lowering passes)
    # ------------------------------------------------------------------
    def remove_arc(self, aid: int) -> Arc:
        arc = self.arcs.pop(aid)
        del self.in_arc[(arc.dst, arc.dst_port)]
        self.out_arcs[arc.src].remove(arc)
        return arc

    def remove_cell(self, cid: int) -> None:
        """Remove a cell and every arc touching it."""
        for arc in list(self.out_arcs.get(cid, [])):
            self.remove_arc(arc.aid)
        for (dst, _port), arc in list(self.in_arc.items()):
            if dst == cid:
                self.remove_arc(arc.aid)
        self.cells.pop(cid)
        self.out_arcs.pop(cid, None)

    def splice_fifo(self, aid: int, depth: int, name: str = "") -> int:
        """Replace arc ``aid`` by ``src -> FIFO(depth) -> dst``.

        Returns the new FIFO cell id.  The arc's tag stays on the upstream
        half (the gate decision is made at the original source); an initial
        token stays on the downstream half (nearest the consumer).
        """
        arc = self.remove_arc(aid)
        fifo = self.add_fifo(depth, name=name)
        self.connect(arc.src, fifo, 0, tag=arc.tag, weight=arc.weight)
        self.connect(fifo, arc.dst, arc.dst_port, initial=arc.initial)
        return fifo

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.cells)

    def __iter__(self) -> Iterator[Cell]:
        return iter(self.cells.values())

    def cells_by_op(self, op: Op) -> list[Cell]:
        return [c for c in self.cells.values() if c.op is op]

    def sources(self) -> list[Cell]:
        return self.cells_by_op(Op.SOURCE)

    def sinks(self) -> list[Cell]:
        return self.cells_by_op(Op.SINK)

    def find(self, name: str) -> Cell:
        for c in self.cells.values():
            if c.name == name:
                return c
        raise GraphError(f"no cell named {name!r}")

    def predecessors(self, cid: int) -> list[int]:
        return [
            arc.src
            for (dst, _p), arc in self.in_arc.items()
            if dst == cid
        ]

    def successors(self, cid: int) -> list[int]:
        return [arc.dst for arc in self.out_arcs[cid]]

    def in_arcs_of(self, cid: int) -> list[Arc]:
        cell = self.cells[cid]
        arcs = []
        for port in cell.all_ports():
            arc = self.in_arc.get((cid, port))
            if arc is not None:
                arcs.append(arc)
        return arcs

    def cell_count(self, *, expanded: bool = False) -> int:
        """Number of instruction cells; with ``expanded=True`` FIFO(d)
        counts as ``d`` cells (its identity-chain size)."""
        if not expanded:
            return len(self.cells)
        total = 0
        for c in self.cells.values():
            total += c.params.get("depth", 1) if c.op is Op.FIFO else 1
        return total

    # ------------------------------------------------------------------
    # composition
    # ------------------------------------------------------------------
    def absorb(self, other: "DataflowGraph") -> dict[int, int]:
        """Copy every cell/arc of ``other`` into this graph.

        Returns the mapping from ``other``'s cell ids to the new ids.
        ``other`` is left untouched.
        """
        mapping: dict[int, int] = {}
        for cid, cell in other.cells.items():
            new = self.add_cell(
                cell.op,
                name=cell.name,
                consts=cell.consts,
                gated=cell.gated,
                **cell.params,
            )
            mapping[cid] = new
        for arc in other.arcs.values():
            self.connect(
                mapping[arc.src],
                mapping[arc.dst],
                arc.dst_port,
                tag=arc.tag,
                initial=arc.initial,
                weight=arc.weight,
            )
        return mapping

    def copy(self) -> "DataflowGraph":
        g = DataflowGraph(self.name)
        g.meta = dict(self.meta)
        mapping = g.absorb(self)
        # absorb() assigns fresh consecutive ids; remember nothing else.
        assert all(old == new for old, new in mapping.items()) or True
        return g

    # ------------------------------------------------------------------
    # traversal helpers
    # ------------------------------------------------------------------
    def topo_order(self, *, ignore_arcs: Iterable[int] = ()) -> list[int]:
        """Topological order of cells, or :class:`GraphError` on a cycle.

        ``ignore_arcs`` lets callers break known feedback arcs (for-iter
        loops) before ordering the acyclic remainder.
        """
        ignored = set(ignore_arcs)
        indeg = {cid: 0 for cid in self.cells}
        succ: dict[int, list[int]] = {cid: [] for cid in self.cells}
        for arc in self.arcs.values():
            if arc.aid in ignored:
                continue
            indeg[arc.dst] += 1
            succ[arc.src].append(arc.dst)
        ready = sorted(cid for cid, d in indeg.items() if d == 0)
        order: list[int] = []
        while ready:
            cid = ready.pop()
            order.append(cid)
            for nxt in succ[cid]:
                indeg[nxt] -= 1
                if indeg[nxt] == 0:
                    ready.append(nxt)
        if len(order) != len(self.cells):
            raise GraphError("graph contains a cycle")
        return order

    def is_acyclic(self) -> bool:
        try:
            self.topo_order()
            return True
        except GraphError:
            return False

    def summary(self) -> str:
        """One-line description used by examples and dumps."""
        ops: dict[str, int] = {}
        for c in self.cells.values():
            ops[c.op.value] = ops.get(c.op.value, 0) + 1
        parts = ", ".join(f"{k}:{v}" for k, v in sorted(ops.items()))
        return (
            f"DataflowGraph({self.name or 'anon'}: {len(self.cells)} cells "
            f"[{parts}], {len(self.arcs)} arcs)"
        )


def wire_merge(
    g: DataflowGraph,
    merge: int,
    control: Optional[int] = None,
    true_in: Optional[int] = None,
    false_in: Optional[int] = None,
) -> None:
    """Convenience wiring of a MERGE cell's three operand ports."""
    if control is not None:
        g.connect(control, merge, MERGE_CONTROL_PORT)
    if true_in is not None:
        g.connect(true_in, merge, MERGE_TRUE_PORT)
    if false_in is not None:
        g.connect(false_in, merge, MERGE_FALSE_PORT)
