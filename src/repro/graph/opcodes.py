"""Instruction opcodes for the static dataflow machine.

The opcode set follows the machine-code diagrams of the paper (Figures 2,
4-8): arithmetic and relational operators executed by function units,
identity/buffer cells, the MERGE cell, boolean-gated destinations, and the
pseudo-cells (SOURCE/SINK/CONTROL) that model the boundary of a code block
where array values arrive and leave as streams of result packets.
"""

from __future__ import annotations

import enum
import math
import operator
from typing import Any, Callable


class Op(enum.Enum):
    """Operation code held in an instruction cell."""

    # -- arithmetic (executed by function units in the machine model) ------
    ADD = "add"
    SUB = "sub"
    MUL = "mul"
    DIV = "div"
    NEG = "neg"
    ABS = "abs"
    MIN = "min"
    MAX = "max"
    # -- relational / boolean ----------------------------------------------
    LT = "lt"
    LE = "le"
    GT = "gt"
    GE = "ge"
    EQ = "eq"
    NE = "ne"
    AND = "and"
    OR = "or"
    NOT = "not"
    # -- structural ----------------------------------------------------------
    ID = "id"          # identity; with a gate operand it is the paper's
    #                    boolean-controlled cell with T/F-tagged destinations
    FIFO = "fifo"      # depth-n buffer == chain of n identity cells
    MERGE = "merge"    # paper's merge: control M picks input I1 (T) or I2 (F)
    # -- boundary pseudo-cells ------------------------------------------------
    SOURCE = "source"  # emits successive elements of a host-provided stream
    SINK = "sink"      # absorbs and records a stream
    CONST = "const"    # emits the same literal every firing (free-running)
    # -- array memory (machine-level model only; behave like SOURCE/SINK in
    #    the unit-delay simulator) --------------------------------------------
    AM_READ = "am_read"    # reads successive elements of an array in AM
    AM_WRITE = "am_write"  # appends successive elements of an array in AM


#: Opcodes that compute a scalar from 2 operand ports.
BINARY_OPS: dict[Op, Callable[[Any, Any], Any]] = {
    Op.ADD: operator.add,
    Op.SUB: operator.sub,
    Op.MUL: operator.mul,
    Op.DIV: lambda a, b: a / b if isinstance(a, float) or isinstance(b, float) else _int_div(a, b),
    Op.MIN: min,
    Op.MAX: max,
    Op.LT: operator.lt,
    Op.LE: operator.le,
    Op.GT: operator.gt,
    Op.GE: operator.ge,
    Op.EQ: operator.eq,
    Op.NE: operator.ne,
    Op.AND: lambda a, b: bool(a) and bool(b),
    Op.OR: lambda a, b: bool(a) or bool(b),
}

#: Opcodes that compute a scalar from 1 operand port.
UNARY_OPS: dict[Op, Callable[[Any], Any]] = {
    Op.NEG: operator.neg,
    Op.ABS: abs,
    Op.NOT: lambda a: not bool(a),
    Op.ID: lambda a: a,
}

#: Opcodes whose operation packets are dispatched to a function unit in the
#: machine-level model (floating point / relational work).
FUNCTION_UNIT_OPS = frozenset(
    {
        Op.ADD,
        Op.SUB,
        Op.MUL,
        Op.DIV,
        Op.NEG,
        Op.ABS,
        Op.MIN,
        Op.MAX,
        Op.LT,
        Op.LE,
        Op.GT,
        Op.GE,
        Op.EQ,
        Op.NE,
        Op.AND,
        Op.OR,
        Op.NOT,
    }
)

#: Opcodes executed inside the processing element itself (moves/gates).
LOCAL_OPS = frozenset({Op.ID, Op.FIFO, Op.MERGE, Op.CONST, Op.SOURCE, Op.SINK})

#: Opcodes whose operation packets go to an array memory unit.
ARRAY_MEMORY_OPS = frozenset({Op.AM_READ, Op.AM_WRITE})


def _int_div(a: int, b: int) -> int:
    """Truncating integer division (Val semantics for integer '/')."""
    q = a / b
    return math.floor(q) if q >= 0 else -math.floor(-q)


def arity(op: Op) -> int:
    """Number of *data* operand ports for ``op`` (gate control excluded).

    MERGE reports 3 because its control operand is port 0 by convention;
    SOURCE/CONST report 0; SINK and unary operators report 1.
    """
    if op in BINARY_OPS:
        return 2
    if op in UNARY_OPS:
        return 1
    if op is Op.MERGE:
        return 3
    if op in (Op.SOURCE, Op.CONST, Op.AM_READ):
        return 0
    if op in (Op.SINK, Op.FIFO, Op.AM_WRITE):
        return 1
    raise ValueError(f"unknown opcode {op!r}")


def apply_scalar(op: Op, args: list[Any]) -> Any:
    """Evaluate a scalar opcode on concrete operand values."""
    if op in BINARY_OPS:
        return BINARY_OPS[op](args[0], args[1])
    if op in UNARY_OPS:
        return UNARY_OPS[op](args[0])
    raise ValueError(f"{op!r} is not a scalar operator")


#: Ports of the MERGE cell, by convention.
MERGE_CONTROL_PORT = 0
MERGE_TRUE_PORT = 1   # paper's I1: selected when control is true
MERGE_FALSE_PORT = 2  # paper's I2: selected when control is false
