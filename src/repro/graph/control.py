"""Boolean control sequences for gated cells and merges.

The machine-code graphs of Figures 4-8 are steered by finite boolean
sequences such as ``T..TFF`` (select the first m of m+2 array elements)
or ``FT..T`` (merge: take the initial value first, then the computed
stream).  The paper cites Todd's work for generating these sequences
with "straightforward arrangements of data flow instructions"; here we
provide both:

* compile-time pattern construction (:func:`window_pattern`,
  :func:`merge_boundary_pattern`, ...), emitted as pattern SOURCE cells;
* :func:`build_todd_counter`, a dataflow subgraph that *computes* the
  same sequence with a counter loop, demonstrating that control
  sequences are themselves ordinary dataflow code.
"""

from __future__ import annotations

from typing import Callable

from ..errors import GraphError
from .graph import DataflowGraph
from .opcodes import (
    MERGE_CONTROL_PORT,
    MERGE_FALSE_PORT,
    MERGE_TRUE_PORT,
    Op,
)


def window_pattern(stream_lo: int, stream_hi: int, use_lo: int, use_hi: int) -> list[bool]:
    """Selection pattern for a stream indexed ``[stream_lo, stream_hi]``
    of which only the window ``[use_lo, use_hi]`` is consumed.

    For the paper's ``C[i-1]`` access with ``i in [1, m]`` and ``C``
    indexed ``[0, m+1]``, the window is ``[0, m-1]`` and the pattern is
    ``T..TFF``::

        >>> window_pattern(0, 5, 0, 3)
        [True, True, True, True, False, False]
    """
    if not (stream_lo <= use_lo and use_hi <= stream_hi):
        raise GraphError(
            f"window [{use_lo},{use_hi}] outside stream [{stream_lo},{stream_hi}]"
        )
    if use_lo > use_hi:
        raise GraphError(f"empty selection window [{use_lo},{use_hi}]")
    return [use_lo <= i <= use_hi for i in range(stream_lo, stream_hi + 1)]


def predicate_pattern(lo: int, hi: int, pred: Callable[[int], bool]) -> list[bool]:
    """Pattern obtained by evaluating a predicate over an index range.

    Used for forall bodies whose conditional tests only the index
    variable (Example 1's ``(i = 0) | (i = m+1)``): the control sequence
    is known at compile time.
    """
    return [bool(pred(i)) for i in range(lo, hi + 1)]


def first_k_pattern(n: int, k: int, value: bool = False) -> list[bool]:
    """``value`` for the first ``k`` positions of ``n``, negated after.

    ``first_k_pattern(m+1, s)`` with ``value=False`` is the merge control
    ``F..FT..T`` that injects ``s`` initial values before switching to
    the computed stream (Figure 8's ``FFT...T``).
    """
    if not 0 <= k <= n:
        raise GraphError(f"k={k} outside [0,{n}]")
    return [value] * k + [not value] * (n - k)


def last_k_pattern(n: int, k: int, value: bool = False) -> list[bool]:
    """``not value`` until the last ``k`` positions (Figure 7's ``T..TF``
    feedback switch that drops the final element(s))."""
    if not 0 <= k <= n:
        raise GraphError(f"k={k} outside [0,{n}]")
    return [not value] * (n - k) + [value] * k


def pattern_to_str(pattern: list[bool]) -> str:
    """Render a pattern in the paper's notation, e.g. ``T..TFF``."""
    return "".join("T" if b else "F" for b in pattern)


def str_to_pattern(text: str) -> list[bool]:
    """Parse the paper's ``T``/``F`` notation (no ellipses)."""
    out = []
    for ch in text:
        if ch == "T":
            out.append(True)
        elif ch == "F":
            out.append(False)
        else:
            raise GraphError(f"bad pattern character {ch!r}")
    return out


def add_pattern_source(g: DataflowGraph, pattern: list[bool], name: str = "") -> int:
    """Emit a compile-time control pattern as a SOURCE cell."""
    label = name or f"ctl_{pattern_to_str(pattern[:6])}{'~' if len(pattern) > 6 else ''}"
    return g.add_pattern_source(label, pattern)


def build_todd_counter(
    g: DataflowGraph,
    lo: int,
    hi: int,
    cmp_op: Op,
    bound: int,
    name: str = "todd",
) -> int:
    """Build a counter subgraph that *computes* a control sequence.

    Emits, for ``i = lo .. hi``, the boolean value ``i <cmp_op> bound``.
    The counter is the classic static-dataflow loop: an ADD cell with a
    constant increment, a MERGE that injects the initial index, and a
    gated feedback destination that stops after ``hi``.

    Returns the cell id whose output carries the boolean sequence.  The
    subgraph is self-contained except for two pattern sources of length
    ``hi - lo + 1`` that steer the loop itself (initial injection and
    termination); in Todd's full construction those are tiny two-cell
    loops -- we use pattern sources to keep the demonstration focused on
    the computed comparison stream.
    """
    n = hi - lo + 1
    if n <= 0:
        raise GraphError(f"empty counter range [{lo},{hi}]")
    merge = g.add_merge(name=f"{name}_merge")
    inc = g.add_cell(Op.ADD, name=f"{name}_inc", consts={1: 1})
    cmp_cell = g.add_cell(cmp_op, name=f"{name}_cmp", consts={1: bound})
    # First value comes from the constant I2 operand (the initial index);
    # afterwards the incremented index is taken from I1.
    init_ctl = add_pattern_source(
        g, first_k_pattern(n, 1, value=False), name=f"{name}_initctl"
    )
    g.connect(init_ctl, merge, MERGE_CONTROL_PORT)
    g.set_const(merge, MERGE_FALSE_PORT, lo)
    g.connect(inc, merge, MERGE_TRUE_PORT)
    # The merge result feeds the comparison (the control consumer) and is
    # fed back through the increment, gated so the loop halts after hi.
    g.connect(merge, cmp_cell, 0)
    fb_ctl = add_pattern_source(
        g, last_k_pattern(n, 1, value=False), name=f"{name}_fbctl"
    )
    g.connect(fb_ctl, merge, -1)  # gate control on the merge itself
    g.connect(merge, inc, 0, tag=True)
    return cmp_cell
