"""Lowering passes on instruction graphs.

The compiler emits FIFO(d) cells as single nodes for readability and for
the balancing arithmetic; the real machine implements them as chains of
identity instruction cells.  :func:`lower_fifos` performs that expansion.
The shift-register FIFO implementation inside the simulator is checked
against the expanded form by the test suite (same timing, fewer Python
objects).
"""

from __future__ import annotations

from .graph import DataflowGraph
from .opcodes import Op


def lower_fifos(g: DataflowGraph) -> DataflowGraph:
    """Return a copy of ``g`` with every FIFO(d) expanded into d ID cells.

    The expansion preserves timing exactly: a FIFO(d) cell is *defined*
    as a chain of ``d`` identity cells (one token capacity and one
    instruction-time of latency per cell).
    """
    out = DataflowGraph(g.name)
    out.meta = dict(g.meta)
    mapping: dict[int, int] = {}          # old cid -> new cid (non-FIFO)
    fifo_ends: dict[int, tuple[int, int]] = {}  # old FIFO cid -> (head, tail)

    for cid, cell in g.cells.items():
        if cell.op is Op.FIFO:
            depth = cell.params["depth"]
            chain = [
                out.add_cell(Op.ID, name=f"{cell.label}_s{k}")
                for k in range(depth)
            ]
            for a, b in zip(chain, chain[1:]):
                out.connect(a, b, 0)
            fifo_ends[cid] = (chain[0], chain[-1])
        else:
            mapping[cid] = out.add_cell(
                cell.op,
                name=cell.name,
                consts=cell.consts,
                gated=cell.gated,
                **cell.params,
            )

    def head_of(cid: int) -> int:
        return fifo_ends[cid][0] if cid in fifo_ends else mapping[cid]

    def tail_of(cid: int) -> int:
        return fifo_ends[cid][1] if cid in fifo_ends else mapping[cid]

    for arc in g.arcs.values():
        src = tail_of(arc.src)
        if arc.dst in fifo_ends:
            out.connect(
                src, fifo_ends[arc.dst][0], 0,
                tag=arc.tag, initial=arc.initial, weight=arc.weight,
            )
        else:
            out.connect(
                src, mapping[arc.dst], arc.dst_port,
                tag=arc.tag, initial=arc.initial, weight=arc.weight,
            )
    # Silence unused-helper warning; head_of kept for symmetry/debugging.
    _ = head_of
    return out


def strip_names(g: DataflowGraph) -> DataflowGraph:
    """Return a copy of ``g`` with anonymous cells (used by benchmarks to
    measure name-independent behaviour and by fuzz tests)."""
    out = DataflowGraph(g.name)
    out.meta = dict(g.meta)
    mapping: dict[int, int] = {}
    for cid, cell in g.cells.items():
        mapping[cid] = out.add_cell(
            cell.op, name="", consts=cell.consts, gated=cell.gated, **cell.params
        )
    for arc in g.arcs.values():
        out.connect(
            mapping[arc.src], mapping[arc.dst], arc.dst_port,
            tag=arc.tag, initial=arc.initial, weight=arc.weight,
        )
    return out
