"""Instruction cells and arcs of a machine-level dataflow program.

A machine-level data flow program is a directed graph whose nodes are
*instruction cells* and whose arcs are the destination fields of those
cells (paper, Section 2).  Each arc also stands for the reverse
acknowledge path, so an arc can hold at most one data token at a time:
the producer may not fire again until the consumer has fired (sent its
acknowledge).

Cells may carry:

* **constant operands** -- literal values stored in the instruction's
  operand fields; they are always present and are never consumed (the
  static architecture's immediate operands);
* a **gate control operand** -- the paper's boolean operand that directs
  the result packet to destination arcs tagged ``T`` or ``F`` (Figures
  4-8).  Untagged arcs always receive the result.  If no destination
  matches the control value the result is discarded, which is how unused
  array elements are dropped so they "do not cause jams" (Section 5).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from .opcodes import Op, arity

#: Virtual port number of the gate control operand.
GATE_PORT = -1


class _NoTokenType:
    """Singleton sentinel for "no initial token" on an arc.

    Identity must survive pickling (checkpoint snapshots serialize whole
    graphs), so ``__new__`` always returns the one instance and pickle
    reduces to the constructor instead of copying object state.
    """

    _instance: Optional["_NoTokenType"] = None

    def __new__(cls) -> "_NoTokenType":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __reduce__(self):
        return (_NoTokenType, ())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<no-token>"


#: Sentinel for "no initial token" on an arc.
_NO_TOKEN = _NoTokenType()


@dataclass
class Cell:
    """One instruction cell.

    Attributes
    ----------
    cid:
        Integer id, unique within its graph.
    op:
        Opcode (:class:`repro.graph.opcodes.Op`).
    name:
        Optional human-readable label used in dumps and dot output.
    consts:
        Mapping of data-port number to literal operand value.
    gated:
        Whether the cell has a gate control operand (port ``GATE_PORT``).
    params:
        Opcode-specific parameters: ``depth`` for FIFO, ``stream`` for
        SOURCE/SINK/AM cells, ``values`` for pattern sources, ``value``
        for CONST, ``limit`` for bounded sources.
    """

    cid: int
    op: Op
    name: str = ""
    consts: dict[int, Any] = field(default_factory=dict)
    gated: bool = False
    params: dict[str, Any] = field(default_factory=dict)

    @property
    def n_data_ports(self) -> int:
        """Number of data operand ports this cell requires."""
        return arity(self.op)

    @property
    def label(self) -> str:
        return self.name or f"c{self.cid}"

    def data_ports(self) -> range:
        return range(self.n_data_ports)

    def all_ports(self) -> list[int]:
        ports = list(self.data_ports())
        if self.gated:
            ports.append(GATE_PORT)
        return ports

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        extra = ""
        if self.consts:
            extra += f" consts={self.consts}"
        if self.gated:
            extra += " gated"
        if self.params:
            extra += f" params={self.params}"
        return f"<Cell {self.cid} {self.op.value} {self.name!r}{extra}>"


@dataclass
class Arc:
    """A destination field: carries result packets src -> (dst, dst_port).

    ``tag`` is ``None`` for an unconditional destination, or ``True`` /
    ``False`` for a destination selected by the source cell's gate
    control operand.

    ``initial`` optionally pre-loads one data token on the arc before the
    program starts (used for loop initialization in feedback graphs and
    by the static rate analysis).

    ``weight`` is the arc's latency weight for the balancing pass: 1 for
    an ordinary destination, ``1 + 2*shift`` for a source-to-window-gate
    arc whose selection window starts ``shift`` positions into the
    stream (the skew the paper's Figure 4 FIFOs absorb).  The simulator
    ignores it.
    """

    aid: int
    src: int
    dst: int
    dst_port: int
    tag: Optional[bool] = None
    initial: Any = _NO_TOKEN
    weight: int = 1

    @property
    def has_initial(self) -> bool:
        return self.initial is not _NO_TOKEN

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        t = "" if self.tag is None else (" [T]" if self.tag else " [F]")
        i = f" init={self.initial!r}" if self.has_initial else ""
        return f"<Arc {self.aid} {self.src}->{self.dst}:{self.dst_port}{t}{i}>"
