"""Graphviz dot export for instruction graphs (debugging / documentation).

The rendering mirrors the paper's figures: boxes for instruction cells,
labels with the opcode and any constant operands, ``T``/``F`` edge
labels for gated destinations, and a dot on arcs carrying an initial
token.
"""

from __future__ import annotations

from .cell import GATE_PORT
from .graph import DataflowGraph
from .opcodes import Op

_SHAPE = {
    Op.SOURCE: "invhouse",
    Op.SINK: "house",
    Op.MERGE: "trapezium",
    Op.FIFO: "cds",
    Op.CONST: "plaintext",
    Op.AM_READ: "invhouse",
    Op.AM_WRITE: "house",
}


def _cell_label(cell) -> str:
    parts = [cell.op.value.upper()]
    if cell.op is Op.FIFO:
        parts = [f"FIFO({cell.params['depth']})"]
    if cell.op is Op.SOURCE and "values" in cell.params:
        vals = cell.params["values"]
        if all(isinstance(v, bool) for v in vals):
            text = "".join("T" if v else "F" for v in vals[:8])
            if len(vals) > 8:
                text += ".."
            parts = [f"ctl<{text}>"]
    for port, value in sorted(cell.consts.items()):
        parts.append(f"#{port}={value}")
    if cell.name:
        parts.append(cell.name)
    return "\\n".join(parts)


def to_dot(g: DataflowGraph, title: str = "") -> str:
    """Render ``g`` as Graphviz dot text."""
    lines = ["digraph dataflow {", "  rankdir=LR;", "  node [fontsize=10];"]
    if title or g.name:
        lines.append(f'  label="{title or g.name}";')
    for cell in g:
        shape = _SHAPE.get(cell.op, "box")
        lines.append(
            f'  n{cell.cid} [shape={shape}, label="{_cell_label(cell)}"];'
        )
    for arc in g.arcs.values():
        attrs = []
        label = ""
        if arc.tag is True:
            label = "T"
        elif arc.tag is False:
            label = "F"
        if arc.dst_port == GATE_PORT:
            attrs.append("style=dashed")
            label = (label + " gate").strip()
        elif g.cells[arc.dst].n_data_ports > 1:
            label = (label + f" :{arc.dst_port}").strip()
        if label:
            attrs.append(f'label="{label}"')
        if arc.has_initial:
            attrs.append('color=red')
            attrs.append(f'xlabel="({arc.initial})"')
        attr_text = f" [{', '.join(attrs)}]" if attrs else ""
        lines.append(f"  n{arc.src} -> n{arc.dst}{attr_text};")
    lines.append("}")
    return "\n".join(lines)


def write_dot(g: DataflowGraph, path: str, title: str = "") -> None:
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(to_dot(g, title))
