"""Well-formedness checks for dataflow instruction graphs.

The simulators assume the invariants enforced here; the compiler
validates every graph it emits (and the test suite validates every
hand-built graph).
"""

from __future__ import annotations

from ..errors import GraphError
from .cell import GATE_PORT
from .graph import DataflowGraph
from .opcodes import Op


def validate(g: DataflowGraph) -> None:
    """Raise :class:`GraphError` if ``g`` is malformed.

    Checks:

    * every data operand port of every cell is driven by exactly one arc
      or bound to a constant operand (SOURCE/CONST cells take none);
    * cells marked ``gated`` have their gate port driven; non-gated cells
      have no tagged destination arcs;
    * MERGE control ports are driven by a boolean-producing arc or const;
    * FIFO depths are positive; SOURCE cells carry a stream key or a
      value pattern; SINK cells carry a stream key;
    * arc endpoints exist and port bookkeeping is internally consistent.
    """
    for arc in g.arcs.values():
        if arc.src not in g.cells or arc.dst not in g.cells:
            raise GraphError(f"dangling arc {arc!r}")
        if g.in_arc.get((arc.dst, arc.dst_port)) is not arc:
            raise GraphError(f"in_arc index inconsistent for {arc!r}")
        if arc not in g.out_arcs[arc.src]:
            raise GraphError(f"out_arcs index inconsistent for {arc!r}")

    for cell in g:
        n_out = len(g.out_arcs[cell.cid])
        if cell.op is Op.SINK:
            if n_out:
                raise GraphError(f"SINK {cell.label} has destinations")
            if "stream" not in cell.params:
                raise GraphError(f"SINK {cell.label} lacks a stream key")
        if cell.op is Op.AM_WRITE and "stream" not in cell.params:
            raise GraphError(f"AM_WRITE {cell.label} lacks a stream key")
        if cell.op is Op.SOURCE:
            if ("stream" in cell.params) == ("values" in cell.params):
                raise GraphError(
                    f"SOURCE {cell.label} needs exactly one of stream=/values="
                )
        if cell.op is Op.AM_READ and "stream" not in cell.params:
            raise GraphError(f"AM_READ {cell.label} lacks a stream key")
        if cell.op is Op.CONST and "value" not in cell.params:
            raise GraphError(f"CONST {cell.label} lacks a value")
        if cell.op is Op.FIFO:
            depth = cell.params.get("depth", 0)
            if not isinstance(depth, int) or depth < 1:
                raise GraphError(f"FIFO {cell.label} has bad depth {depth!r}")
            if cell.gated:
                raise GraphError(
                    f"FIFO {cell.label} cannot be gated (gate the cell "
                    f"feeding it instead)"
                )

        # Operand coverage ------------------------------------------------
        for port in cell.data_ports():
            driven = (cell.cid, port) in g.in_arc
            has_const = port in cell.consts
            if driven and has_const:
                raise GraphError(
                    f"port {port} of {cell.label} both driven and constant"
                )
            if not driven and not has_const:
                raise GraphError(
                    f"port {port} of {cell.label} ({cell.op.value}) undriven"
                )
        for port in cell.consts:
            if port != GATE_PORT and port >= cell.n_data_ports:
                raise GraphError(
                    f"constant on nonexistent port {port} of {cell.label}"
                )

        # Gating ----------------------------------------------------------
        tagged = [a for a in g.out_arcs[cell.cid] if a.tag is not None]
        if cell.gated:
            if (cell.cid, GATE_PORT) not in g.in_arc and GATE_PORT not in cell.consts:
                raise GraphError(f"gated cell {cell.label} has undriven gate port")
        elif tagged:
            raise GraphError(
                f"cell {cell.label} has tagged destinations but no gate operand"
            )
        if cell.op in (Op.SOURCE, Op.CONST) and cell.gated:
            raise GraphError(f"{cell.op.value} cell {cell.label} cannot be gated")

    # every non-sink cell should have at least one destination; a result
    # with nowhere to go indicates a compiler bug (dead code).
    for cell in g:
        if cell.op in (Op.SINK, Op.AM_WRITE):
            continue
        if not g.out_arcs[cell.cid]:
            raise GraphError(f"cell {cell.label} ({cell.op.value}) has no destinations")


def check_stream_inputs(g: DataflowGraph, inputs: dict[str, list]) -> None:
    """Verify that ``inputs`` covers every SOURCE stream key of ``g``."""
    missing = []
    for cell in g.sources():
        key = cell.params.get("stream")
        if key is not None and key not in inputs:
            missing.append(key)
    for cell in g.cells_by_op(Op.AM_READ):
        key = cell.params["stream"]
        if key not in inputs:
            missing.append(key)
    if missing:
        raise GraphError(f"missing input streams: {sorted(set(missing))}")
