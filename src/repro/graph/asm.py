"""A textual assembly format for machine-level dataflow programs.

The static architecture loads instruction cells into fixed memory
locations before execution; ``dfasm`` is the loader's source format —
one directive per cell plus its operand/destination fields.  Useful for
inspecting compiled code, writing machine programs by hand, and storing
graphs in files.  ``to_asm``/``from_asm`` round-trip exactly
(graph isomorphism with identical ids, attributes and metadata keys).

Format::

    graph example1
    cell 0 source
      .name in_B
      .stream 'B'
    cell 1 id
      .name sel
      .gated
    cell 2 add
      .name add2
      .const 1 2.0
    cell 7 sink
      .name out
      .stream 'A'
      .limit 8
    arc 0 1 0
    arc 5 1 gate
    arc 1 2 0 tag=T weight=3
    arc 2 7 0 init=0.5
    meta feedback_arcs [3, 4]

Attribute values are Python literals (``ast.literal_eval``); arc lines
are ``arc <src> <dst> <port|gate> [tag=T|F] [weight=N] [init=<lit>]``.
"""

from __future__ import annotations

import ast
from typing import Any

from ..errors import GraphError
from .cell import GATE_PORT
from .graph import DataflowGraph
from .opcodes import Op


def _literal(value: Any) -> str:
    return repr(value)


def to_asm(g: DataflowGraph) -> str:
    """Serialize a graph to dfasm text."""
    lines = [f"graph {g.name or 'anon'}"]
    for cid in sorted(g.cells):
        cell = g.cells[cid]
        lines.append(f"cell {cid} {cell.op.value}")
        if cell.name:
            lines.append(f"  .name {cell.name}")
        if cell.gated:
            lines.append("  .gated")
        for port in sorted(cell.consts):
            lines.append(f"  .const {port} {_literal(cell.consts[port])}")
        for key in sorted(cell.params):
            lines.append(f"  .{key} {_literal(cell.params[key])}")
    for aid in sorted(g.arcs):
        arc = g.arcs[aid]
        port = "gate" if arc.dst_port == GATE_PORT else str(arc.dst_port)
        attrs = []
        if arc.tag is not None:
            attrs.append(f"tag={'T' if arc.tag else 'F'}")
        if arc.weight != 1:
            attrs.append(f"weight={arc.weight}")
        if arc.has_initial:
            attrs.append(f"init={_literal(arc.initial)}")
        tail = (" " + " ".join(attrs)) if attrs else ""
        lines.append(f"arc {arc.src} {arc.dst} {port}{tail}")
    arc_position = {aid: k for k, aid in enumerate(sorted(g.arcs))}
    for key in sorted(g.meta):
        value = g.meta[key]
        if key == "feedback_arcs":
            # arc ids are not stable across a round-trip; store positions
            # in the serialized arc order instead
            value = sorted(arc_position[aid] for aid in value)
        try:
            text = _literal(value)
            ast.literal_eval(text)
        except (ValueError, SyntaxError):
            continue  # non-literal metadata is not serialized
        lines.append(f"meta {key} {text}")
    return "\n".join(lines) + "\n"


_RESERVED_CELL_KEYS = {"name", "gated", "const"}


def from_asm(text: str) -> DataflowGraph:
    """Parse dfasm text back into a graph (ids preserved)."""
    g = DataflowGraph()
    id_map: dict[int, int] = {}
    pending: list[tuple[int, dict]] = []   # (declared id, spec)
    arcs: list[tuple[int, int, int, dict]] = []
    current: dict | None = None

    def flush_current() -> None:
        nonlocal current
        if current is not None:
            pending.append((current.pop("_id"), current))
            current = None

    for raw_no, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].rstrip()
        if not line.strip():
            continue
        indented = line.startswith((" ", "\t"))
        tokens = line.split()
        try:
            if indented:
                if current is None or not tokens[0].startswith("."):
                    raise GraphError("attribute line outside a cell block")
                key = tokens[0][1:]
                rest = line.split(None, 1)[1] if len(tokens) > 1 else ""
                if key == "gated":
                    current["gated"] = True
                elif key == "name":
                    current["name"] = rest.strip()
                elif key == "const":
                    port_text, value_text = rest.split(None, 1)
                    current.setdefault("consts", {})[int(port_text)] = (
                        ast.literal_eval(value_text)
                    )
                else:
                    current.setdefault("params", {})[key] = ast.literal_eval(
                        rest
                    )
                continue
            flush_current()
            kind = tokens[0]
            if kind == "graph":
                g.name = tokens[1] if len(tokens) > 1 else ""
            elif kind == "cell":
                current = {
                    "_id": int(tokens[1]),
                    "op": Op(tokens[2]),
                }
            elif kind == "arc":
                src, dst = int(tokens[1]), int(tokens[2])
                port = GATE_PORT if tokens[3] == "gate" else int(tokens[3])
                attrs: dict[str, Any] = {}
                for token in tokens[4:]:
                    key, _, value = token.partition("=")
                    if key == "tag":
                        attrs["tag"] = value == "T"
                    elif key == "weight":
                        attrs["weight"] = int(value)
                    elif key == "init":
                        attrs["initial"] = ast.literal_eval(value)
                    else:
                        raise GraphError(f"unknown arc attribute {key!r}")
                arcs.append((src, dst, port, attrs))
            elif kind == "meta":
                key = tokens[1]
                value_text = line.split(None, 2)[2]
                g.meta[key] = ast.literal_eval(value_text)
            else:
                raise GraphError(f"unknown directive {kind!r}")
        except GraphError:
            raise
        except Exception as exc:
            raise GraphError(f"dfasm line {raw_no}: {exc}") from exc
    flush_current()

    for declared, spec in sorted(pending):
        new = g.add_cell(
            spec["op"],
            name=spec.get("name", ""),
            consts=spec.get("consts"),
            gated=spec.get("gated", False),
            **spec.get("params", {}),
        )
        id_map[declared] = new
    for src, dst, port, attrs in arcs:
        try:
            g.connect(id_map[src], id_map[dst], port, **attrs)
        except KeyError as exc:
            raise GraphError(f"arc references unknown cell {exc}") from None
    # translate feedback arc *positions* (see to_asm) back into arc ids
    if "feedback_arcs" in g.meta:
        new_aids = sorted(g.arcs)
        try:
            g.meta["feedback_arcs"] = [
                new_aids[pos] for pos in g.meta["feedback_arcs"]
            ]
        except (TypeError, IndexError) as exc:
            raise GraphError(f"bad feedback_arcs metadata: {exc}") from None
    return g


def write_asm(g: DataflowGraph, path: str) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(to_asm(g))


def read_asm(path: str) -> DataflowGraph:
    with open(path, "r", encoding="utf-8") as fh:
        return from_asm(fh.read())
