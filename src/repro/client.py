"""Blocking client for a running ``repro serve`` daemon.

The submit/await API promised by the service layer::

    import repro

    with repro.connect("unix:/tmp/repro.sock") as client:
        job_id = client.submit(source, inputs={"A": a, "B": b},
                               params={"m": 8}, deadline=5.0)
        record = client.wait(job_id)          # raises typed ServeError
        streams = record["result"]["streams"]

or in one round trip ``client.submit_and_wait(...)``.  Typed job
failures (:class:`~repro.serve.protocol.ServerOverloaded`,
``JobDeadlineExceeded``, ``JobRetriesExhausted``, ...) re-raise on the
client as the same exception type the server recorded, so retry loops
can catch precisely.

Transport is one NDJSON frame per request over a unix or TCP socket;
replies are the CLI's stable ``--json`` envelope.
"""

from __future__ import annotations

import socket
import uuid
from typing import Any, Optional

from .serve.protocol import (
    JobSpec,
    ServeError,
    decode_line,
    encode_line,
    error_from_dict,
)

__all__ = ["ServeClient", "connect"]


class ServeClient:
    """One connection to a serve daemon; safe for sequential use."""

    def __init__(self, *, path: Optional[str] = None,
                 host: str = "127.0.0.1", port: Optional[int] = None,
                 timeout: float = 120.0) -> None:
        if path is None and port is None:
            raise ServeError("client needs a socket path or a port")
        self._path = path
        self._host = host
        self._port = port
        self._timeout = timeout
        self._sock: Optional[socket.socket] = None
        self._fh = None

    # -- plumbing ------------------------------------------------------
    def _ensure(self) -> None:
        if self._sock is not None:
            return
        if self._path is not None:
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.settimeout(self._timeout)
            sock.connect(self._path)
        else:
            sock = socket.create_connection(
                (self._host, self._port), timeout=self._timeout
            )
        self._sock = sock
        self._fh = sock.makefile("rb")

    def close(self) -> None:
        if self._fh is not None:
            try:
                self._fh.close()
            except OSError:
                pass
            self._fh = None
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def __enter__(self) -> "ServeClient":
        self._ensure()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def request(self, op: str, **fields: Any) -> dict[str, Any]:
        """One raw request/reply; returns the envelope ``result`` and
        raises the typed error when the envelope says ``ok: false``
        with an error payload."""
        self._ensure()
        payload = {"op": op}
        payload.update(fields)
        self._sock.sendall(encode_line(payload))
        line = self._fh.readline()
        if not line:
            raise ServeError("server closed the connection")
        reply = decode_line(line)
        result = reply.get("result", {})
        if not reply.get("ok") and isinstance(result, dict) \
                and "error" in result:
            raise error_from_dict(result["error"])
        return result

    # -- the submit/await API ------------------------------------------
    @staticmethod
    def _spec(source: str, *, inputs: dict[str, list],
              params: Optional[dict[str, int]] = None,
              kind: str = "foriter", tenant: str = "default",
              deadline: Optional[float] = None,
              options: Optional[dict[str, Any]] = None,
              faults: Optional[dict[str, Any]] = None,
              job_id: Optional[str] = None) -> dict[str, Any]:
        spec = JobSpec(
            id=job_id or uuid.uuid4().hex,
            source=source,
            kind=kind,
            tenant=tenant,
            params=dict(params or {}),
            inputs=inputs,
            options=dict(options or {}),
            deadline=deadline,
            faults=faults,
        )
        spec.validate()
        return spec.to_dict()

    def submit(self, source: str, **kwargs: Any) -> str:
        """Admit one job; returns its id (raises
        :class:`ServerOverloaded` when shed)."""
        job = self._spec(source, **kwargs)
        result = self.request("submit", job=job)
        return result["id"]

    def wait(self, job_id: str,
             timeout: Optional[float] = None) -> dict[str, Any]:
        """Block until the job's terminal record; a failed job
        re-raises its typed error, a successful one returns the
        record (``record["result"]["streams"]`` holds the values)."""
        fields: dict[str, Any] = {"id": job_id}
        if timeout is not None:
            fields["timeout"] = timeout
        record = self.request("wait", **fields)
        return self._unwrap(record)

    def submit_and_wait(self, source: str, **kwargs: Any) -> dict[str, Any]:
        """Admit + await in one round trip."""
        job = self._spec(source, **kwargs)
        record = self.request("submit_wait", job=job)
        return self._unwrap(record)

    @staticmethod
    def _unwrap(record: dict[str, Any]) -> dict[str, Any]:
        if not record.get("ok") and isinstance(record.get("error"), dict):
            raise error_from_dict(record["error"])
        return record

    # -- observability --------------------------------------------------
    def healthz(self) -> dict[str, Any]:
        return self.request("healthz")

    def stats(self) -> dict[str, Any]:
        return self.request("stats")

    def shutdown(self) -> dict[str, Any]:
        return self.request("shutdown")


def connect(address: str, *, timeout: float = 120.0) -> ServeClient:
    """Open a client from an address string.

    ``"unix:/path/to.sock"`` (or a bare path containing ``/``) for a
    unix socket; ``"host:port"`` or ``":port"`` for TCP.
    """
    if address.startswith("unix:"):
        return ServeClient(path=address[len("unix:"):], timeout=timeout)
    if "/" in address:
        return ServeClient(path=address, timeout=timeout)
    host, sep, port = address.rpartition(":")
    if not sep or not port.isdigit():
        raise ServeError(
            f"cannot parse address {address!r}; expected "
            f"'unix:/path', '/path', 'host:port' or ':port'"
        )
    return ServeClient(host=host or "127.0.0.1", port=int(port),
                       timeout=timeout)
