"""One entry point over the three execution backends.

The reproduction grew three ways to execute a compiled instruction
graph -- the unit-delay synchronous simulator (:mod:`repro.sim`), the
event-driven packet-level machine (:mod:`repro.machine`) and the
multi-process sharded runner (:mod:`repro.machine.sharded`).  They
share the graph IR and the stream protocol but historically each had
its own entry point, options and result shape.  :func:`run` unifies
them::

    import repro

    result = repro.run(source, params={"m": 100},
                       backend="sharded", shards=4)
    result.outputs["X"]            # same streams whatever the backend
    result.initiation_interval("X")
    result.to_json_dict()          # stable schema shared with the CLI

``program`` may be Val source text (compiled on the fly), an already
compiled :class:`~repro.compiler.CompiledProgram`, or a raw
:class:`~repro.graph.graph.DataflowGraph`.  Each backend is an object
satisfying :class:`BackendProtocol`, looked up in :data:`BACKENDS`;
:func:`register_backend` lets external code plug in another engine
(e.g. an accelerator bridge) without touching this module.

The older entry points (:func:`repro.sim.run_graph`,
:func:`repro.machine.run_machine`) still work but are deprecated thin
wrappers over this facade's engines.
"""

from __future__ import annotations

import dataclasses
import warnings
from dataclasses import dataclass, field
from typing import Any, Mapping, Optional, Protocol, Union

from .errors import ReproError
from .timing import steady_interval as _steady_interval

#: version of the dict produced by :meth:`RunResult.to_json_dict` (and
#: therefore of the CLI's ``--json`` output); bump on shape changes
RESULT_SCHEMA = 1


@dataclass
class RunResult:
    """Backend-independent outcome of one end-to-end run.

    ``cycles`` counts whatever clock the backend uses: instruction
    times for ``sync``, machine cycles for ``event`` and ``sharded``
    (so absolute numbers are comparable only within a backend, while
    initiation intervals are comparable across all of them under
    unit-time configs).
    """

    backend: str
    outputs: dict[str, list[Any]]
    #: per-stream arrival time of every output element
    sink_times: dict[str, list[int]]
    cycles: int
    stats: Any
    #: the engine that ran (SyncSimulator / Machine / ShardedRunner);
    #: backend-specific, for callers that need to dig deeper
    engine: Any = None
    shards: int = 1

    def initiation_interval(self, stream: Optional[str] = None) -> float:
        """Steady-state clock ticks between successive outputs of
        ``stream`` (the only output stream when omitted)."""
        return _steady_interval(self._times(stream))

    def throughput(self, stream: Optional[str] = None) -> float:
        """Outputs per clock tick in steady state: the reciprocal
        initiation interval.  An interval of exactly 0 (degenerate
        single-stage graphs whose outputs arrive simultaneously) is
        infinite throughput, not zero; an unmeasurable interval (NaN,
        fewer than three outputs) reports 0.0."""
        ii = self.initiation_interval(stream)
        if ii != ii:
            return 0.0
        if ii == 0:
            return float("inf")
        return 1.0 / ii

    def latency(self, stream: Optional[str] = None) -> int:
        """Tick at which the first output of ``stream`` arrived."""
        times = self._times(stream)
        if not times:
            raise ValueError(f"stream {stream!r} produced no outputs")
        return times[0]

    def _times(self, stream: Optional[str]) -> list[int]:
        if stream is None:
            if len(self.sink_times) != 1:
                raise ValueError(
                    f"stream must be named; outputs: "
                    f"{sorted(self.sink_times)}"
                )
            return next(iter(self.sink_times.values()))
        try:
            return self.sink_times[stream]
        except KeyError:
            raise ValueError(
                f"no output stream {stream!r}; outputs: "
                f"{sorted(self.sink_times)}"
            ) from None

    def to_json_dict(self) -> dict[str, Any]:
        """The stable JSON shape shared by the CLI's ``--json`` flag."""
        streams = {}
        for name in sorted(self.outputs):
            streams[name] = {
                "values": list(self.outputs[name]),
                "times": list(self.sink_times.get(name, [])),
            }
            ii = self.initiation_interval(name)
            streams[name]["initiation_interval"] = (
                None if ii != ii else round(ii, 6)
            )
        stats: dict[str, Any] = {
            "total_firings": getattr(self.stats, "total_firings", None),
            "summary": self.stats.summary()
            if hasattr(self.stats, "summary") else None,
        }
        recovery = getattr(self.stats, "recovery", None)
        if recovery is not None:
            stats["recovery"] = recovery.to_dict()
        return {
            "schema": RESULT_SCHEMA,
            "backend": self.backend,
            "shards": self.shards,
            "cycles": self.cycles,
            "streams": streams,
            "stats": stats,
        }


@dataclass
class RunRequest:
    """Everything a backend needs to execute one run (normalized by
    :func:`run`; ``graph`` and ``inputs`` are already stream-level)."""

    graph: Any
    inputs: dict[str, list[Any]]
    shards: int = 1
    config: Any = None                  # MachineConfig, machine backends
    faults: Any = None                  # FaultPlan
    recovery: bool = True
    checkpoint: Any = None              # CheckpointConfig
    max_cycles: Optional[int] = None
    processes: Optional[bool] = None    # sharded: real workers or not
    partition: str = "auto"             # sharded: partition scheme
    heal: Any = None                    # sharded: self-healing policy
    shard_config: Any = None            # sharded: ShardConfig|dict|JSON
    workload_id: Optional[str] = None
    options: dict[str, Any] = field(default_factory=dict)

    def reject(self, backend: str, *names: str) -> None:
        """Fail loudly on options the backend cannot honor -- silently
        dropping a fault plan or checkpoint config would let a caller
        believe a run was fault-injected or recoverable when it was
        neither.  A field is "set" when it differs from its dataclass
        default, so e.g. ``processes=True`` is caught on non-sharded
        backends while the default ``partition="auto"`` passes."""
        for name in names:
            if getattr(self, name) != _REQUEST_DEFAULTS[name]:
                raise ReproError(
                    f"backend {backend!r} does not support {name!r}"
                )


#: per-field "not set" values for :meth:`RunRequest.reject`; computed
#: from the dataclass itself so the check can never drift from the
#: actual defaults
_REQUEST_DEFAULTS: dict[str, Any] = {
    f.name: (
        f.default
        if f.default is not dataclasses.MISSING
        else f.default_factory()
    )
    for f in dataclasses.fields(RunRequest)
    if f.default is not dataclasses.MISSING
    or f.default_factory is not dataclasses.MISSING
}


class BackendProtocol(Protocol):
    """An execution engine pluggable into :func:`run`."""

    name: str

    def execute(self, request: RunRequest) -> RunResult:
        """Run to quiescence and report backend-independent results."""
        ...


class SyncBackend:
    """Unit-delay synchronous simulator (:mod:`repro.sim.sync`)."""

    name = "sync"

    def execute(self, request: RunRequest) -> RunResult:
        from .sim.sync import SyncSimulator

        request.reject(
            self.name, "shards", "config", "faults", "checkpoint",
            "processes", "partition", "heal", "shard_config",
        )
        sim = SyncSimulator(
            request.graph, request.inputs,
            **{k: request.options[k] for k in ("record_trace",)
               if k in request.options},
        )
        sim.run(max_steps=request.max_cycles or 1_000_000)
        records = {r.stream: r for r in sim.sink_records.values()}
        return RunResult(
            backend=self.name,
            outputs=sim.outputs(),
            sink_times={s: list(r.times) for s, r in records.items()},
            cycles=sim.stats.steps,
            stats=sim.stats,
            engine=sim,
        )


class EventBackend:
    """Single-process event-driven machine (:mod:`repro.machine`)."""

    name = "event"

    def execute(self, request: RunRequest) -> RunResult:
        from .machine.machine import Machine

        request.reject(
            self.name, "shards", "processes", "partition", "heal",
            "shard_config",
        )
        machine = Machine(
            request.graph,
            config=request.config,
            inputs=request.inputs,
            fault_plan=request.faults,
            recovery=request.recovery,
            checkpoint=request.checkpoint,
            **{k: request.options[k]
               for k in ("policy", "reliable", "trace")
               if k in request.options},
        )
        if request.workload_id is not None:
            machine.workload_id = request.workload_id
        stats = machine.run(max_cycles=request.max_cycles or 50_000_000)
        outputs = machine.outputs()
        return RunResult(
            backend=self.name,
            outputs=outputs,
            sink_times={
                s: list(machine.sink_arrival_times(s)) for s in outputs
            },
            cycles=stats.cycles,
            stats=stats,
            engine=machine,
        )


class ShardedBackend:
    """Multi-process sharded machine (:mod:`repro.machine.sharded`)."""

    name = "sharded"

    def execute(self, request: RunRequest) -> RunResult:
        from .machine.shard_config import (
            _SENTINEL,
            ShardConfig,
            merge_legacy,
        )
        from .machine.sharded import ShardedRunner

        def legacy(name: str) -> Any:
            # pass a legacy kwarg into the merge only when the caller
            # actually set it (real-default comparison, same rule as
            # RunRequest.reject)
            value = getattr(request, name)
            return value if value != _REQUEST_DEFAULTS[name] else _SENTINEL

        sc = merge_legacy(
            ShardConfig.coerce(request.shard_config),
            shards=legacy("shards"),
            partition=legacy("partition"),
            processes=legacy("processes"),
            heal=legacy("heal"),
        )
        runner = ShardedRunner(
            request.graph,
            request.inputs,
            config=request.config,
            fault_plan=request.faults,
            recovery=request.recovery,
            checkpoint=request.checkpoint,
            workload_id=request.workload_id,
            shard_config=sc,
            **{k: request.options[k] for k in ("policy",)
               if k in request.options},
        )
        stats = runner.run(max_cycles=request.max_cycles or 50_000_000)
        outputs = runner.outputs()
        return RunResult(
            backend=self.name,
            outputs=outputs,
            sink_times={
                s: list(runner.sink_arrival_times(s)) for s in outputs
            },
            cycles=stats.cycles,
            stats=stats,
            engine=runner,
            shards=sc.shards,
        )


class CompiledBackend:
    """Steady-state schedule replay (:mod:`repro.backends.compiled`):
    the event machine with whole steady-state periods fast-forwarded.
    Bit-identical to ``backend="event"`` in values, sink times, cycle
    counts and statistics."""

    name = "compiled"

    def execute(self, request: RunRequest) -> RunResult:
        from .backends.compiled import CompiledBackend as _Turbo

        return _Turbo().execute(request)


#: backend registry; :func:`run` resolves ``backend=`` names here
BACKENDS: dict[str, BackendProtocol] = {
    b.name: b
    for b in (
        SyncBackend(), EventBackend(), ShardedBackend(), CompiledBackend()
    )
}


def register_backend(backend: BackendProtocol) -> None:
    """Add (or replace) an engine under ``backend.name``."""
    BACKENDS[backend.name] = backend


def _normalize(program: Any, inputs: Optional[Mapping[str, Any]],
               params: Optional[Mapping[str, int]]) -> tuple[Any, dict]:
    """Accept Val source, a CompiledProgram or a raw graph; return the
    stream-level ``(graph, input streams)`` every backend consumes."""
    from .compiler.pipeline import CompiledProgram, compile_program
    from .graph.graph import DataflowGraph

    if isinstance(program, str):
        program = compile_program(program, params=dict(params or {}))
    if isinstance(program, CompiledProgram):
        return program.graph, program.prepare_inputs(dict(inputs or {}))
    if isinstance(program, DataflowGraph):
        if params:
            raise ReproError(
                "params= only applies when compiling Val source"
            )
        return program, {k: list(v) for k, v in (inputs or {}).items()}
    raise ReproError(
        f"cannot run a {type(program).__name__}; expected Val source, "
        f"a CompiledProgram or a DataflowGraph"
    )


def run(
    program: Any,
    inputs: Optional[Mapping[str, Any]] = None,
    *,
    backend: str = "event",
    shards: int = 1,
    params: Optional[Mapping[str, int]] = None,
    config: Any = None,
    faults: Any = None,
    recovery: bool = True,
    checkpoint: Any = None,
    max_cycles: Optional[int] = None,
    processes: Optional[bool] = None,
    partition: str = "auto",
    heal: Any = None,
    shard_config: Any = None,
    workload_id: Optional[str] = None,
    **options: Any,
) -> RunResult:
    """Run ``program`` on ``inputs`` with the chosen backend.

    ``backend``
        ``"sync"`` (unit-delay simulator), ``"event"`` (packet-level
        machine, the default), ``"sharded"`` (K event-driven workers
        over a warm pool) or ``"compiled"`` (the event machine with
        steady-state periods fast-forwarded; bit-identical to
        ``"event"``) -- or any name added via
        :func:`register_backend`.
    ``shard_config``
        Consolidated sharded-backend configuration: a
        :class:`~repro.machine.ShardConfig`, a plain dict, or a JSON
        string.  Covers shard count, partition scheme, worker
        processes, lockstep window mode, the warm worker pool, the
        transport (:class:`~repro.machine.TransportConfig`) and the
        self-healing :class:`~repro.machine.RecoveryPolicy`.
    ``shards`` / ``processes`` / ``partition`` / ``heal``
        Legacy sharded-backend knobs, kept as shims: each maps onto
        the corresponding ``ShardConfig`` field and, when passed
        explicitly, overrides it (``processes``, ``partition`` and
        ``heal`` emit a :class:`DeprecationWarning`; prefer
        ``shard_config``).  ``shards`` stays first-class.
    ``params``
        Compile-time constants, when ``program`` is Val source text.
    ``config`` / ``faults`` / ``recovery`` / ``checkpoint``
        Machine-backend knobs: :class:`~repro.machine.MachineConfig`,
        a seeded :class:`~repro.faults.FaultPlan`, the reliability
        layer switch, and a :class:`~repro.checkpoint.
        CheckpointConfig` for periodic (sharded: coordinated)
        snapshots.

    Unknown keyword options are passed through to the backend, which
    rejects what it cannot honor.
    """
    try:
        engine = BACKENDS[backend]
    except KeyError:
        raise ReproError(
            f"unknown backend {backend!r}; choose from "
            f"{sorted(BACKENDS)}"
        ) from None
    if shards != 1 and backend != "sharded":
        raise ReproError(
            f"shards={shards} needs backend='sharded', not {backend!r}"
        )
    if shards < 1:
        raise ReproError(f"shard count must be >= 1, got {shards}")
    if backend == "sharded":
        for name, value in (
            ("processes", processes), ("partition", partition),
            ("heal", heal),
        ):
            if value != _REQUEST_DEFAULTS[name]:
                warnings.warn(
                    f"run({name}=...) is deprecated; set "
                    f"ShardConfig.{'recovery' if name == 'heal' else name}"
                    " via shard_config= instead",
                    DeprecationWarning,
                    stacklevel=2,
                )
    graph, streams = _normalize(program, inputs, params)
    request = RunRequest(
        graph=graph,
        inputs=streams,
        shards=shards,
        config=config,
        faults=faults,
        recovery=recovery,
        checkpoint=checkpoint,
        max_cycles=max_cycles,
        processes=processes,
        partition=partition,
        heal=heal,
        shard_config=shard_config,
        workload_id=workload_id,
        options=dict(options),
    )
    return engine.execute(request)


def resume(
    directory: Union[str, Any],
    *,
    max_cycles: int = 50_000_000,
    allow_legacy: bool = False,
    heal: Any = None,
    shard_config: Any = None,
) -> RunResult:
    """Resume a checkpointed run -- single-machine or sharded -- from
    ``directory`` and run it to completion.

    Auto-detects the directory kind: a sharded manifest resumes the
    newest complete coordinated set via :meth:`~repro.machine.sharded.
    ShardedRunner.resume`; anything else resumes the newest
    single-machine snapshot via :meth:`~repro.machine.Machine.resume`.
    ``shard_config`` tunes the resumed runner (window mode, transport,
    pool, recovery); its shard count is ignored -- the snapshot set
    fixes K.  ``heal`` stays as a deprecated shim for
    ``shard_config.recovery``.
    """
    from .checkpoint.coordinator import is_sharded_dir
    from .machine.machine import Machine
    from .machine.sharded import ShardedRunner

    if is_sharded_dir(directory):
        if heal is not None:
            warnings.warn(
                "resume(heal=...) is deprecated; set "
                "ShardConfig.recovery via shard_config= instead",
                DeprecationWarning,
                stacklevel=2,
            )
        runner = ShardedRunner.resume(
            directory, allow_legacy=allow_legacy, heal=heal,
            shard_config=shard_config,
        )
        stats = runner.run(max_cycles=max_cycles)
        outputs = runner.outputs()
        return RunResult(
            backend="sharded",
            outputs=outputs,
            sink_times={
                s: list(runner.sink_arrival_times(s)) for s in outputs
            },
            cycles=stats.cycles,
            stats=stats,
            engine=runner,
            shards=len(runner.machines),
        )
    if heal is not None:
        raise ReproError(
            "heal= applies only to sharded checkpoint directories; "
            "single-machine runs are healed by 'repro supervise'"
        )
    if shard_config is not None:
        raise ReproError(
            "shard_config= applies only to sharded checkpoint "
            "directories"
        )
    machine = Machine.resume(directory, allow_legacy=allow_legacy)
    stats = machine.run(max_cycles=max_cycles)
    outputs = machine.outputs()
    return RunResult(
        backend="event",
        outputs=outputs,
        sink_times={
            s: list(machine.sink_arrival_times(s)) for s in outputs
        },
        cycles=stats.cycles,
        stats=stats,
        engine=machine,
    )


def serve_client(address: str, *, timeout: float = 120.0):
    """Submit/await client for a running ``repro serve`` daemon.

    Thin forwarder to :func:`repro.client.connect` so the service API
    lives behind the same facade as :func:`run`/:func:`resume`::

        with repro.api.serve_client("unix:/tmp/repro.sock") as client:
            job_id = client.submit(source, inputs=..., params=...)
            record = client.wait(job_id)
    """
    from .client import connect

    return connect(address, timeout=timeout)
