"""Command-line interface: compile, inspect, run and interpret Val
programs from the shell.

::

    python -m repro compile prog.val -p m=100 --describe --dot prog.dot
    python -m repro run prog.val -p m=100 --inputs inputs.json
    python -m repro run prog.val -p m=100 --backend sharded --shards 4
    python -m repro interpret prog.val -p m=100 --inputs inputs.json
    python -m repro simulate prog.dfasm --inputs inputs.json
    python -m repro faults fig6 --drop-result 0.05 --dup-result 0.05
    python -m repro checkpoint fig7 --dir ckpts --interval 5000
    python -m repro checkpoint fig7 --dir ckpts --backend sharded --shards 4
    python -m repro resume ckpts
    python -m repro replay ckpts
    python -m repro bisect ckpts --perturb-plan perturb.json
    python -m repro snapshot inspect ckpts/ckpt-000000005000.snap
    python -m repro snapshot migrate old-ckpts/
    python -m repro supervise fig7 --dir ckpts --interval 5000

``run`` accepts ``--backend {sync,event,sharded,compiled}``;
``checkpoint``, ``resume`` and ``supervise`` accept
``--backend {sync,event,sharded}`` (plus ``--shards K`` for the
sharded backend); ``resume`` auto-detects whether a directory holds
single-machine snapshots or coordinated shard sets.  ``run``,
``checkpoint``, ``resume``, ``replay`` and ``bisect`` accept
``--json``, which prints one stable JSON envelope to stdout (see
README "JSON output"): ``{"schema": 1, "command": ..., "ok": ...,
"result": ...}``.

Sharded ``checkpoint``/``resume`` runs self-heal in process by
default: a worker that dies or hangs mid-run is detected within the
``--heal-deadline``, every shard rolls back to the latest complete
coordinated set, and only the failed worker is respawned
(``--no-self-heal`` restores the die-with-exit-137 behavior;
``--heal-max-restarts`` and ``--degrade`` tune the escalation).
Chaos faults (``kill_shard``/``hang_shard``/``slow_shard`` entries in
a ``--plan`` file) exercise exactly this path deterministically.

While single-machine ``checkpoint``/``resume``/``supervise`` children
run, SIGUSR1 takes an out-of-band ``live-<cycle>.snap`` snapshot
without stopping the simulation.

Inputs are a JSON object mapping array names to lists (or to
``[lo, [values...]]`` pairs for arrays with a nonzero lower bound).
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import sys
from pathlib import Path
from typing import Any, Optional

from . import api
from .checkpoint import (
    EXIT_SNAPSHOT_UNLOADABLE,
    CheckpointConfig,
    Supervisor,
    SupervisorConfig,
    bisect_divergence,
    chain_status,
    fsck_directory,
    is_sharded_dir,
    latest_coordinated,
    migrate_snapshot,
    read_metadata,
    read_shard_manifest,
    rebase_snapshot,
    replay_bundle,
)
from .compiler import compile_program
from .errors import (
    EXIT_DIVERGED,
    EXIT_RUN_FAILED,
    EXIT_SHARD_CRASH,
    DeadlockError,
    ReproError,
    SimulationTimeout,
    SnapshotError,
)
from .faults import FaultPlan
from .graph.asm import read_asm, to_asm
from .graph.dot import to_dot
from .machine import (
    Machine,
    ShardConfig,
    ShardCrashError,
    ShardedRunner,
    ShardRecoveryPolicy,
    TransportConfig,
)
from .machine.shard_config import merge_legacy as _merge_shard_legacy
from .machine.machine import _run_machine
from .sim.runner import _run_graph
from .val import parse_program, run_program
from .val.values import ValArray
from .workloads.figures import FIGURES, figure_workload

def _parse_params(items: list[str]) -> dict[str, int]:
    params: dict[str, int] = {}
    for item in items:
        key, _, value = item.partition("=")
        if not value:
            raise SystemExit(f"bad --param {item!r}; expected name=value")
        params[key] = int(value)
    return params


def _load_inputs(path: Optional[str]) -> dict[str, Any]:
    if path is None:
        return {}
    with open(path, "r", encoding="utf-8") as fh:
        raw = json.load(fh)
    inputs: dict[str, Any] = {}
    for name, value in raw.items():
        if (
            isinstance(value, list)
            and len(value) == 2
            and isinstance(value[0], int)
            and isinstance(value[1], list)
        ):
            inputs[name] = (value[0], value[1])
        else:
            inputs[name] = value
    return inputs


def _emit_outputs(outputs: dict[str, Any]) -> None:
    rendered = {}
    for name, value in outputs.items():
        if isinstance(value, ValArray):
            rendered[name] = [value.lo, value.to_list()]
        else:
            rendered[name] = value
    json.dump(rendered, sys.stdout, indent=2, default=str)
    sys.stdout.write("\n")


def _emit_envelope(command: str, ok: bool, result: dict[str, Any]) -> None:
    """The one ``--json`` shape every subcommand shares (see README):
    the ``result`` payload varies by command, the envelope does not."""
    json.dump(
        {
            "schema": api.RESULT_SCHEMA,
            "command": command,
            "ok": ok,
            "result": result,
        },
        sys.stdout,
        indent=2,
        default=repr,
    )
    sys.stdout.write("\n")


def _machine_result(machine: Machine, stats: Any) -> api.RunResult:
    outputs = machine.outputs()
    return api.RunResult(
        backend="event",
        outputs=outputs,
        sink_times={
            s: list(machine.sink_arrival_times(s)) for s in outputs
        },
        cycles=stats.cycles,
        stats=stats,
        engine=machine,
    )


def _sharded_result(runner: ShardedRunner, stats: Any) -> api.RunResult:
    outputs = runner.outputs()
    return api.RunResult(
        backend="sharded",
        outputs=outputs,
        sink_times={
            s: list(runner.sink_arrival_times(s)) for s in outputs
        },
        cycles=stats.cycles,
        stats=stats,
        engine=runner,
        shards=len(runner.machines),
    )


def _compile_opts(args: argparse.Namespace) -> dict[str, Any]:
    opts: dict[str, Any] = {
        "forall_scheme": args.forall_scheme,
        "foriter_scheme": args.foriter_scheme,
        "balance": args.balance,
        "controls": getattr(args, "controls", "patterns"),
    }
    if args.distance is not None:
        opts["distance"] = args.distance
    return opts


def cmd_compile(args: argparse.Namespace) -> int:
    source = open(args.program, "r", encoding="utf-8").read()
    cp = compile_program(
        source, params=_parse_params(args.param), **_compile_opts(args)
    )
    if args.describe or not (args.output or args.dot):
        print(cp.describe())
    if args.output:
        with open(args.output, "w", encoding="utf-8") as fh:
            fh.write(to_asm(cp.graph))
        print(f"wrote {args.output}")
    if args.dot:
        with open(args.dot, "w", encoding="utf-8") as fh:
            fh.write(to_dot(cp.graph))
        print(f"wrote {args.dot}")
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    if args.backend != "sharded" and getattr(args, "shard_config", None):
        # mirror the facade: shard tuning on a non-sharded backend is
        # a loud error, never a silent no-op
        print(
            f"error: --shard-config requires --backend sharded "
            f"(got --backend {args.backend})",
            file=sys.stderr,
        )
        return 1
    source = open(args.program, "r", encoding="utf-8").read()
    cp = compile_program(
        source, params=_parse_params(args.param), **_compile_opts(args)
    )
    if args.backend == "sync" and not args.json:
        # historical stdout shape: ValArray outputs as [lo, [...]]
        result = cp.run(_load_inputs(args.inputs))
        _emit_outputs(result.outputs)
        if args.stats:
            for stream in result.outputs:
                print(
                    f"# {stream}: II = "
                    f"{result.initiation_interval(stream):.3f} "
                    f"instruction times/element",
                    file=sys.stderr,
                )
            print(
                f"# total: {result.stats.steps} instruction times, "
                f"{result.stats.total_firings} firings",
                file=sys.stderr,
            )
        return 0
    if args.backend == "sharded":
        # --shards overrides --shard-config JSON only when given
        # explicitly (its default 1 would otherwise mask the JSON)
        raw = getattr(args, "shard_config", None)
        shards = args.shards if (args.shards != 1 or not raw) else None
        result = api.run(
            cp,
            _load_inputs(args.inputs),
            backend="sharded",
            shard_config=_shard_config_from_args(args, shards=shards),
        )
    else:
        result = api.run(
            cp,
            _load_inputs(args.inputs),
            backend=args.backend,
            shards=args.shards,
        )
    if args.json:
        _emit_envelope("run", True, result.to_json_dict())
        return 0
    _emit_outputs(result.outputs)
    if args.stats:
        for stream in result.outputs:
            print(
                f"# {stream}: II = "
                f"{result.initiation_interval(stream):.3f} "
                f"cycles/element",
                file=sys.stderr,
            )
        print(f"# total: {result.cycles} cycles", file=sys.stderr)
    return 0


def cmd_interpret(args: argparse.Namespace) -> int:
    source = open(args.program, "r", encoding="utf-8").read()
    outputs = run_program(
        parse_program(source),
        inputs=_load_inputs(args.inputs),
        params=_parse_params(args.param),
    )
    _emit_outputs(outputs)
    return 0


def cmd_simulate(args: argparse.Namespace) -> int:
    g = read_asm(args.graph)
    streams = {}
    for name, value in _load_inputs(args.inputs).items():
        # raw machine graphs take plain streams; drop any lower-bound
        # annotation from the JSON form
        streams[name] = list(value[1]) if isinstance(value, tuple) else value
    res = _run_graph(g, streams)
    _emit_outputs(res.outputs)
    return 0


def _build_fault_plan(args: argparse.Namespace) -> FaultPlan:
    if args.plan:
        with open(args.plan, "r", encoding="utf-8") as fh:
            plan = FaultPlan.from_json(fh.read())
        if args.seed is not None:
            plan = FaultPlan.from_dict({**plan.to_dict(), "seed": args.seed})
        return plan
    return FaultPlan(
        seed=args.seed if args.seed is not None else 0,
        drop_result=args.drop_result,
        dup_result=args.dup_result,
        corrupt_result=args.corrupt_result,
        drop_ack=args.drop_ack,
        dup_ack=args.dup_ack,
    )


def _optional_fault_plan(args: argparse.Namespace) -> Optional[FaultPlan]:
    """A plan only when the user asked for one (flag or plan file)."""
    wants = args.plan or args.seed is not None or any(
        getattr(args, name)
        for name in ("drop_result", "dup_result", "corrupt_result",
                     "drop_ack", "dup_ack")
    )
    return _build_fault_plan(args) if wants else None


def cmd_faults(args: argparse.Namespace) -> int:
    workload = figure_workload(args.workload)
    program = workload.compile(m=args.size)
    inputs = workload.make_inputs(program, seed=args.input_seed)
    plan = _build_fault_plan(args)

    clean_out, clean_stats, _ = _run_machine(program.graph, inputs)
    print(
        f"# {args.workload}: fault-free run took {clean_stats.cycles} cycles",
        file=sys.stderr,
    )
    print(f"# plan: {plan.describe()}", file=sys.stderr)
    try:
        out, stats, _ = _run_machine(
            program.graph,
            inputs,
            fault_plan=plan,
            recovery=not args.no_recovery,
        )
    except DeadlockError as exc:
        print(f"stalled: {exc}", file=sys.stderr)
        return EXIT_RUN_FAILED
    ok = out == clean_out
    print(f"# faulty run took {stats.cycles} cycles", file=sys.stderr)
    if stats.reliability is not None:
        print(f"# {stats.reliability.summary()}", file=sys.stderr)
    if stats.faults is not None:
        print(f"# {stats.faults.summary()}", file=sys.stderr)
    print(
        "# outputs match fault-free run"
        if ok
        else "# OUTPUTS DIVERGED from fault-free run",
        file=sys.stderr,
    )
    _emit_outputs(out)
    return 0 if ok else EXIT_DIVERGED


def _install_live_snapshot_handler(machine: Machine) -> None:
    """Wire SIGUSR1 to an out-of-band snapshot of the running machine.

    A supervising process (or an operator) can snapshot a live run
    without stopping it: the handler only queues a request, which the
    event loop drains at its next safe point.  No-op on platforms
    without SIGUSR1 or off the main thread.
    """
    if machine.ckpt is None or not hasattr(signal, "SIGUSR1"):
        return

    def handler(signum, frame):
        try:
            machine.request_snapshot("sigusr1")
        except SnapshotError:
            pass        # manager detached mid-run; nothing to write to

    try:
        signal.signal(signal.SIGUSR1, handler)
    except ValueError:  # not the main thread
        pass


def _finish_run(machine: Machine, max_cycles: int,
                crash_at: Optional[int] = None,
                command: Optional[str] = None) -> int:
    """Run ``machine`` to completion, reporting failure snapshots."""
    _install_live_snapshot_handler(machine)
    try:
        stats = machine.run(max_cycles=max_cycles, crash_at=crash_at)
    except (DeadlockError, SimulationTimeout) as exc:
        print(f"failed: {exc}", file=sys.stderr)
        if exc.snapshot_path:
            print(f"# failure snapshot: {exc.snapshot_path}", file=sys.stderr)
        return EXIT_RUN_FAILED
    print(f"# completed at cycle {stats.cycles}", file=sys.stderr)
    if stats.checkpoints is not None:
        print(f"# {stats.checkpoints.summary()}", file=sys.stderr)
    if command is not None:
        _emit_envelope(
            command, True, _machine_result(machine, stats).to_json_dict()
        )
    else:
        _emit_outputs(machine.outputs())
    return 0


def _finish_sharded(runner: ShardedRunner, max_cycles: int,
                    crash_at: Optional[int] = None,
                    crash_shard: int = 0,
                    command: Optional[str] = None) -> int:
    """Run a sharded runner to completion; a dead worker exits like a
    SIGKILLed process so the supervisor restarts-and-resumes it."""
    try:
        stats = runner.run(
            max_cycles=max_cycles, crash_at=crash_at,
            crash_shard=crash_shard,
        )
    except ShardCrashError as exc:
        print(f"failed: {exc}", file=sys.stderr)
        return EXIT_SHARD_CRASH
    except (DeadlockError, SimulationTimeout) as exc:
        print(f"failed: {exc}", file=sys.stderr)
        return EXIT_RUN_FAILED
    print(f"# completed at cycle {stats.cycles}", file=sys.stderr)
    if stats.checkpoints is not None:
        print(f"# {stats.checkpoints.summary()}", file=sys.stderr)
    if stats.recovery is not None and stats.recovery.detections:
        print(f"# {stats.recovery.summary()}", file=sys.stderr)
    if command is not None:
        _emit_envelope(
            command, True, _sharded_result(runner, stats).to_json_dict()
        )
    else:
        _emit_outputs(runner.outputs())
    return 0


def _heal_from_args(args: argparse.Namespace):
    """Resolve the sharded backend's ``heal`` argument from the CLI:
    ``None`` (auto-enable with processes + checkpoints), ``False``
    (``--no-self-heal``), or a tuned :class:`ShardRecoveryPolicy`."""
    if getattr(args, "no_self_heal", False):
        return False
    tuned = {
        key: value
        for key, value in (
            ("deadline", getattr(args, "heal_deadline", None)),
            ("max_restarts", getattr(args, "heal_max_restarts", None)),
        )
        if value is not None
    }
    if getattr(args, "degrade", False):
        tuned["degrade"] = True
    if not tuned:
        return None
    return ShardRecoveryPolicy(**tuned)


def _shard_config_from_args(
    args: argparse.Namespace, *, shards: Optional[int] = None
) -> ShardConfig:
    """Build the consolidated :class:`ShardConfig` for a sharded CLI
    run: start from ``--shard-config`` JSON (when given), then let the
    individual flags (``--shards``, ``--window``, ``--max-window``,
    ``--no-warm-pool``, ``--transport`` and the heal flags) override
    the corresponding fields."""
    import dataclasses

    raw = getattr(args, "shard_config", None)
    sc = ShardConfig.from_json(raw) if raw else ShardConfig()
    updates: dict[str, Any] = {}
    if shards is not None:
        updates["shards"] = shards
    if getattr(args, "window", None):
        updates["window"] = args.window
    if getattr(args, "max_window", None) is not None:
        updates["max_window"] = args.max_window
    if getattr(args, "no_warm_pool", False):
        updates["pool"] = False
    if getattr(args, "transport", None):
        updates["transport"] = dataclasses.replace(
            sc.transport, kind=args.transport
        )
    if updates:
        sc = dataclasses.replace(sc, **updates)
    heal = _heal_from_args(args)
    if heal is not None:
        sc = _merge_shard_legacy(sc, heal=heal)
    return sc.validate()


def _keyed(plan: Optional[FaultPlan]) -> Optional[FaultPlan]:
    """Sharded runs need per-packet (keyed) fault fates; upgrade a
    sequence-derivation plan transparently and say so."""
    if plan is None or plan.derivation == "keyed":
        return plan
    print(
        "# note: switching fault plan to derivation=keyed (required "
        "for sharded runs)",
        file=sys.stderr,
    )
    return FaultPlan.from_dict({**plan.to_dict(), "derivation": "keyed"})


def cmd_checkpoint(args: argparse.Namespace) -> int:
    if args.backend != "sharded" and getattr(args, "shard_config", None):
        print(
            f"error: --shard-config requires --backend sharded "
            f"(got --backend {args.backend})",
            file=sys.stderr,
        )
        return 1
    workload = figure_workload(args.workload)
    program = workload.compile(m=args.size)
    inputs = workload.make_inputs(program, seed=args.input_seed)
    plan = _optional_fault_plan(args)
    cfg = CheckpointConfig(
        args.dir,
        interval=args.interval,
        retain=args.retain,
        record=args.record,
        delta_every=args.delta_every,
        max_chain_depth=args.max_chain_depth,
    )
    workload_id = f"{args.workload}[m={args.size}]"
    command = "checkpoint" if args.json else None
    if args.backend == "sharded":
        plan = _keyed(plan)
        raw = getattr(args, "shard_config", None)
        shards = args.shards if (args.shards != 2 or not raw) else None
        runner = ShardedRunner(
            program.graph, inputs, fault_plan=plan,
            checkpoint=cfg, workload_id=workload_id,
            shard_config=_shard_config_from_args(args, shards=shards),
        )
        if plan is not None:
            print(f"# plan: {plan.describe()}", file=sys.stderr)
        print(
            f"# checkpointing {args.workload} (m={args.size}, "
            f"{runner.shards} shards) to {args.dir} every "
            f"{args.interval} cycles",
            file=sys.stderr,
        )
        return _finish_sharded(
            runner, args.max_cycles, crash_at=args.crash_at,
            crash_shard=args.crash_shard, command=command,
        )
    machine = Machine(
        program.graph, inputs=inputs, fault_plan=plan, checkpoint=cfg
    )
    machine.workload_id = workload_id
    if plan is not None:
        print(f"# plan: {plan.describe()}", file=sys.stderr)
    print(
        f"# checkpointing {args.workload} (m={args.size}) to {args.dir} "
        f"every {args.interval} cycles",
        file=sys.stderr,
    )
    return _finish_run(
        machine, args.max_cycles, crash_at=args.crash_at, command=command
    )


def cmd_resume(args: argparse.Namespace) -> int:
    command = "resume" if args.json else None
    target = Path(args.snapshot)
    if target.is_dir() and is_sharded_dir(target):
        try:
            runner = ShardedRunner.resume(
                target, allow_legacy=args.allow_v1,
                shard_config=_shard_config_from_args(args),
            )
        except SnapshotError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return EXIT_SNAPSHOT_UNLOADABLE
        print(
            f"# resumed {len(runner.machines)} shards at cycle "
            f"{runner.machines[0].now}",
            file=sys.stderr,
        )
        return _finish_sharded(
            runner, args.max_cycles, crash_at=args.crash_at,
            crash_shard=args.crash_shard, command=command,
        )
    if getattr(args, "shard_config", None):
        # the target resolved to a single-machine snapshot; shard
        # tuning cannot apply, so fail loudly like the facade does
        print(
            f"error: --shard-config given but {target} is not a "
            f"sharded checkpoint directory",
            file=sys.stderr,
        )
        return 1
    try:
        machine = Machine.resume(args.snapshot, allow_legacy=args.allow_v1)
    except SnapshotError as exc:
        # dedicated exit code: only a snapshot that cannot even be
        # loaded may be quarantined by the supervisor; errors after a
        # clean load exit 1 like every other ReproError
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_SNAPSHOT_UNLOADABLE
    print(f"# resumed at cycle {machine.now}", file=sys.stderr)
    return _finish_run(
        machine, args.max_cycles, crash_at=args.crash_at, command=command
    )


def cmd_snapshot_inspect(args: argparse.Namespace) -> int:
    meta = read_metadata(args.file)
    meta["path"] = str(args.file)
    if meta.get("shard") is not None:
        # one member of a coordinated set: loadable only when all K
        # files of its cycle are committed in the directory manifest
        meta["coordinated"] = _coordinated_status(Path(args.file))
    if meta.get("kind") in ("base", "delta"):
        # chain verification is metadata/envelope reads only, so the
        # no-payload-deserialization guarantee of inspect still holds
        status = chain_status(Path(args.file))
        meta["chain_status"] = status["status"]
        if status["chain"] is not None:
            meta["chain"] = status["chain"]
        if status["error"]:
            meta["chain_error"] = status["error"]
    json.dump(meta, sys.stdout, indent=2, sort_keys=True)
    sys.stdout.write("\n")
    if meta.get("format") == 1:
        print(
            f"# legacy v1 snapshot; migrate with: "
            f"python -m repro snapshot migrate {args.file}",
            file=sys.stderr,
        )
    if meta.get("kind") == "delta":
        status = meta["chain_status"]
        note = (
            f"resumable through its {len(meta['chain'])}-link chain"
            if status == "intact"
            else f"NOT resumable ({status} chain)"
        )
        print(
            f"# v3 delta at chain depth {meta.get('chain_depth', '?')}: "
            f"{note}",
            file=sys.stderr,
        )
    if meta.get("shard") is not None:
        status = meta["coordinated"]
        note = (
            "resumable (complete committed set)"
            if status == "complete"
            else f"NOT resumable alone ({status} set)"
        )
        print(
            f"# shard {meta['shard']}/{meta.get('shards', '?')} of a "
            f"coordinated snapshot set: {note}",
            file=sys.stderr,
        )
    return 0


def _coordinated_status(path: Path) -> str:
    """Whether ``path``'s coordinated set is actually resumable:
    ``complete`` (committed, all members on disk), ``partial`` (not
    committed -- e.g. a crash landed between shard writes) or
    ``incomplete`` (committed but members now missing)."""
    directory = path.parent
    try:
        manifest = read_shard_manifest(directory)
    except ReproError:
        return "partial"
    for entry in manifest.get("coordinated", []):
        if isinstance(entry, dict) and path.name in entry.get("files", []):
            if all(
                (directory / name).exists()
                for name in entry.get("files", [])
            ):
                return "complete"
            return "incomplete"
    return "partial"


def cmd_snapshot_migrate(args: argparse.Namespace) -> int:
    path = Path(args.target)
    files = sorted(path.glob("*.snap")) if path.is_dir() else [path]
    if not files:
        print(f"error: no *.snap files in {path}", file=sys.stderr)
        return 1
    migrated = failed = 0
    for snap in files:
        try:
            outcome = migrate_snapshot(snap)
        except SnapshotError as exc:
            # one corrupt file must not strand the rest of the batch
            print(f"{snap}: error: {exc}", file=sys.stderr)
            failed += 1
            continue
        print(f"{snap}: {outcome}", file=sys.stderr)
        migrated += outcome == "migrated"
    print(
        f"# migrated {migrated} of {len(files)} snapshot(s)"
        + (f", {failed} failed" if failed else ""),
        file=sys.stderr,
    )
    return 1 if failed else 0


def cmd_snapshot_fsck(args: argparse.Namespace) -> int:
    report = fsck_directory(args.directory)
    if args.json:
        json.dump(report, sys.stdout, indent=2, sort_keys=True)
        sys.stdout.write("\n")
    else:
        for entry in report["files"]:
            bits = [entry.get("kind", "?")]
            if "cycle" in entry:
                bits.append(f"cycle {entry['cycle']}")
            if "chain_depth" in entry:
                bits.append(f"depth {entry['chain_depth']}")
            bits.append(entry["status"].upper()
                        if entry["status"] != "intact" else "ok")
            print(f"{entry['name']}: {', '.join(bits)}")
            if entry.get("error"):
                print(f"  {entry['error']}")
        for entry in report.get("sets", []):
            state = (entry["status"].upper()
                     if entry["status"] != "intact" else "ok")
            bits = [entry.get("kind", "full"),
                    f"{entry['files']} shard files"]
            if "chain_depth" in entry:
                bits.append(f"depth {entry['chain_depth']}")
            print(
                f"coordinated set @ cycle {entry['cycle']}: "
                f"{', '.join(bits)}, {state}"
            )
            if entry.get("error"):
                print(f"  {entry['error']}")
        for name in report["quarantined"]:
            print(f"{name}: quarantined")
    n_files = len(report["files"])
    n_sets = len(report.get("sets", []))
    verdict = "clean" if report["ok"] else (
        f"BROKEN ({len(report['problems'])} problem(s))"
    )
    print(
        f"# fsck {report['directory']}: {n_files} snapshot file(s)"
        + (f", {n_sets} coordinated set(s)" if n_sets else "")
        + f", {len(report['quarantined'])} quarantined: {verdict}",
        file=sys.stderr,
    )
    for problem in report["problems"]:
        print(f"#   {problem}", file=sys.stderr)
    return 0 if report["ok"] else 1


def cmd_snapshot_rebase(args: argparse.Namespace) -> int:
    new_path = rebase_snapshot(args.file)
    print(f"# rebased {args.file} -> {new_path}", file=sys.stderr)
    print(str(new_path))
    return 0


def cmd_supervise(args: argparse.Namespace) -> int:
    start_argv = [
        sys.executable, "-m", "repro", "checkpoint", args.workload,
        "--size", str(args.size), "--input-seed", str(args.input_seed),
        "--dir", args.dir, "--interval", str(args.interval),
        "--retain", str(args.retain), "--max-cycles", str(args.max_cycles),
    ]
    if args.delta_every:
        start_argv += ["--delta-every", str(args.delta_every),
                       "--max-chain-depth", str(args.max_chain_depth)]
    if args.backend != "event":
        start_argv += ["--backend", args.backend,
                       "--shards", str(args.shards)]
    if args.record:
        start_argv.append("--record")
    if args.plan:
        start_argv += ["--plan", args.plan]
    if args.seed is not None:
        start_argv += ["--seed", str(args.seed)]
    for flag in ("drop_result", "dup_result", "corrupt_result",
                 "drop_ack", "dup_ack"):
        value = getattr(args, flag)
        if value:
            start_argv += [f"--{flag.replace('_', '-')}", str(value)]

    def resume_argv(directory: Path) -> list[str]:
        return [
            sys.executable, "-m", "repro", "resume", str(directory),
            "--max-cycles", str(args.max_cycles),
        ]

    extra = [
        ["--crash-at", cycle]
        for cycle in (args.inject_crash.split(",") if args.inject_crash
                      else [])
    ]
    supervisor = Supervisor(
        start_argv,
        SupervisorConfig(
            args.dir,
            max_restarts=args.max_restarts,
            backoff_base=args.backoff_base,
            backoff_factor=args.backoff_factor,
            backoff_max=args.backoff_max,
            jitter=args.backoff_jitter,
            seed=args.backoff_seed,
        ),
        resume_argv=resume_argv,
        extra_args=extra,
    )
    report = supervisor.run()
    print(f"# {report.summary()}", file=sys.stderr)
    if args.report_json:
        with open(args.report_json, "w", encoding="utf-8") as fh:
            json.dump(report.to_dict(), fh, indent=2)
            fh.write("\n")
        print(f"# wrote {args.report_json}", file=sys.stderr)
    if report.completed:
        # republish the successful child's stdout and stderr
        # byte-for-byte, so `repro supervise ... > out.json 2> log`
        # matches an uninterrupted run on both streams
        if report.stderr:
            sys.stderr.buffer.write(report.stderr)
            sys.stderr.buffer.flush()
        sys.stdout.buffer.write(report.stdout or b"")
        sys.stdout.buffer.flush()
        return 0
    return EXIT_RUN_FAILED


def cmd_replay(args: argparse.Namespace) -> int:
    report = replay_bundle(
        args.bundle, max_cycles=args.max_cycles, bisect=args.bisect
    )
    if args.json:
        from dataclasses import asdict

        _emit_envelope("replay", report.reproduced, asdict(report))
    else:
        print(report.summary())
    return 0 if report.reproduced else EXIT_DIVERGED


def _load_perturb_plan(path: Optional[str]) -> Optional[FaultPlan]:
    if path is None:
        return None
    with open(path, "r", encoding="utf-8") as fh:
        return FaultPlan.from_json(fh.read())


def cmd_bisect(args: argparse.Namespace) -> int:
    report = bisect_divergence(
        args.bundle,
        perturb=_load_perturb_plan(args.perturb_plan),
        max_cycles=args.max_cycles,
    )
    if args.json == "-":
        # bare --json: the shared stdout envelope
        _emit_envelope("bisect", not report.diverged, report.to_dict())
        return EXIT_DIVERGED if report.diverged else 0
    print(report.summary())
    if args.json:
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(report.to_dict(), fh, indent=2, default=repr)
            fh.write("\n")
        print(f"# wrote {args.json}", file=sys.stderr)
    return EXIT_DIVERGED if report.diverged else 0


def cmd_serve(args: argparse.Namespace) -> int:
    from .serve import ServeConfig, run_server

    if args.supervised:
        if not args.dir:
            print("error: --supervised needs --dir (the journal is "
                  "what makes restarts lossless)", file=sys.stderr)
            return 1
        start_argv = [
            sys.executable, "-m", "repro", "serve",
            "--capacity", str(args.capacity),
            "--workers", str(args.workers),
            "--default-deadline", str(args.default_deadline),
            "--max-retries", str(args.max_retries),
            "--hang-deadline", str(args.hang_deadline),
            "--min-batch", str(args.min_batch),
            "--max-batch", str(args.max_batch),
            "--batch-wait", str(args.batch_wait),
            "--seed", str(args.seed),
            "--dir", args.dir,
        ]
        if args.socket:
            start_argv += ["--socket", args.socket]
        if args.port:
            start_argv += ["--port", str(args.port),
                           "--host", args.host]
        extra = []
        if args.crash_after_accepts is not None:
            # the hook applies to the first incarnation only: the
            # whole point is proving the restarted daemon recovers
            extra = [["--crash-after-accepts",
                      str(args.crash_after_accepts)]]
        supervisor = Supervisor(
            start_argv,
            SupervisorConfig(args.dir, max_restarts=args.max_restarts),
            # a serve directory holds a journal, not snapshots: a
            # restart is always a cold start that replays the journal
            resume_argv=lambda directory: list(start_argv),
            extra_args=extra,
        )
        report = supervisor.run()
        print(f"# {report.summary()}", file=sys.stderr)
        if report.completed:
            if report.stderr:
                sys.stderr.buffer.write(report.stderr)
                sys.stderr.buffer.flush()
            sys.stdout.buffer.write(report.stdout or b"")
            sys.stdout.buffer.flush()
            return 0
        return EXIT_RUN_FAILED

    import asyncio

    config = ServeConfig(
        socket=args.socket,
        host=args.host,
        port=args.port,
        directory=args.dir,
        capacity=args.capacity,
        workers=args.workers,
        default_deadline=args.default_deadline,
        max_retries=args.max_retries,
        hang_deadline=args.hang_deadline,
        min_batch=args.min_batch,
        max_batch=args.max_batch,
        batch_wait=args.batch_wait,
        seed=args.seed,
        crash_after_accepts=args.crash_after_accepts,
    )
    try:
        asyncio.run(run_server(config))
    except KeyboardInterrupt:
        pass
    return 0


def cmd_submit(args: argparse.Namespace) -> int:
    from .client import connect
    from .serve import ServeError, envelope

    client = connect(args.connect, timeout=args.timeout)
    with client:
        if args.op != "submit":
            result = getattr(client, args.op)()
            _emit_envelope(args.op, True, result)
            return 0

        jobs: list[dict[str, Any]] = []
        if args.jobs:
            with open(args.jobs, "r", encoding="utf-8") as fh:
                loaded = json.load(fh)
            jobs = loaded if isinstance(loaded, list) else [loaded]
        elif args.source:
            with open(args.source, "r", encoding="utf-8") as fh:
                source = fh.read()
            inputs: dict[str, list] = {}
            if args.inputs:
                with open(args.inputs, "r", encoding="utf-8") as fh:
                    inputs = json.load(fh)
            job: dict[str, Any] = {
                "id": args.job_id or f"cli-{os.getpid()}",
                "source": source,
                "kind": args.kind,
                "tenant": args.tenant,
                "params": _parse_params(args.param),
                "inputs": inputs,
            }
            if args.deadline is not None:
                job["deadline"] = args.deadline
            jobs = [job]
        else:
            print("error: submit needs --jobs FILE or --source FILE",
                  file=sys.stderr)
            return 1

        # submit everything first (so compatible jobs can batch), then
        # collect results in order
        accepted: list[str] = []
        failed = 0
        for job in jobs:
            try:
                result = client.request("submit", job=job)
                accepted.append(result["id"])
                if args.no_wait:
                    print(json.dumps(envelope("submit", True, result)))
            except ServeError as exc:
                failed += 1
                print(json.dumps(envelope(
                    "submit", False, {"error": exc.to_dict()}
                )))
        if not args.no_wait:
            for job_id in accepted:
                try:
                    record = client.wait(job_id)
                    print(json.dumps(envelope("wait", True, record)))
                except ServeError as exc:
                    failed += 1
                    print(json.dumps(envelope(
                        "wait", False, {"error": exc.to_dict()}
                    )))
    return 0 if failed == 0 else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Val-to-static-dataflow compiler and simulators "
        "(Dennis & Gao, ICPP 1983)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p: argparse.ArgumentParser, compiled: bool = True) -> None:
        p.add_argument("program", help="Val source file")
        p.add_argument(
            "-p", "--param", action="append", default=[],
            metavar="NAME=INT",
            help="compile-time constant (repeatable), e.g. -p m=100",
        )
        if compiled:
            p.add_argument(
                "--forall-scheme", default="pipeline",
                choices=["pipeline", "parallel"],
            )
            p.add_argument(
                "--foriter-scheme", default="auto",
                choices=["auto", "companion", "todd"],
            )
            p.add_argument(
                "--balance", default="optimal",
                choices=["optimal", "reduce", "naive", "none"],
            )
            p.add_argument(
                "--controls", default="patterns",
                choices=["patterns", "dataflow"],
                help="emit control sequences as pattern tables or as "
                "Todd-style counter subgraphs",
            )
            p.add_argument(
                "--distance", type=int, default=None,
                help="companion dependence distance (G-tree size)",
            )

    p = sub.add_parser("compile", help="compile and dump machine code")
    common(p)
    p.add_argument("-o", "--output", help="write dfasm machine code here")
    p.add_argument("--dot", help="write a Graphviz rendering here")
    p.add_argument("--describe", action="store_true",
                   help="print the compilation report")
    p.set_defaults(fn=cmd_compile)

    def shard_tuning_args(p: argparse.ArgumentParser) -> None:
        p.add_argument("--shard-config", metavar="JSON",
                       help="consolidated sharded-backend configuration "
                       "as a JSON object (ShardConfig schema: shards, "
                       "partition, processes, window, max_window, pool, "
                       "transport {kind, ring_slots}, recovery, ...); "
                       "individual flags override its fields")
        p.add_argument("--window", choices=["adaptive", "fixed"],
                       default=None,
                       help="lockstep horizon mode: 'adaptive' batches "
                       "many cycles per barrier when the cut allows it "
                       "(default), 'fixed' uses the conservative "
                       "rn_delay cadence")
        p.add_argument("--max-window", type=int, default=None,
                       metavar="N",
                       help="cap on cycles batched per adaptive window "
                       "(default 4096)")
        p.add_argument("--no-warm-pool", action="store_true",
                       help="disable the warm worker pool (spawn fresh "
                       "worker processes for every run)")
        p.add_argument("--transport", choices=["auto", "shm", "pipe"],
                       default=None,
                       help="cut-packet transport: shared-memory rings "
                       "when supported ('auto', default), forced rings "
                       "('shm') or the pickle pipe ('pipe')")

    p = sub.add_parser("run", help="compile and run on one of the "
                       "backends (unit-delay simulator by default)")
    common(p)
    p.add_argument("--inputs", help="JSON file of input arrays")
    p.add_argument("--stats", action="store_true",
                   help="print throughput statistics to stderr")
    p.add_argument("--backend", default="sync",
                   choices=["sync", "event", "sharded", "compiled"],
                   help="execution backend: unit-delay simulator "
                   "(default), event-driven machine, K machine "
                   "shards in separate processes, or the compiled "
                   "steady-state machine (bit-identical to event, "
                   "fast-forwards periodic steady state)")
    p.add_argument("--shards", type=int, default=1, metavar="K",
                   help="worker count for --backend sharded")
    shard_tuning_args(p)
    p.add_argument("--json", action="store_true",
                   help="print the stable JSON result envelope to "
                   "stdout instead of the outputs object")
    p.set_defaults(fn=cmd_run)

    p = sub.add_parser("interpret", help="run the reference Val interpreter")
    common(p, compiled=False)
    p.add_argument("--inputs", help="JSON file of input arrays")
    p.set_defaults(fn=cmd_interpret)

    p = sub.add_parser("simulate", help="simulate a dfasm machine-code file")
    p.add_argument("graph", help="dfasm file")
    p.add_argument("--inputs", help="JSON file of input arrays")
    p.set_defaults(fn=cmd_simulate)

    def workload_args(p: argparse.ArgumentParser) -> None:
        p.add_argument("workload", choices=sorted(FIGURES),
                       help="paper figure to run")
        p.add_argument("--size", type=int, default=16, metavar="M",
                       help="array-size parameter m (default 16)")
        p.add_argument("--input-seed", type=int, default=0,
                       help="seed for the generated input streams")

    def fault_args(p: argparse.ArgumentParser,
                   drop: float = 0.0, dup: float = 0.0) -> None:
        p.add_argument("--plan", help="JSON fault-plan file (see DESIGN.md "
                       "for the schema); overrides the probability flags")
        p.add_argument("--seed", type=int, default=None,
                       help="fault-injection seed (overrides the plan "
                       "file's)")
        p.add_argument("--drop-result", type=float, default=drop,
                       metavar="P", help="result-packet drop probability")
        p.add_argument("--dup-result", type=float, default=dup,
                       metavar="P",
                       help="result-packet duplication probability")
        p.add_argument("--corrupt-result", type=float, default=0.0,
                       metavar="P",
                       help="result-packet corruption probability")
        p.add_argument("--drop-ack", type=float, default=0.0,
                       metavar="P", help="acknowledge-packet drop "
                       "probability")
        p.add_argument("--dup-ack", type=float, default=0.0,
                       metavar="P", help="acknowledge duplication "
                       "probability")

    p = sub.add_parser(
        "faults",
        help="run a paper-figure workload under an injected fault plan "
        "and report what the reliability layer recovered",
    )
    workload_args(p)
    fault_args(p, drop=0.05, dup=0.05)
    p.add_argument("--no-recovery", action="store_true",
                   help="inject faults with the reliability layer off "
                   "(expect a diagnosed stall)")
    p.set_defaults(fn=cmd_faults)

    def heal_args(p: argparse.ArgumentParser) -> None:
        p.add_argument("--no-self-heal", action="store_true",
                       help="disable in-process worker recovery on the "
                       "sharded backend (a dead worker then exits 137 "
                       "for `repro supervise` to handle)")
        p.add_argument("--heal-deadline", type=float, default=None,
                       metavar="SECONDS",
                       help="per-command worker reply deadline before a "
                       "live worker counts as hung (default 60)")
        p.add_argument("--heal-max-restarts", type=int, default=None,
                       metavar="N",
                       help="per-shard respawn budget before recovery "
                       "gives up (default 3)")
        p.add_argument("--degrade", action="store_true",
                       help="after a shard exhausts its restart budget, "
                       "fold it into the coordinator and continue with "
                       "K-1 workers instead of failing")

    p = sub.add_parser(
        "checkpoint",
        help="run a paper-figure workload with periodic crash-consistent "
        "snapshots (resume later with `repro resume`)",
    )
    workload_args(p)
    fault_args(p)
    p.add_argument("--dir", required=True,
                   help="snapshot directory (created if missing)")
    p.add_argument("--interval", type=int, default=10_000, metavar="N",
                   help="cycles between snapshots (default 10000)")
    p.add_argument("--retain", type=int, default=3, metavar="K",
                   help="periodic snapshots to keep, 0 = all (default 3)")
    p.add_argument("--delta-every", type=int, default=0, metavar="N",
                   help="write incremental v3 delta snapshots with a full "
                   "base every N-th periodic snapshot; 0 (default) writes "
                   "classic standalone snapshots only")
    p.add_argument("--max-chain-depth", type=int, default=64, metavar="D",
                   help="hard ceiling on delta chain length before a "
                   "forced rebase to a full base (default 64)")
    p.add_argument("--record", action="store_true",
                   help="also record a replay bundle (initial snapshot + "
                   "event-trace manifest) for `repro replay`; "
                   "single-machine backend only")
    p.add_argument("--backend", default="event",
                   choices=["event", "sharded"],
                   help="single event-driven machine (default) or K "
                   "shards with coordinated Chandy-Lamport snapshots")
    p.add_argument("--shards", type=int, default=2, metavar="K",
                   help="worker count for --backend sharded (default 2)")
    p.add_argument("--max-cycles", type=int, default=50_000_000)
    p.add_argument("--crash-at", type=int, default=None, metavar="CYCLE",
                   help="hard-kill the process (exit 137, as SIGKILL "
                   "would) once simulated time reaches CYCLE; used to "
                   "exercise crash recovery")
    p.add_argument("--crash-shard", type=int, default=0, metavar="K",
                   help="which worker --crash-at kills on the sharded "
                   "backend (default 0)")
    heal_args(p)
    shard_tuning_args(p)
    p.add_argument("--json", action="store_true",
                   help="print the stable JSON result envelope to "
                   "stdout instead of the outputs object")
    p.set_defaults(fn=cmd_checkpoint)

    p = sub.add_parser(
        "resume",
        help="resume a checkpointed run from a snapshot file or from the "
        "newest snapshot in a directory",
    )
    p.add_argument("snapshot", help="snapshot file or checkpoint directory "
                   "(single-machine or sharded; auto-detected)")
    p.add_argument("--max-cycles", type=int, default=50_000_000)
    p.add_argument("--allow-v1", action="store_true",
                   help="opt in to loading legacy format-v1 snapshots "
                   "(unrestricted-pickle era files; prefer "
                   "`repro snapshot migrate`)")
    p.add_argument("--crash-at", type=int, default=None, metavar="CYCLE",
                   help="hard-kill the process (exit 137) once simulated "
                   "time reaches CYCLE; used to exercise crash recovery")
    p.add_argument("--crash-shard", type=int, default=0, metavar="K",
                   help="which worker --crash-at kills when resuming a "
                   "sharded directory (default 0)")
    heal_args(p)
    shard_tuning_args(p)
    p.add_argument("--json", action="store_true",
                   help="print the stable JSON result envelope to "
                   "stdout instead of the outputs object")
    p.set_defaults(fn=cmd_resume)

    p = sub.add_parser(
        "snapshot",
        help="inspect or migrate snapshot files without running anything",
    )
    snap_sub = p.add_subparsers(dest="snapshot_command", required=True)
    sp = snap_sub.add_parser(
        "inspect",
        help="print a snapshot's self-describing metadata (format, "
        "cycle, reason, workload, checksum status) without "
        "deserializing any machine state",
    )
    sp.add_argument("file", help="snapshot file")
    sp.set_defaults(fn=cmd_snapshot_inspect)
    sp = snap_sub.add_parser(
        "migrate",
        help="rewrite legacy v1 snapshots to format v2 in place "
        "(checksum-verified on both sides)",
    )
    sp.add_argument("target", help="snapshot file or directory of *.snap")
    sp.set_defaults(fn=cmd_snapshot_migrate)
    sp = snap_sub.add_parser(
        "fsck",
        help="walk every snapshot chain (and coordinated set) in a "
        "checkpoint directory, report orphans/damage/depth, and exit "
        "non-zero if any resume point is unresumable; no payload is "
        "ever deserialized",
    )
    sp.add_argument("directory", help="checkpoint directory")
    sp.add_argument("--json", action="store_true",
                    help="print the full machine-readable report")
    sp.set_defaults(fn=cmd_snapshot_fsck)
    sp = snap_sub.add_parser(
        "rebase",
        help="collapse a delta chain tip into a standalone full base "
        "snapshot (verifies the whole chain first; refuses mid-chain "
        "links)",
    )
    sp.add_argument("file", help="*.delta.snap chain tip")
    sp.set_defaults(fn=cmd_snapshot_rebase)

    p = sub.add_parser(
        "supervise",
        help="run a checkpointed workload under a crash-supervision "
        "loop: resume on crash with exponential backoff, quarantine "
        "poisoned snapshots, stop at a restart budget",
    )
    workload_args(p)
    fault_args(p)
    p.add_argument("--backend", default="event",
                   choices=["event", "sharded"],
                   help="backend the supervised checkpoint child uses")
    p.add_argument("--shards", type=int, default=2, metavar="K",
                   help="worker count for --backend sharded (default 2)")
    p.add_argument("--dir", required=True,
                   help="snapshot directory (created if missing; if it "
                   "already holds snapshots the first attempt resumes)")
    p.add_argument("--interval", type=int, default=10_000, metavar="N",
                   help="cycles between snapshots (default 10000)")
    p.add_argument("--retain", type=int, default=3, metavar="K",
                   help="periodic snapshots to keep, 0 = all (default 3)")
    p.add_argument("--delta-every", type=int, default=0, metavar="N",
                   help="supervised child writes incremental v3 delta "
                   "snapshots with a full base every N-th periodic "
                   "snapshot (0 = classic full snapshots)")
    p.add_argument("--max-chain-depth", type=int, default=64, metavar="D",
                   help="hard ceiling on delta chain length before a "
                   "forced rebase (default 64)")
    p.add_argument("--record", action="store_true",
                   help="record a replay bundle on the initial start")
    p.add_argument("--max-cycles", type=int, default=50_000_000)
    p.add_argument("--max-restarts", type=int, default=8, metavar="N",
                   help="restart budget after the free initial start "
                   "(default 8)")
    p.add_argument("--backoff-base", type=float, default=0.5,
                   metavar="SECONDS")
    p.add_argument("--backoff-factor", type=float, default=2.0)
    p.add_argument("--backoff-max", type=float, default=30.0,
                   metavar="SECONDS")
    p.add_argument("--backoff-jitter", type=float, default=0.1,
                   metavar="FRAC",
                   help="fractional jitter on each backoff (default 0.1)")
    p.add_argument("--backoff-seed", type=int, default=0,
                   help="seed for the jitter RNG (restart schedule is "
                   "reproducible)")
    p.add_argument("--inject-crash", metavar="CYCLE[,CYCLE...]",
                   help="test hook: pass --crash-at CYCLE to successive "
                   "child attempts (one cycle per attempt), simulating "
                   "SIGKILL mid-run")
    p.add_argument("--report-json", metavar="OUT",
                   help="also write the SupervisorReport as JSON here")
    p.set_defaults(fn=cmd_supervise)

    p = sub.add_parser(
        "replay",
        help="re-execute a recorded bundle and verify the run is "
        "reproduced bit-identically",
    )
    p.add_argument("bundle", help="directory written by "
                   "`repro checkpoint --record`")
    p.add_argument("--max-cycles", type=int, default=50_000_000)
    p.add_argument("--bisect", action="store_true",
                   help="on divergence, binary-search the digest ledger "
                   "for the first divergent checkpoint window")
    p.add_argument("--json", action="store_true",
                   help="print the stable JSON result envelope to "
                   "stdout instead of the summary line")
    p.set_defaults(fn=cmd_replay)

    p = sub.add_parser(
        "bisect",
        help="binary-search a recorded bundle's digest ledger for the "
        "first checkpoint window where a replay diverges",
    )
    p.add_argument("bundle", help="directory written by "
                   "`repro checkpoint --record`")
    p.add_argument("--perturb-plan", metavar="FILE",
                   help="JSON fault plan installed on the replay side "
                   "only, to ask where that fault would first change "
                   "the recorded run")
    p.add_argument("--json", nargs="?", const="-", metavar="OUT",
                   help="bare --json prints the stable JSON result "
                   "envelope to stdout; --json OUT writes the raw "
                   "DivergenceReport to OUT instead")
    p.add_argument("--max-cycles", type=int, default=50_000_000)
    p.set_defaults(fn=cmd_bisect)

    p = sub.add_parser(
        "serve",
        help="run the long-lived multi-tenant pipeline service "
        "(admission control, interleaved batching, supervised worker "
        "pool, hot restart); see DESIGN.md section 11",
    )
    p.add_argument("--socket", metavar="PATH",
                   help="unix socket to listen on")
    p.add_argument("--port", type=int, help="TCP port to listen on")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--dir", metavar="DIR",
                   help="journal + hot-restart state directory "
                   "(enables exactly-once re-admission after a crash)")
    p.add_argument("--capacity", type=int, default=256,
                   help="admission queue bound; beyond it submits are "
                   "shed with a typed overload error (default 256)")
    p.add_argument("--workers", type=int, default=2,
                   help="worker pool size (default 2)")
    p.add_argument("--default-deadline", type=float, default=30.0,
                   help="per-job deadline in seconds when the job "
                   "does not set one (default 30)")
    p.add_argument("--max-retries", type=int, default=2,
                   help="attempts lost to worker failure before a job "
                   "fails typed (default 2)")
    p.add_argument("--hang-deadline", type=float, default=10.0,
                   help="seconds of worker silence that count as a "
                   "hang (default 10)")
    p.add_argument("--min-batch", type=int, default=2)
    p.add_argument("--max-batch", type=int, default=8,
                   help="interleaved batch bounds (default 2..8); "
                   "--max-batch 1 disables batching entirely")
    p.add_argument("--batch-wait", type=float, default=0.02,
                   help="seconds a lone batchable job lingers for "
                   "companions (default 0.02)")
    p.add_argument("--seed", type=int, default=0,
                   help="seed for retry-backoff jitter and stats "
                   "reservoirs")
    p.add_argument("--supervised", action="store_true",
                   help="wrap the daemon in the repro supervise crash "
                   "loop (requires --dir); a killed daemon restarts "
                   "and re-admits journaled jobs")
    p.add_argument("--max-restarts", type=int, default=8,
                   help="restart budget under --supervised")
    p.add_argument("--crash-after-accepts", type=int,
                   help=argparse.SUPPRESS)  # hot-restart test hook
    p.set_defaults(fn=cmd_serve)

    p = sub.add_parser(
        "submit",
        help="submit jobs to a running repro serve daemon and print "
        "one JSON envelope per job",
    )
    p.add_argument("--connect", required=True, metavar="ADDR",
                   help="daemon address: unix:/path, /path, host:port "
                   "or :port")
    p.add_argument("--op", default="submit",
                   choices=["submit", "healthz", "stats", "shutdown"],
                   help="operation (default: submit jobs)")
    p.add_argument("--jobs", metavar="FILE",
                   help="JSON file with one job object or a list of "
                   "job objects ({id, source, inputs, ...})")
    p.add_argument("--source", metavar="FILE",
                   help="Val source file for a single ad-hoc job")
    p.add_argument("-p", "--param", action="append", default=[],
                   metavar="NAME=INT", help="program size parameter")
    p.add_argument("--inputs", metavar="FILE",
                   help="JSON inputs for the ad-hoc job")
    p.add_argument("--kind", default="foriter",
                   choices=["foriter", "run"])
    p.add_argument("--tenant", default="default")
    p.add_argument("--deadline", type=float)
    p.add_argument("--id", dest="job_id",
                   help="job id (default: random)")
    p.add_argument("--no-wait", action="store_true",
                   help="submit only; do not wait for results")
    p.add_argument("--timeout", type=float, default=120.0,
                   help="client socket timeout (default 120s)")
    p.set_defaults(fn=cmd_submit)

    return parser


def main(argv: Optional[list[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.fn(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
