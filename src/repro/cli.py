"""Command-line interface: compile, inspect, run and interpret Val
programs from the shell.

::

    python -m repro compile prog.val -p m=100 --describe --dot prog.dot
    python -m repro run prog.val -p m=100 --inputs inputs.json
    python -m repro interpret prog.val -p m=100 --inputs inputs.json
    python -m repro simulate prog.dfasm --inputs inputs.json

Inputs are a JSON object mapping array names to lists (or to
``[lo, [values...]]`` pairs for arrays with a nonzero lower bound).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Optional

from .compiler import compile_program
from .errors import ReproError
from .graph.asm import read_asm, to_asm
from .graph.dot import to_dot
from .sim import run_graph
from .val import parse_program, run_program
from .val.values import ValArray


def _parse_params(items: list[str]) -> dict[str, int]:
    params: dict[str, int] = {}
    for item in items:
        key, _, value = item.partition("=")
        if not value:
            raise SystemExit(f"bad --param {item!r}; expected name=value")
        params[key] = int(value)
    return params


def _load_inputs(path: Optional[str]) -> dict[str, Any]:
    if path is None:
        return {}
    with open(path, "r", encoding="utf-8") as fh:
        raw = json.load(fh)
    inputs: dict[str, Any] = {}
    for name, value in raw.items():
        if (
            isinstance(value, list)
            and len(value) == 2
            and isinstance(value[0], int)
            and isinstance(value[1], list)
        ):
            inputs[name] = (value[0], value[1])
        else:
            inputs[name] = value
    return inputs


def _emit_outputs(outputs: dict[str, Any]) -> None:
    rendered = {}
    for name, value in outputs.items():
        if isinstance(value, ValArray):
            rendered[name] = [value.lo, value.to_list()]
        else:
            rendered[name] = value
    json.dump(rendered, sys.stdout, indent=2, default=str)
    sys.stdout.write("\n")


def _compile_opts(args: argparse.Namespace) -> dict[str, Any]:
    opts: dict[str, Any] = {
        "forall_scheme": args.forall_scheme,
        "foriter_scheme": args.foriter_scheme,
        "balance": args.balance,
        "controls": getattr(args, "controls", "patterns"),
    }
    if args.distance is not None:
        opts["distance"] = args.distance
    return opts


def cmd_compile(args: argparse.Namespace) -> int:
    source = open(args.program, "r", encoding="utf-8").read()
    cp = compile_program(
        source, params=_parse_params(args.param), **_compile_opts(args)
    )
    if args.describe or not (args.output or args.dot):
        print(cp.describe())
    if args.output:
        with open(args.output, "w", encoding="utf-8") as fh:
            fh.write(to_asm(cp.graph))
        print(f"wrote {args.output}")
    if args.dot:
        with open(args.dot, "w", encoding="utf-8") as fh:
            fh.write(to_dot(cp.graph))
        print(f"wrote {args.dot}")
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    source = open(args.program, "r", encoding="utf-8").read()
    cp = compile_program(
        source, params=_parse_params(args.param), **_compile_opts(args)
    )
    result = cp.run(_load_inputs(args.inputs))
    _emit_outputs(result.outputs)
    if args.stats:
        for stream in result.outputs:
            print(
                f"# {stream}: II = {result.initiation_interval(stream):.3f} "
                f"instruction times/element",
                file=sys.stderr,
            )
        print(
            f"# total: {result.stats.steps} instruction times, "
            f"{result.stats.total_firings} firings",
            file=sys.stderr,
        )
    return 0


def cmd_interpret(args: argparse.Namespace) -> int:
    source = open(args.program, "r", encoding="utf-8").read()
    outputs = run_program(
        parse_program(source),
        inputs=_load_inputs(args.inputs),
        params=_parse_params(args.param),
    )
    _emit_outputs(outputs)
    return 0


def cmd_simulate(args: argparse.Namespace) -> int:
    g = read_asm(args.graph)
    streams = {}
    for name, value in _load_inputs(args.inputs).items():
        # raw machine graphs take plain streams; drop any lower-bound
        # annotation from the JSON form
        streams[name] = list(value[1]) if isinstance(value, tuple) else value
    res = run_graph(g, streams)
    _emit_outputs(res.outputs)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Val-to-static-dataflow compiler and simulators "
        "(Dennis & Gao, ICPP 1983)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p: argparse.ArgumentParser, compiled: bool = True) -> None:
        p.add_argument("program", help="Val source file")
        p.add_argument(
            "-p", "--param", action="append", default=[],
            metavar="NAME=INT",
            help="compile-time constant (repeatable), e.g. -p m=100",
        )
        if compiled:
            p.add_argument(
                "--forall-scheme", default="pipeline",
                choices=["pipeline", "parallel"],
            )
            p.add_argument(
                "--foriter-scheme", default="auto",
                choices=["auto", "companion", "todd"],
            )
            p.add_argument(
                "--balance", default="optimal",
                choices=["optimal", "reduce", "naive", "none"],
            )
            p.add_argument(
                "--controls", default="patterns",
                choices=["patterns", "dataflow"],
                help="emit control sequences as pattern tables or as "
                "Todd-style counter subgraphs",
            )
            p.add_argument(
                "--distance", type=int, default=None,
                help="companion dependence distance (G-tree size)",
            )

    p = sub.add_parser("compile", help="compile and dump machine code")
    common(p)
    p.add_argument("-o", "--output", help="write dfasm machine code here")
    p.add_argument("--dot", help="write a Graphviz rendering here")
    p.add_argument("--describe", action="store_true",
                   help="print the compilation report")
    p.set_defaults(fn=cmd_compile)

    p = sub.add_parser("run", help="compile and simulate on the "
                       "unit-delay machine")
    common(p)
    p.add_argument("--inputs", help="JSON file of input arrays")
    p.add_argument("--stats", action="store_true",
                   help="print throughput statistics to stderr")
    p.set_defaults(fn=cmd_run)

    p = sub.add_parser("interpret", help="run the reference Val interpreter")
    common(p, compiled=False)
    p.add_argument("--inputs", help="JSON file of input arrays")
    p.set_defaults(fn=cmd_interpret)

    p = sub.add_parser("simulate", help="simulate a dfasm machine-code file")
    p.add_argument("graph", help="dfasm file")
    p.add_argument("--inputs", help="JSON file of input arrays")
    p.set_defaults(fn=cmd_simulate)

    return parser


def main(argv: Optional[list[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.fn(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
