"""Coordinated (Chandy-Lamport) checkpoint sets for sharded runs.

A sharded run (:mod:`repro.machine.sharded`) checkpoints at a lockstep
barrier: every worker writes its own v2 shard snapshot
(``ckpt-<cycle>.shard<k>.snap``, carrying the in-flight channel
messages about to be injected into it as ``extra.channel_state``), and
the coordinator commits the *set* to the directory manifest only after
all K files have landed on disk.  The manifest entry is the unit of
consistency:

* a crash between shard writes leaves stray ``.shard<k>.snap`` files
  but no manifest entry, so :func:`latest_coordinated` never offers a
  partial set for resume;
* retention prunes whole sets, never individual shard files, and drops
  the manifest entry *before* unlinking any file -- a crash mid-prune
  orphans files (harmless) rather than leaving a committed entry that
  points at a half-deleted set.

The single-machine :func:`~repro.checkpoint.snapshot.latest_snapshot`
already ignores shard files (their stem's cycle part is not purely
numeric), so a sharded directory is invisible to the single-machine
resume path; :func:`is_sharded_dir` is how callers (CLI ``resume``,
the supervisor) detect that a directory needs the coordinated path.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Optional, Union

from ..errors import ManifestError, SnapshotError
from ..machine.stats import CheckpointStats
from .manager import CheckpointConfig
from .replay import MANIFEST_NAME, MANIFEST_SCHEMA
from .snapshot import _atomic_write


def shard_snapshot_name(cycle: int, shard: int) -> str:
    """On-disk name of shard ``shard``'s member of the ``cycle`` set."""
    return f"ckpt-{cycle:012d}.shard{shard}.snap"


def read_shard_manifest(directory: Union[str, Path]) -> dict[str, Any]:
    """Read and validate a sharded checkpoint directory's manifest."""
    path = Path(directory) / MANIFEST_NAME
    try:
        manifest = json.loads(path.read_text(encoding="utf-8"))
    except FileNotFoundError:
        raise ManifestError(f"no manifest in {directory}") from None
    except (OSError, json.JSONDecodeError) as exc:
        raise ManifestError(
            f"unreadable manifest in {directory}: {exc}"
        ) from exc
    if not isinstance(manifest, dict) or not manifest.get("sharded"):
        raise ManifestError(
            f"{directory} is not a sharded checkpoint directory"
        )
    shards = manifest.get("shards")
    if not isinstance(shards, int) or shards < 1:
        raise ManifestError(
            f"sharded manifest in {directory} has bad shard count "
            f"{shards!r}"
        )
    return manifest


def is_sharded_dir(directory: Union[str, Path]) -> bool:
    """True when ``directory`` holds coordinated shard snapshot sets."""
    try:
        read_shard_manifest(directory)
    except ManifestError:
        return False
    return True


def latest_coordinated(
    directory: Union[str, Path], exclude: Any = ()
) -> Optional[dict[str, Any]]:
    """Newest committed coordinated set whose files all still exist.

    Returns the manifest entry (``{"cycle": ..., "files": [...]}``) or
    None.  Quarantined sets, sets with missing files and sets whose
    cycle is in ``exclude`` (the in-process healer's barred cycles)
    are skipped -- the next-older complete set wins, mirroring the
    single-machine poisoned-snapshot step-back.
    """
    directory = Path(directory)
    manifest = read_shard_manifest(directory)
    entries = manifest.get("coordinated", [])
    quarantined = {
        q.get("cycle")
        for q in manifest.get("quarantined", [])
        if isinstance(q, dict)
    }
    quarantined.update(exclude)
    for entry in reversed(entries):
        if not isinstance(entry, dict):
            continue
        files = entry.get("files", [])
        if entry.get("cycle") in quarantined or not files:
            continue
        if all((directory / name).exists() for name in files):
            return entry
    return None


def quarantine_coordinated(
    directory: Union[str, Path], cycle: int, reason: str
) -> list[str]:
    """Quarantine the whole coordinated set at ``cycle``.

    Every member file is renamed to ``<name>.poisoned`` and the cycle
    is recorded under the manifest's ``"quarantined"`` list, so
    :func:`latest_coordinated` steps back to the previous complete
    set.  Returns the names that were renamed.
    """
    directory = Path(directory)
    manifest = read_shard_manifest(directory)
    renamed: list[str] = []
    for entry in manifest.get("coordinated", []):
        if isinstance(entry, dict) and entry.get("cycle") == cycle:
            for name in entry.get("files", []):
                path = directory / name
                if path.exists():
                    path.rename(path.with_name(path.name + ".poisoned"))
                    renamed.append(name)
    manifest.setdefault("quarantined", []).append(
        {"cycle": cycle, "reason": reason}
    )
    _write_manifest(directory, manifest)
    return renamed


def _write_manifest(directory: Path, manifest: dict[str, Any]) -> None:
    _atomic_write(
        directory / MANIFEST_NAME,
        (json.dumps(manifest, indent=2, default=repr) + "\n").encode(
            "utf-8"
        ),
    )


class CoordinatedCheckpointManager:
    """Commit and retention logic for coordinated shard snapshot sets.

    Owned by :class:`~repro.machine.sharded.ShardedRunner`; the runner
    decides *when* a barrier checkpoint happens and asks each worker to
    write its file, this class decides what counts as *committed* (all
    K files on disk, then a manifest entry) and enforces all-or-none
    retention over whole sets.
    """

    def __init__(self, config: CheckpointConfig, shards: int) -> None:
        if shards < 1:
            raise SnapshotError(
                f"shard count must be >= 1, got {shards}"
            )
        if config.record:
            raise SnapshotError(
                "record/replay is not supported for sharded runs; "
                "use record=False for coordinated checkpoints"
            )
        self.config = config
        self.shards = shards
        self.stats = CheckpointStats()
        #: committed sets, oldest first: {"cycle": int, "files": [...]}
        self._sets: list[dict[str, Any]] = []
        self._quarantined: list[dict[str, Any]] = []
        self._status = "created"
        self._meta: dict[str, Any] = {}

    # ------------------------------------------------------------------
    # lifecycle

    @property
    def directory(self) -> Path:
        return Path(self.config.directory)

    @classmethod
    def attach(
        cls, directory: Union[str, Path]
    ) -> "CoordinatedCheckpointManager":
        """Reconstruct the manager of an existing sharded directory
        (the resume path), preserving its committed-set history."""
        directory = Path(directory)
        manifest = read_shard_manifest(directory)
        config = CheckpointConfig(
            directory=directory,
            interval=int(manifest.get("interval") or 10_000),
            retain=int(manifest.get("retain") or 3),
        )
        self = cls(config, int(manifest["shards"]))
        self._sets = [
            dict(e)
            for e in manifest.get("coordinated", [])
            if isinstance(e, dict)
        ]
        self._quarantined = [
            dict(q)
            for q in manifest.get("quarantined", [])
            if isinstance(q, dict)
        ]
        self._meta = {
            key: manifest[key]
            for key in ("workload", "partition_scheme")
            if key in manifest
        }
        self._status = "attached"
        if self._sets:
            self.stats.last_snapshot_cycle = self._sets[-1]["cycle"]
        return self

    def on_start(self, runner: Any) -> None:
        """Called once when the runner's :meth:`run` begins."""
        self.directory.mkdir(parents=True, exist_ok=True)
        if self._status != "attached":
            self._meta = {
                "workload": getattr(runner, "workload_id", None),
                "partition_scheme": getattr(
                    getattr(runner, "partition", None), "scheme", None
                ),
            }
        self._status = "running"
        self._write()

    def on_complete(self, runner: Any) -> None:
        self._status = "completed"
        self._write()

    # ------------------------------------------------------------------
    # commits

    def shard_name(self, cycle: int, shard: int) -> str:
        return shard_snapshot_name(cycle, shard)

    def commit(
        self, cycle: int, names: list[str], sizes: list[int]
    ) -> None:
        """Commit one complete set: all ``names`` are on disk (the
        workers have replied), so the manifest entry makes the set
        visible to resume; retention then prunes whole old sets."""
        if len(names) != self.shards:
            raise SnapshotError(
                f"coordinated set at cycle {cycle} has {len(names)} "
                f"files, expected {self.shards}"
            )
        # post-rollback replay legitimately re-commits a barrier cycle
        # that is already in the manifest; replace, don't duplicate
        self._sets = [
            e for e in self._sets if e.get("cycle") != cycle
        ]
        self._sets.append({"cycle": cycle, "files": list(names)})
        # replay can commit below a still-listed newer cycle; keep the
        # manifest ordered oldest-first so step-back stays meaningful
        self._sets.sort(key=lambda e: e.get("cycle", 0))
        self.stats.snapshots_written += len(names)
        self.stats.bytes_written += sum(sizes)
        self.stats.last_snapshot_cycle = cycle
        self._write()
        self._prune()

    def _prune(self) -> None:
        """All-or-none retention: drop a set from the manifest first,
        then unlink its files, so a crash mid-prune never leaves a
        committed entry pointing at a partially-deleted set."""
        while len(self._sets) > self.config.retain:
            doomed = self._sets.pop(0)
            self._write()
            for name in doomed["files"]:
                try:
                    (self.directory / name).unlink()
                except FileNotFoundError:
                    pass
                self.stats.snapshots_pruned += 1

    def _write(self) -> None:
        manifest: dict[str, Any] = {
            "schema": MANIFEST_SCHEMA,
            "sharded": True,
            "shards": self.shards,
            "interval": self.config.interval,
            "retain": self.config.retain,
            "status": self._status,
            "coordinated": self._sets,
            "quarantined": self._quarantined,
        }
        manifest.update(self._meta)
        _write_manifest(self.directory, manifest)
