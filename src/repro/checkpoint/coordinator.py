"""Coordinated (Chandy-Lamport) checkpoint sets for sharded runs.

A sharded run (:mod:`repro.machine.sharded`) checkpoints at a lockstep
barrier: every worker writes its own v2 shard snapshot
(``ckpt-<cycle>.shard<k>.snap``, carrying the in-flight channel
messages about to be injected into it as ``extra.channel_state``), and
the coordinator commits the *set* to the directory manifest only after
all K files have landed on disk.  The manifest entry is the unit of
consistency:

* a crash between shard writes leaves stray ``.shard<k>.snap`` files
  but no manifest entry, so :func:`latest_coordinated` never offers a
  partial set for resume;
* retention prunes whole sets, never individual shard files, and drops
  the manifest entry *before* unlinking any file -- a crash mid-prune
  orphans files (harmless) rather than leaving a committed entry that
  points at a half-deleted set.

The single-machine :func:`~repro.checkpoint.snapshot.latest_snapshot`
already ignores shard files (their stem's cycle part is not purely
numeric), so a sharded directory is invisible to the single-machine
resume path; :func:`is_sharded_dir` is how callers (CLI ``resume``,
the supervisor) detect that a directory needs the coordinated path.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Optional, Union

from ..errors import ChainBrokenError, ManifestError, SnapshotError
from ..machine.stats import CheckpointStats
from .manager import CheckpointConfig
from .replay import MANIFEST_NAME, MANIFEST_SCHEMA
from .snapshot import _atomic_write


def shard_snapshot_name(cycle: int, shard: int) -> str:
    """On-disk name of shard ``shard``'s member of the ``cycle`` set."""
    return f"ckpt-{cycle:012d}.shard{shard}.snap"


def read_shard_manifest(directory: Union[str, Path]) -> dict[str, Any]:
    """Read and validate a sharded checkpoint directory's manifest."""
    path = Path(directory) / MANIFEST_NAME
    try:
        manifest = json.loads(path.read_text(encoding="utf-8"))
    except FileNotFoundError:
        raise ManifestError(f"no manifest in {directory}") from None
    except (OSError, json.JSONDecodeError) as exc:
        raise ManifestError(
            f"unreadable manifest in {directory}: {exc}"
        ) from exc
    if not isinstance(manifest, dict) or not manifest.get("sharded"):
        raise ManifestError(
            f"{directory} is not a sharded checkpoint directory"
        )
    shards = manifest.get("shards")
    if not isinstance(shards, int) or shards < 1:
        raise ManifestError(
            f"sharded manifest in {directory} has bad shard count "
            f"{shards!r}"
        )
    return manifest


def is_sharded_dir(directory: Union[str, Path]) -> bool:
    """True when ``directory`` holds coordinated shard snapshot sets."""
    try:
        read_shard_manifest(directory)
    except ManifestError:
        return False
    return True


def _set_chain_broken(
    entry: dict[str, Any],
    by_cycle: dict[Any, dict[str, Any]],
    quarantined: set,
    directory: Path,
) -> bool:
    """True when a delta set's ancestry cannot all be resumed.

    Walks ``parent_cycle`` links from ``entry`` down to a base set;
    any missing/quarantined ancestor entry, any ancestor with missing
    member files, or a malformed (cyclic) link chain breaks the set.
    Full and base sets are self-contained and never broken here.
    """
    seen: set = set()
    node = entry
    while node.get("kind") == "delta":
        cycle = node.get("cycle")
        if cycle in seen:
            return True  # parent_cycle cycle -- malformed manifest
        seen.add(cycle)
        parent = by_cycle.get(node.get("parent_cycle"))
        if parent is None or parent.get("cycle") in quarantined:
            return True
        files = parent.get("files", [])
        if not files or not all(
            (directory / name).exists() for name in files
        ):
            return True
        node = parent
    return False


def latest_coordinated(
    directory: Union[str, Path], exclude: Any = ()
) -> Optional[dict[str, Any]]:
    """Newest committed coordinated set whose files all still exist.

    Returns the manifest entry (``{"cycle": ..., "files": [...]}``) or
    None.  Quarantined sets, sets with missing files and sets whose
    cycle is in ``exclude`` (the in-process healer's barred cycles)
    are skipped -- the next-older complete set wins, mirroring the
    single-machine poisoned-snapshot step-back.  A delta set whose
    parent chain is incomplete (missing, quarantined or gutted
    ancestor sets) is skipped the same way: committing an entry makes
    a set *visible*, but only an intact chain makes it *resumable*.
    """
    directory = Path(directory)
    manifest = read_shard_manifest(directory)
    entries = manifest.get("coordinated", [])
    quarantined = {
        q.get("cycle")
        for q in manifest.get("quarantined", [])
        if isinstance(q, dict)
    }
    quarantined.update(exclude)
    by_cycle = {
        e.get("cycle"): e for e in entries if isinstance(e, dict)
    }
    for entry in reversed(entries):
        if not isinstance(entry, dict):
            continue
        files = entry.get("files", [])
        if entry.get("cycle") in quarantined or not files:
            continue
        if not all((directory / name).exists() for name in files):
            continue
        if _set_chain_broken(entry, by_cycle, quarantined, directory):
            continue
        return entry
    return None


def quarantine_coordinated(
    directory: Union[str, Path], cycle: int, reason: str
) -> list[str]:
    """Quarantine the whole coordinated set at ``cycle``.

    Every member file is renamed to ``<name>.poisoned`` and the cycle
    is recorded under the manifest's ``"quarantined"`` list, so
    :func:`latest_coordinated` steps back to the previous complete
    set.  Delta sets chained on the quarantined set are quarantined
    with it -- their member files can no longer be resolved down to a
    trusted base, so leaving them live would only defer the same
    failure.  Returns the names that were renamed.
    """
    directory = Path(directory)
    manifest = read_shard_manifest(directory)
    entries = [
        e for e in manifest.get("coordinated", []) if isinstance(e, dict)
    ]
    doomed = {cycle}
    # entries are oldest-first and a parent always precedes its child,
    # so one forward pass closes the descendant set transitively
    for entry in sorted(entries, key=lambda e: e.get("cycle", 0)):
        if entry.get("parent_cycle") in doomed:
            doomed.add(entry.get("cycle"))
    renamed: list[str] = []
    for entry in entries:
        if entry.get("cycle") in doomed:
            for name in entry.get("files", []):
                path = directory / name
                if path.exists():
                    path.rename(path.with_name(path.name + ".poisoned"))
                    renamed.append(name)
    already = {
        q.get("cycle")
        for q in manifest.get("quarantined", [])
        if isinstance(q, dict)
    }
    quarantined = manifest.setdefault("quarantined", [])
    quarantined.append({"cycle": cycle, "reason": reason})
    for child in sorted(doomed - {cycle}):
        if child not in already:
            quarantined.append(
                {
                    "cycle": child,
                    "reason": f"delta set chained on quarantined set "
                    f"at cycle {cycle}",
                }
            )
    _write_manifest(directory, manifest)
    return renamed


def _write_manifest(directory: Path, manifest: dict[str, Any]) -> None:
    _atomic_write(
        directory / MANIFEST_NAME,
        (json.dumps(manifest, indent=2, default=repr) + "\n").encode(
            "utf-8"
        ),
    )


class CoordinatedCheckpointManager:
    """Commit and retention logic for coordinated shard snapshot sets.

    Owned by :class:`~repro.machine.sharded.ShardedRunner`; the runner
    decides *when* a barrier checkpoint happens and asks each worker to
    write its file, this class decides what counts as *committed* (all
    K files on disk, then a manifest entry) and enforces all-or-none
    retention over whole sets.
    """

    def __init__(self, config: CheckpointConfig, shards: int) -> None:
        if shards < 1:
            raise SnapshotError(
                f"shard count must be >= 1, got {shards}"
            )
        if config.record:
            raise SnapshotError(
                "record/replay is not supported for sharded runs; "
                "use record=False for coordinated checkpoints"
            )
        self.config = config
        self.shards = shards
        self.stats = CheckpointStats()
        #: committed sets, oldest first: {"cycle": int, "files": [...]}
        #: (chained sets add "kind", "chain_depth" and, for deltas,
        #: "parent_cycle")
        self._sets: list[dict[str, Any]] = []
        self._quarantined: list[dict[str, Any]] = []
        self._status = "created"
        self._meta: dict[str, Any] = {}
        #: True only while the previous set was written by the workers
        #: currently running -- the only situation in which their
        #: in-memory chain tips provably match the last committed set.
        #: False at construction, after attach and after any rollback,
        #: so the next set is always a full base.
        self._chain_live = False

    # ------------------------------------------------------------------
    # lifecycle

    @property
    def directory(self) -> Path:
        return Path(self.config.directory)

    @classmethod
    def attach(
        cls, directory: Union[str, Path]
    ) -> "CoordinatedCheckpointManager":
        """Reconstruct the manager of an existing sharded directory
        (the resume path), preserving its committed-set history."""
        directory = Path(directory)
        manifest = read_shard_manifest(directory)
        config = CheckpointConfig(
            directory=directory,
            interval=int(manifest.get("interval") or 10_000),
            retain=int(manifest.get("retain") or 3),
            delta_every=int(manifest.get("delta_every") or 0),
            max_chain_depth=int(manifest.get("max_chain_depth") or 64),
        )
        self = cls(config, int(manifest["shards"]))
        self._sets = [
            dict(e)
            for e in manifest.get("coordinated", [])
            if isinstance(e, dict)
        ]
        self._quarantined = [
            dict(q)
            for q in manifest.get("quarantined", [])
            if isinstance(q, dict)
        ]
        self._meta = {
            key: manifest[key]
            for key in ("workload", "partition_scheme")
            if key in manifest
        }
        self._status = "attached"
        if self._sets:
            self.stats.last_snapshot_cycle = self._sets[-1]["cycle"]
        return self

    def on_start(self, runner: Any) -> None:
        """Called once when the runner's :meth:`run` begins."""
        self.directory.mkdir(parents=True, exist_ok=True)
        if self._status != "attached":
            self._meta = {
                "workload": getattr(runner, "workload_id", None),
                "partition_scheme": getattr(
                    getattr(runner, "partition", None), "scheme", None
                ),
            }
        self._status = "running"
        self._write()

    def on_complete(self, runner: Any) -> None:
        self._status = "completed"
        self._write()

    # ------------------------------------------------------------------
    # commits

    def shard_name(self, cycle: int, shard: int) -> str:
        return shard_snapshot_name(cycle, shard)

    def next_kind(self) -> str:
        """What the next coordinated set should be written as.

        ``"full"`` when delta chains are disabled; otherwise ``"base"``
        unless the previous set is known to have been written by the
        *current* workers (``_chain_live``) and extending its chain
        stays inside the ``delta_every``/``max_chain_depth`` policy.
        """
        every = self.config.delta_every
        if not every:
            return "full"
        if not self._chain_live or not self._sets:
            return "base"
        last = self._sets[-1]
        if last.get("kind") not in ("base", "delta"):
            return "base"
        depth = int(last.get("chain_depth", 0)) + 1
        if depth >= every or depth > self.config.max_chain_depth:
            return "base"
        return "delta"

    def reset_chain(self) -> None:
        """Forget the live chain: called by the runner whenever worker
        state no longer descends from the last committed set (rollback,
        respawn, degrade), so the next set is a full base."""
        self._chain_live = False

    def _delta_parent(
        self, entries: list[dict[str, Any]], cycle: int
    ) -> dict[str, Any]:
        """The set a delta committed at ``cycle`` chains on, validated
        intact; raises :class:`ChainBrokenError` otherwise (a delta
        set whose parent is already unusable must never be committed
        -- it would be born unresumable)."""
        parent: Optional[dict[str, Any]] = None
        for entry in entries:
            if entry.get("cycle", 0) < cycle:
                parent = entry
        if parent is None or parent.get("kind") not in ("base", "delta"):
            raise ChainBrokenError(
                f"cannot commit coordinated delta set at cycle {cycle}: "
                f"no chained parent set in the manifest",
                status="orphaned",
            )
        quarantined = {
            q.get("cycle") for q in self._quarantined if isinstance(q, dict)
        }
        if parent.get("cycle") in quarantined:
            raise ChainBrokenError(
                f"cannot commit coordinated delta set at cycle {cycle}: "
                f"parent set at cycle {parent.get('cycle')} is quarantined",
                status="damaged",
            )
        files = parent.get("files", [])
        missing = [
            name for name in files if not (self.directory / name).exists()
        ]
        if missing or not files:
            raise ChainBrokenError(
                f"cannot commit coordinated delta set at cycle {cycle}: "
                f"parent set at cycle {parent.get('cycle')} is missing "
                f"files {missing}",
                status="orphaned",
            )
        return parent

    def commit(
        self,
        cycle: int,
        names: list[str],
        sizes: list[int],
        kind: str = "full",
    ) -> None:
        """Commit one complete set: all ``names`` are on disk (the
        workers have replied), so the manifest entry makes the set
        visible to resume; retention then prunes whole old sets.

        A ``kind="delta"`` set commits only when its parent set (the
        previous committed barrier) is still intact -- all K parent
        files present and not quarantined -- otherwise a typed
        :class:`ChainBrokenError` is raised and nothing is committed.
        """
        if len(names) != self.shards:
            raise SnapshotError(
                f"coordinated set at cycle {cycle} has {len(names)} "
                f"files, expected {self.shards}"
            )
        # post-rollback replay legitimately re-commits a barrier cycle
        # that is already in the manifest; replace, don't duplicate
        survivors = [e for e in self._sets if e.get("cycle") != cycle]
        if len(survivors) != len(self._sets):
            # the replaced set's files were just overwritten, so any
            # still-listed delta set chained (transitively) on it now
            # points at rewritten parents; drop those entries too --
            # their files stay on disk as harmless orphans, exactly
            # like a crash between shard writes would leave
            doomed = {cycle}
            kept: list[dict[str, Any]] = []
            for entry in survivors:  # oldest-first: parents precede kids
                if entry.get("parent_cycle") in doomed:
                    doomed.add(entry.get("cycle"))
                else:
                    kept.append(entry)
            survivors = kept
        entry: dict[str, Any] = {"cycle": cycle, "files": list(names)}
        if kind == "delta":
            parent = self._delta_parent(survivors, cycle)
            entry["kind"] = "delta"
            entry["parent_cycle"] = parent["cycle"]
            entry["chain_depth"] = int(parent.get("chain_depth", 0)) + 1
        elif kind == "base":
            entry["kind"] = "base"
            entry["chain_depth"] = 0
        self._sets = survivors
        self._sets.append(entry)
        # replay can commit below a still-listed newer cycle; keep the
        # manifest ordered oldest-first so step-back stays meaningful
        self._sets.sort(key=lambda e: e.get("cycle", 0))
        self.stats.snapshots_written += len(names)
        self.stats.bytes_written += sum(sizes)
        if kind == "delta":
            self.stats.delta_snapshots += len(names)
            self.stats.delta_bytes_written += sum(sizes)
        self.stats.last_snapshot_cycle = cycle
        self._write()
        self._prune()
        if kind != "full":
            self._chain_live = True

    def _set_chains(self) -> list[list[dict[str, Any]]]:
        """Split the committed sets into prune units: a full set is
        its own unit, a base set plus the deltas chained on it form
        one unit (committed consecutively, so always adjacent)."""
        groups: list[list[dict[str, Any]]] = []
        for entry in self._sets:
            if (
                groups
                and entry.get("kind") == "delta"
                and entry.get("parent_cycle")
                == groups[-1][-1].get("cycle")
            ):
                groups[-1].append(entry)
            else:
                groups.append([entry])
        return groups

    def _prune(self) -> None:
        """All-or-none retention over whole set *chains*: drop the
        oldest chain from the manifest first, then unlink its files,
        so a crash mid-prune never leaves a committed entry pointing
        at a partially-deleted set.  A base whose deltas are still
        listed is never unlinked on its own, and ``retain=0`` keeps
        everything (mirroring :class:`CheckpointConfig`)."""
        retain = self.config.retain
        if not retain:
            return
        while len(self._sets) > retain:
            doomed = self._set_chains()[0]
            if len(self._sets) - len(doomed) < retain:
                break  # dropping the whole chain would dip below retain
            del self._sets[: len(doomed)]
            self._write()
            for entry in reversed(doomed):
                for name in entry["files"]:
                    try:
                        (self.directory / name).unlink()
                    except FileNotFoundError:
                        pass
                    self.stats.snapshots_pruned += 1

    def _write(self) -> None:
        manifest: dict[str, Any] = {
            "schema": MANIFEST_SCHEMA,
            "sharded": True,
            "shards": self.shards,
            "interval": self.config.interval,
            "retain": self.config.retain,
            "status": self._status,
            "coordinated": self._sets,
            "quarantined": self._quarantined,
        }
        # only delta-chained directories carry the chain knobs, so
        # manifests written by classic runs stay byte-identical
        if self.config.delta_every:
            manifest["delta_every"] = self.config.delta_every
            manifest["max_chain_depth"] = self.config.max_chain_depth
        manifest.update(self._meta)
        _write_manifest(self.directory, manifest)
