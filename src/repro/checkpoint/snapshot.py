"""Crash-consistent, versioned, checksummed machine snapshots.

A snapshot file carries one serialized :class:`repro.machine.Machine`
mid-run -- event heap, operand registers, retransmission queues,
sequence numbers, fault-plan RNG cursor, unit health and statistics --
wrapped in a self-describing binary envelope:

====== ======= ====================================================
offset size    field
====== ======= ====================================================
0      8       magic ``b"RPROSNAP"``
8      4       format version (big-endian; currently 1)
12     8       payload length in bytes (big-endian)
20     32      SHA-256 of the payload
52     n       payload: pickled ``{"machine", "cycle", "reason"}``
====== ======= ====================================================

The envelope is validated *before* any unpickling, so a truncated,
corrupted or foreign file raises a typed
:class:`~repro.errors.SnapshotError` instead of a pickle crash.  Writes
go to a temporary file in the target directory, are fsynced, and are
published with an atomic ``os.replace`` -- a snapshot either exists
completely or not at all.

Snapshots contain pickled code references and are a *trusted* format:
only load files your own runs produced.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import struct
import tempfile
from pathlib import Path
from typing import Any, Optional, Union

from ..errors import SnapshotError

MAGIC = b"RPROSNAP"
FORMAT_VERSION = 1

#: magic(8s) + version(I) + payload length(Q) + payload sha256(32s)
_HEADER = struct.Struct(">8sIQ32s")


def _atomic_write(path: Path, data: bytes) -> None:
    """Write ``data`` to ``path`` with write-then-rename atomicity.

    The temporary sibling gets a unique per-writer name (via
    ``tempfile.mkstemp``), so two processes checkpointing into the same
    directory never clobber each other's in-flight temp file; the loser
    of the final ``os.replace`` race simply has its complete snapshot
    superseded by the winner's complete snapshot.
    """
    fd, tmp = tempfile.mkstemp(
        prefix=path.name + ".", suffix=".tmp", dir=path.parent
    )
    try:
        with os.fdopen(fd, "wb") as fh:
            fh.write(data)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    try:
        dirfd = os.open(path.parent, os.O_RDONLY)
    except OSError:         # platform without directory fds
        return
    try:
        os.fsync(dirfd)
    finally:
        os.close(dirfd)


def snapshot_bytes(machine: Any, reason: str = "periodic") -> bytes:
    """Serialize ``machine`` into the snapshot envelope."""
    payload = pickle.dumps(
        {"machine": machine, "cycle": machine.now, "reason": reason},
        protocol=pickle.HIGHEST_PROTOCOL,
    )
    header = _HEADER.pack(
        MAGIC, FORMAT_VERSION, len(payload), hashlib.sha256(payload).digest()
    )
    return header + payload


def save_snapshot(
    machine: Any, path: Union[str, Path], reason: str = "periodic"
) -> Path:
    """Atomically write one snapshot of ``machine`` and return its path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    _atomic_write(path, snapshot_bytes(machine, reason))
    return path


def read_snapshot(path: Union[str, Path]) -> dict[str, Any]:
    """Validate and deserialize one snapshot file into its payload dict.

    Raises :class:`SnapshotError` for every damage mode: missing file,
    bad magic, unsupported format version, truncation, or checksum
    mismatch.
    """
    path = Path(path)
    try:
        raw = path.read_bytes()
    except FileNotFoundError:
        raise SnapshotError(f"snapshot {path} does not exist") from None
    except OSError as exc:
        raise SnapshotError(f"cannot read snapshot {path}: {exc}") from exc
    if len(raw) < _HEADER.size:
        raise SnapshotError(
            f"snapshot {path} is truncated: {len(raw)} bytes is shorter "
            f"than the {_HEADER.size}-byte header"
        )
    magic, version, length, digest = _HEADER.unpack_from(raw)
    if magic != MAGIC:
        raise SnapshotError(f"{path} is not a repro snapshot (bad magic)")
    if version != FORMAT_VERSION:
        raise SnapshotError(
            f"snapshot {path} has format version {version}; this build "
            f"reads version {FORMAT_VERSION}"
        )
    payload = raw[_HEADER.size:]
    if len(payload) != length:
        raise SnapshotError(
            f"snapshot {path} is truncated: header promises {length} "
            f"payload bytes, file holds {len(payload)}"
        )
    if hashlib.sha256(payload).digest() != digest:
        raise SnapshotError(
            f"snapshot {path} failed its checksum: the file is corrupted"
        )
    try:
        data = pickle.loads(payload)
    except Exception as exc:   # checksummed yet unpicklable: version skew
        raise SnapshotError(
            f"snapshot {path} cannot be deserialized: {exc}"
        ) from exc
    if not isinstance(data, dict) or "machine" not in data:
        raise SnapshotError(f"snapshot {path} has an unexpected payload")
    return data


def snapshot_cycle(path: Union[str, Path]) -> int:
    """The cycle a snapshot was taken at, from the envelope payload."""
    return int(read_snapshot(path)["cycle"])


#: snapshot name prefixes ranked for resume preference at equal cycles
_PREFIX_RANK = {"initial": 3, "ckpt": 2, "timeout": 1, "failure": 0}


def latest_snapshot(
    directory: Union[str, Path], include_failures: bool = False
) -> Optional[Path]:
    """The newest *resumable* snapshot in a checkpoint directory.

    File names encode their cycle (``ckpt-<cycle>.snap``,
    ``timeout-<cycle>.snap``, ``failure-<cycle>.snap``;
    ``initial.snap`` is cycle 0), so no file needs to be opened to pick
    the resume point.

    Resume-from-directory wants the last *good* state: a
    ``failure-*.snap`` pins a machine that is already wedged, so
    resuming it would immediately re-fail.  By default only
    initial/periodic/timeout snapshots are considered -- a timed-out
    machine was still making progress and resumes usefully with a
    larger ``max_cycles`` -- and failure snapshots are loadable only
    when named explicitly (or with ``include_failures=True``).  At
    equal cycles a periodic snapshot beats a timeout one beats a
    failure one.
    """
    directory = Path(directory)
    best: Optional[tuple[int, int, Path]] = None
    for path in directory.glob("*.snap"):
        stem = path.stem
        if stem == "initial":
            key = (0, _PREFIX_RANK["initial"])
        else:
            prefix, _, cycle = stem.partition("-")
            if prefix not in _PREFIX_RANK or not cycle.isdigit():
                continue
            if prefix == "failure" and not include_failures:
                continue
            key = (int(cycle), _PREFIX_RANK[prefix])
        if best is None or key > best[:2]:
            best = (*key, path)
    return best[2] if best is not None else None


def load_machine(
    source: Union[str, Path], expected_cls: Optional[type] = None
) -> Any:
    """Load the machine held by a snapshot file or checkpoint directory.

    The deserialized event heap is checked against the machine's event
    vocabulary so a tampered payload cannot smuggle handler names in.
    """
    path = Path(source)
    if path.is_dir():
        found = latest_snapshot(path)
        if found is None:
            failures = sorted(p.name for p in path.glob("failure-*.snap"))
            if failures:
                raise SnapshotError(
                    f"no resumable snapshots in directory {path}; it only "
                    f"holds failure snapshots ({', '.join(failures)}), "
                    f"which pin an already-wedged machine -- name one "
                    f"explicitly to load it for forensics"
                )
            raise SnapshotError(f"no snapshots in directory {path}")
        path = found
    machine = read_snapshot(path)["machine"]
    if expected_cls is not None and not isinstance(machine, expected_cls):
        raise SnapshotError(
            f"snapshot {path} holds a {type(machine).__name__}, "
            f"not a {expected_cls.__name__}"
        )
    kinds = getattr(type(machine), "_EVENT_KINDS", frozenset())
    for _time, _seq, kind, _args, _aux in getattr(machine, "_events", []):
        if kind not in kinds:
            raise SnapshotError(
                f"snapshot {path} schedules unknown event kind {kind!r}"
            )
    return machine
