"""Crash-consistent, versioned, checksummed machine snapshots.

A snapshot file carries one serialized :class:`repro.machine.Machine`
mid-run -- event heap, operand registers, retransmission queues,
sequence numbers, fault-plan RNG cursor, unit health and statistics --
wrapped in a self-describing **format v2** envelope:

====== ======= ====================================================
offset size    field
====== ======= ====================================================
0      8       magic ``b"RPROSNAP"``
8      4       format version (big-endian; currently 2)
12     8       metadata length in bytes (big-endian)
20     32      SHA-256 of the metadata section
52     8       payload length in bytes (big-endian)
60     32      SHA-256 of the payload
92     m       metadata: UTF-8 JSON object (format/code version,
               workload id, cycle, reason, run statistics)
92+m   n       payload: pickled ``{"machine", "cycle", "reason"}``
====== ======= ====================================================

The metadata section is plain JSON and is readable (and checksum
verifiable) without deserializing any machine state --
:func:`read_metadata` and ``repro snapshot inspect`` never touch the
payload.  The payload itself is decoded through a **restricted
unpickler**: only an explicit allowlist of state-bearing ``repro``
classes plus a short allowlist of stdlib container types may be
referenced; any other global (``os.system``, ``builtins.eval``, a
dotted attribute chain, a ``repro`` module-level *function* such as
``repro.cli.main``) raises a typed
:class:`~repro.errors.SnapshotError` *before* any object is
constructed.  Snapshots therefore no longer need to be treated as a
trusted format -- hostile or stale bytes fail closed.

The envelope is validated (magic, version, lengths, both checksums)
before any decoding, so a truncated, corrupted or foreign file raises
a typed :class:`~repro.errors.SnapshotError` instead of a pickle
crash.  Writes go to a temporary file in the target directory, are
fsynced, and are published with an atomic ``os.replace`` -- a snapshot
either exists completely or not at all.

Format v1 files (the pre-v2 layout: one 52-byte header over an
unrestricted pickle) still load behind an explicit
``allow_legacy=True`` / ``--allow-v1`` opt-in, and
:func:`migrate_snapshot` (CLI: ``repro snapshot migrate``) rewrites
them to v2 in place with checksum verification on both sides.
"""

from __future__ import annotations

import hashlib
import io
import json
import os
import pickle
import struct
import tempfile
from pathlib import Path
from typing import Any, Optional, Union

from ..errors import SnapshotError

MAGIC = b"RPROSNAP"
FORMAT_VERSION = 2
#: the pre-metadata, unrestricted-pickle format still readable behind
#: ``allow_legacy=True``
LEGACY_VERSION = 1

#: v2: magic(8s) + version(I) + meta len(Q) + meta sha256(32s)
#:     + payload length(Q) + payload sha256(32s)
_HEADER = struct.Struct(">8sIQ32sQ32s")
#: v1: magic(8s) + version(I) + payload length(Q) + payload sha256(32s)
_HEADER_V1 = struct.Struct(">8sIQ32s")


# ----------------------------------------------------------------------
# restricted unpickling
# ----------------------------------------------------------------------
#: stdlib globals a machine pickle may legitimately reference.  The
#: set is deliberately tiny -- container types and the seeded RNG --
#: and was derived by enumerating ``find_class`` calls over real
#: snapshots of every paper-figure workload.
_STDLIB_ALLOWLIST: dict[str, frozenset[str]] = {
    "builtins": frozenset(
        {"set", "frozenset", "complex", "bytearray", "range", "slice",
         "object"}
    ),
    "collections": frozenset({"deque", "OrderedDict", "Counter"}),
    "random": frozenset({"Random"}),
}

#: ``repro`` globals a machine pickle may legitimately reference: the
#: state-bearing classes of a serialized machine, pinned per defining
#: module.  Derived the same way as the stdlib list -- by enumerating
#: ``find_class`` calls over real snapshots of every paper-figure
#: workload (initial, mid-run, timeout and failure states, with and
#: without fault plans and record mode).  Pinning names, rather than
#: admitting anything importable from ``repro.*``, keeps module-level
#: *functions* out of reach: pickle's ``REDUCE`` opcode calls whatever
#: ``find_class`` returns with arguments taken from the stream, so
#: admitting e.g. ``repro.cli.main`` would hand a checksummed-but-
#: hostile file arbitrary code execution.
_REPRO_ALLOWLIST: dict[str, frozenset[str]] = {
    "repro.checkpoint.manager": frozenset(
        {"CheckpointConfig", "CheckpointManager"}
    ),
    "repro.checkpoint.replay": frozenset({"EventTrace"}),
    "repro.faults.injector": frozenset({"FaultInjector", "FaultStats"}),
    "repro.faults.plan": frozenset(
        {"FaultPlan", "ShardFault", "UnitFault"}
    ),
    "repro.graph.cell": frozenset({"Arc", "Cell", "_NoTokenType"}),
    "repro.graph.graph": frozenset({"DataflowGraph"}),
    "repro.graph.opcodes": frozenset({"Op"}),
    "repro.machine.config": frozenset({"MachineConfig"}),
    "repro.machine.machine": frozenset(
        {"Machine", "_CellState", "_UnitState"}
    ),
    "repro.machine.sharded": frozenset({"ShardMachine"}),
    "repro.machine.packets": frozenset({"PacketCounters"}),
    "repro.machine.stats": frozenset(
        {"CheckpointStats", "ReliabilityStats"}
    ),
}


class _RestrictedUnpickler(pickle.Unpickler):
    """Unpickler that refuses every global outside the allowlists.

    ``find_class`` is the only gate through which a pickle stream can
    reach callables, so rejecting here stops gadget payloads
    (``os.system``, ``builtins.eval``, ``repro.cli.main``, ...) before
    any object is constructed.  Dotted names are rejected outright:
    protocol-4 ``STACK_GLOBAL`` resolves them with a ``getattr``
    chain, which would let ``("repro.checkpoint.snapshot",
    "os.system")`` escape a plain module prefix check.  Whatever an
    allowlisted name resolves to must additionally be a *class*
    defined in its allowlist's package -- a function (or a module
    rebound over an allowlisted name) executes under ``REDUCE``
    instead of merely constructing state, so non-classes are refused
    even if a future allowlist edit names one by mistake.
    """

    def find_class(self, module: str, name: str) -> Any:
        if "." in name:
            raise SnapshotError(
                f"snapshot payload references dotted global "
                f"{module}.{name}; refusing to traverse attributes"
            )
        allowed = _REPRO_ALLOWLIST.get(module, _STDLIB_ALLOWLIST.get(module))
        if allowed is None or name not in allowed:
            raise SnapshotError(
                f"snapshot payload references forbidden global "
                f"{module}.{name}; only allowlisted repro state classes "
                f"and stdlib containers may appear in a snapshot"
            )
        obj = super().find_class(module, name)
        if not isinstance(obj, type):
            raise SnapshotError(
                f"snapshot payload references {module}.{name}, which is "
                f"not a class; refusing a callable that REDUCE would "
                f"invoke"
            )
        if (module in _REPRO_ALLOWLIST
                and getattr(obj, "__module__", "").split(".")[0] != "repro"):
            raise SnapshotError(
                f"snapshot payload references {module}.{name}, which "
                f"is not defined inside the repro package"
            )
        return obj


def _restricted_loads(payload: bytes, where: str) -> Any:
    try:
        return _RestrictedUnpickler(io.BytesIO(payload)).load()
    except SnapshotError:
        raise
    except Exception as exc:   # checksummed yet undecodable: version skew
        raise SnapshotError(f"{where} cannot be deserialized: {exc}") from exc


# ----------------------------------------------------------------------
# atomic writes
# ----------------------------------------------------------------------
def _atomic_write(path: Path, data: bytes) -> None:
    """Write ``data`` to ``path`` with write-then-rename atomicity.

    The temporary sibling gets a unique per-writer name (via
    ``tempfile.mkstemp``), so two processes checkpointing into the same
    directory never clobber each other's in-flight temp file; the loser
    of the final ``os.replace`` race simply has its complete snapshot
    superseded by the winner's complete snapshot.
    """
    fd, tmp = tempfile.mkstemp(
        prefix=path.name + ".", suffix=".tmp", dir=path.parent
    )
    try:
        with os.fdopen(fd, "wb") as fh:
            fh.write(data)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    try:
        dirfd = os.open(path.parent, os.O_RDONLY)
    except OSError:         # platform without directory fds
        return
    try:
        os.fsync(dirfd)
    finally:
        os.close(dirfd)


# ----------------------------------------------------------------------
# encoding
# ----------------------------------------------------------------------
def snapshot_metadata(machine: Any, reason: str = "periodic") -> dict[str, Any]:
    """The self-describing JSON metadata section for one snapshot.

    Everything here is derivable without the payload, deliberately
    free of wall-clock timestamps (snapshots of identical machine
    states are byte-identical), and safe to show for an untrusted
    file -- ``repro snapshot inspect`` prints exactly this.
    """
    from .. import __version__

    stats: dict[str, Any] = {
        "events_pending": len(getattr(machine, "_events", ())),
        "progress": getattr(machine, "_progress", 0),
    }
    sink_progress = getattr(machine, "_sink_progress", None)
    if callable(sink_progress):
        stats["sinks"] = {
            stream: list(pair) for stream, pair in sink_progress().items()
        }
    ckpt = getattr(machine, "ckpt", None)
    if ckpt is not None:
        stats["snapshots_written"] = ckpt.stats.snapshots_written
    meta = {
        "format": FORMAT_VERSION,
        "code_version": __version__,
        "workload": getattr(machine, "workload_id", None),
        "cycle": machine.now,
        "reason": reason,
        "stats": stats,
    }
    shard = getattr(machine, "shard_index", None)
    if shard is not None:
        # one member of a coordinated shard set: resumable only as a
        # complete set through the coordinated manifest
        meta["shard"] = shard
        meta["shards"] = getattr(machine, "n_shards", None)
    return meta


def _pack_envelope(meta: dict[str, Any], payload: bytes) -> bytes:
    meta_bytes = json.dumps(meta, sort_keys=True, default=repr).encode("utf-8")
    header = _HEADER.pack(
        MAGIC,
        FORMAT_VERSION,
        len(meta_bytes),
        hashlib.sha256(meta_bytes).digest(),
        len(payload),
        hashlib.sha256(payload).digest(),
    )
    return header + meta_bytes + payload


def snapshot_bytes(
    machine: Any,
    reason: str = "periodic",
    extra: Optional[dict[str, Any]] = None,
) -> bytes:
    """Serialize ``machine`` into the v2 snapshot envelope.

    ``extra`` rides along in the payload (same restricted-unpickler
    rules apply on load); the coordinated sharded checkpoint stores
    each shard's in-flight channel state there.
    """
    data: dict[str, Any] = {
        "machine": machine, "cycle": machine.now, "reason": reason,
    }
    if extra is not None:
        data["extra"] = extra
    payload = pickle.dumps(data, protocol=pickle.HIGHEST_PROTOCOL)
    return _pack_envelope(snapshot_metadata(machine, reason), payload)


def _snapshot_bytes_v1(machine: Any, reason: str = "periodic") -> bytes:
    """Serialize ``machine`` into the legacy v1 envelope.

    Kept (private) so the migration fixtures and the v1-vs-v2 codec
    benchmark can produce bit-faithful legacy files; nothing in the
    write path uses it.
    """
    payload = pickle.dumps(
        {"machine": machine, "cycle": machine.now, "reason": reason},
        protocol=pickle.HIGHEST_PROTOCOL,
    )
    header = _HEADER_V1.pack(
        MAGIC, LEGACY_VERSION, len(payload), hashlib.sha256(payload).digest()
    )
    return header + payload


def save_snapshot(
    machine: Any,
    path: Union[str, Path],
    reason: str = "periodic",
    extra: Optional[dict[str, Any]] = None,
) -> Path:
    """Atomically write one snapshot of ``machine`` and return its path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    _atomic_write(path, snapshot_bytes(machine, reason, extra=extra))
    return path


# ----------------------------------------------------------------------
# decoding
# ----------------------------------------------------------------------
def _read_raw(path: Path) -> bytes:
    try:
        return path.read_bytes()
    except FileNotFoundError:
        raise SnapshotError(f"snapshot {path} does not exist") from None
    except OSError as exc:
        raise SnapshotError(f"cannot read snapshot {path}: {exc}") from exc


def _split_envelope(path: Path, raw: bytes) -> tuple[int, bytes, bytes]:
    """Validate the envelope and return ``(version, meta_bytes,
    payload)``; ``meta_bytes`` is empty for v1 files.

    Every check here runs before any JSON or pickle decoding: magic,
    version, section lengths (no truncation, no trailing garbage) and
    both SHA-256 checksums.
    """
    if len(raw) < _HEADER_V1.size:
        raise SnapshotError(
            f"snapshot {path} is truncated: {len(raw)} bytes is shorter "
            f"than the {_HEADER_V1.size}-byte header"
        )
    magic, version = struct.unpack_from(">8sI", raw)
    if magic != MAGIC:
        raise SnapshotError(f"{path} is not a repro snapshot (bad magic)")
    if version == LEGACY_VERSION:
        _, _, length, digest = _HEADER_V1.unpack_from(raw)
        payload = raw[_HEADER_V1.size:]
        if len(payload) != length:
            raise SnapshotError(
                f"snapshot {path} is truncated: header promises {length} "
                f"payload bytes, file holds {len(payload)}"
            )
        if hashlib.sha256(payload).digest() != digest:
            raise SnapshotError(
                f"snapshot {path} failed its checksum: the file is corrupted"
            )
        return version, b"", payload
    if version != FORMAT_VERSION:
        raise SnapshotError(
            f"snapshot {path} has format version {version}; this build "
            f"reads versions {LEGACY_VERSION} and {FORMAT_VERSION}"
        )
    if len(raw) < _HEADER.size:
        raise SnapshotError(
            f"snapshot {path} is truncated: {len(raw)} bytes is shorter "
            f"than the {_HEADER.size}-byte v2 header"
        )
    (_, _, meta_len, meta_digest, payload_len, payload_digest) = (
        _HEADER.unpack_from(raw)
    )
    expected = _HEADER.size + meta_len + payload_len
    if len(raw) != expected:
        raise SnapshotError(
            f"snapshot {path} is damaged: header promises {expected} "
            f"bytes total, file holds {len(raw)}"
        )
    meta_bytes = raw[_HEADER.size:_HEADER.size + meta_len]
    payload = raw[_HEADER.size + meta_len:]
    if hashlib.sha256(meta_bytes).digest() != meta_digest:
        raise SnapshotError(
            f"snapshot {path} failed its metadata checksum: the file is "
            f"corrupted"
        )
    if hashlib.sha256(payload).digest() != payload_digest:
        raise SnapshotError(
            f"snapshot {path} failed its payload checksum: the file is "
            f"corrupted"
        )
    return version, meta_bytes, payload


def _decode_meta(path: Path, meta_bytes: bytes) -> dict[str, Any]:
    try:
        meta = json.loads(meta_bytes.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise SnapshotError(
            f"snapshot {path} has an unreadable metadata section: {exc}"
        ) from exc
    if not isinstance(meta, dict):
        raise SnapshotError(
            f"snapshot {path} metadata is not a JSON object"
        )
    return meta


def read_metadata(path: Union[str, Path]) -> dict[str, Any]:
    """Read a snapshot's self-describing metadata without deserializing
    any machine state.

    For v2 files this returns the embedded JSON metadata section (with
    ``"checksum": "ok"`` added -- both section checksums are verified
    on the way).  For v1 files, which carry no metadata, it returns
    what the envelope alone reveals plus a migration hint.  The
    payload is never unpickled, so this is safe on untrusted files.
    """
    path = Path(path)
    raw = _read_raw(path)
    version, meta_bytes, payload = _split_envelope(path, raw)
    if version == LEGACY_VERSION:
        return {
            "format": LEGACY_VERSION,
            "payload_bytes": len(payload),
            "checksum": "ok",
            "hint": (
                "legacy v1 snapshot (no metadata section, unrestricted "
                "pickle); run `repro snapshot migrate` to rewrite it as "
                "v2, or load it with --allow-v1 / allow_legacy=True"
            ),
        }
    meta = _decode_meta(path, meta_bytes)
    meta["payload_bytes"] = len(payload)
    meta["checksum"] = "ok"
    return meta


def read_snapshot(
    path: Union[str, Path], allow_legacy: bool = False
) -> dict[str, Any]:
    """Validate and deserialize one snapshot file into its payload dict.

    Raises :class:`SnapshotError` for every damage mode: missing file,
    bad magic, unsupported format version, truncation, trailing
    garbage, checksum mismatch on either section, undecodable
    metadata, or a payload that references any global outside the
    restricted-unpickler allowlist.  Legacy v1 files are refused
    unless ``allow_legacy=True`` (they decode through the same
    restricted unpickler).  The returned dict carries the payload
    fields (``machine``, ``cycle``, ``reason``) plus the metadata
    section under ``"meta"``.
    """
    path = Path(path)
    raw = _read_raw(path)
    version, meta_bytes, payload = _split_envelope(path, raw)
    if version == LEGACY_VERSION:
        if not allow_legacy:
            raise SnapshotError(
                f"snapshot {path} uses legacy format v1; migrate it with "
                f"`repro snapshot migrate {path}`, or opt in explicitly "
                f"with --allow-v1 / allow_legacy=True"
            )
        meta: dict[str, Any] = {"format": LEGACY_VERSION}
    else:
        meta = _decode_meta(path, meta_bytes)
    data = _restricted_loads(payload, f"snapshot {path}")
    if not isinstance(data, dict) or "machine" not in data:
        raise SnapshotError(f"snapshot {path} has an unexpected payload")
    data["meta"] = meta
    return data


def snapshot_cycle(
    path: Union[str, Path], allow_legacy: bool = False
) -> int:
    """The cycle a snapshot was taken at.

    Read from the v2 metadata section when available (no payload
    deserialization); v1 files fall back to decoding the payload and
    honour the same ``allow_legacy`` gate as :func:`read_snapshot`.
    """
    meta = read_metadata(path)
    if "cycle" in meta:
        return int(meta["cycle"])
    return int(read_snapshot(path, allow_legacy=allow_legacy)["cycle"])


def migrate_snapshot(path: Union[str, Path]) -> str:
    """Rewrite a legacy v1 snapshot to format v2 in place.

    The v1 payload checksum is verified before decoding (through the
    restricted unpickler), the rewritten file is re-read and
    re-verified end to end before the function returns, and the write
    itself is atomic -- a crash mid-migration leaves the original
    file untouched.  Returns ``"migrated"`` or ``"already-v2"``.
    """
    path = Path(path)
    raw = _read_raw(path)
    version, _, payload = _split_envelope(path, raw)
    if version == FORMAT_VERSION:
        return "already-v2"
    data = _restricted_loads(payload, f"snapshot {path}")
    if not isinstance(data, dict) or "machine" not in data:
        raise SnapshotError(f"snapshot {path} has an unexpected payload")
    reason = str(data.get("reason", "migrated"))
    meta = snapshot_metadata(data["machine"], reason)
    # keep the original payload byte-for-byte: migration must not
    # re-serialize state it merely re-wraps
    _atomic_write(path, _pack_envelope(meta, payload))
    check = read_snapshot(path)
    if check["cycle"] != data.get("cycle") or check["reason"] != reason:
        raise SnapshotError(
            f"migration self-check failed for {path}: rewritten payload "
            f"does not match the original"
        )
    return "migrated"


#: snapshot name prefixes ranked for resume preference at equal cycles
_PREFIX_RANK = {"initial": 4, "ckpt": 3, "live": 2, "timeout": 1,
                "failure": 0}


def latest_snapshot(
    directory: Union[str, Path], include_failures: bool = False
) -> Optional[Path]:
    """The newest *resumable* snapshot in a checkpoint directory.

    File names encode their cycle (``ckpt-<cycle>.snap``,
    ``live-<cycle>.snap``, ``timeout-<cycle>.snap``,
    ``failure-<cycle>.snap``; ``initial.snap`` is cycle 0), so no file
    needs to be opened to pick the resume point.

    Resume-from-directory wants the last *good* state: a
    ``failure-*.snap`` pins a machine that is already wedged, so
    resuming it would immediately re-fail.  By default only
    initial/periodic/live/timeout snapshots are considered -- a
    timed-out machine was still making progress and resumes usefully
    with a larger ``max_cycles`` -- and failure snapshots are loadable
    only when named explicitly (or with ``include_failures=True``).
    At equal cycles a periodic snapshot beats a live (out-of-band) one
    beats a timeout one beats a failure one.  Quarantined snapshots
    (renamed ``*.snap.poisoned`` by the supervisor) no longer match
    the glob and are skipped naturally.
    """
    directory = Path(directory)
    best: Optional[tuple[int, int, Path]] = None
    for path in directory.glob("*.snap"):
        stem = path.stem
        if stem == "initial":
            key = (0, _PREFIX_RANK["initial"])
        else:
            prefix, _, cycle = stem.partition("-")
            if prefix not in _PREFIX_RANK or not cycle.isdigit():
                continue
            if prefix == "failure" and not include_failures:
                continue
            key = (int(cycle), _PREFIX_RANK[prefix])
        if best is None or key > best[:2]:
            best = (*key, path)
    return best[2] if best is not None else None


def load_machine(
    source: Union[str, Path],
    expected_cls: Optional[type] = None,
    allow_legacy: bool = False,
    with_extra: bool = False,
) -> Any:
    """Load the machine held by a snapshot file or checkpoint directory.

    The deserialized event heap is checked against the machine's event
    vocabulary so a tampered payload cannot smuggle handler names in.
    ``allow_legacy`` gates v1 files exactly as in
    :func:`read_snapshot`.  With ``with_extra=True`` the return value
    is ``(machine, extra)`` where ``extra`` is the payload's side
    channel (e.g. a shard snapshot's in-flight messages) or ``None``.
    """
    path = Path(source)
    if path.is_dir():
        found = latest_snapshot(path)
        if found is None:
            failures = sorted(p.name for p in path.glob("failure-*.snap"))
            if failures:
                raise SnapshotError(
                    f"no resumable snapshots in directory {path}; it only "
                    f"holds failure snapshots ({', '.join(failures)}), "
                    f"which pin an already-wedged machine -- name one "
                    f"explicitly to load it for forensics"
                )
            raise SnapshotError(f"no snapshots in directory {path}")
        path = found
    data = read_snapshot(path, allow_legacy=allow_legacy)
    machine = data["machine"]
    if expected_cls is not None and not isinstance(machine, expected_cls):
        raise SnapshotError(
            f"snapshot {path} holds a {type(machine).__name__}, "
            f"not a {expected_cls.__name__}"
        )
    kinds = getattr(type(machine), "_EVENT_KINDS", frozenset())
    for _time, _seq, kind, _args, _aux in getattr(machine, "_events", []):
        if kind not in kinds:
            raise SnapshotError(
                f"snapshot {path} schedules unknown event kind {kind!r}"
            )
    # machines pickled by builds that predate out-of-band snapshots
    # lack the request queue; backfill so the event loop can run them
    machine.__dict__.setdefault("_snap_requests", [])
    if with_extra:
        extra = data.get("extra")
        return machine, extra if isinstance(extra, dict) else None
    return machine
