"""Crash-consistent, versioned, checksummed machine snapshots.

A snapshot file carries one serialized :class:`repro.machine.Machine`
mid-run -- event heap, operand registers, retransmission queues,
sequence numbers, fault-plan RNG cursor, unit health and statistics --
wrapped in a self-describing **format v2** envelope:

====== ======= ====================================================
offset size    field
====== ======= ====================================================
0      8       magic ``b"RPROSNAP"``
8      4       format version (big-endian; currently 2)
12     8       metadata length in bytes (big-endian)
20     32      SHA-256 of the metadata section
52     8       payload length in bytes (big-endian)
60     32      SHA-256 of the payload
92     m       metadata: UTF-8 JSON object (format/code version,
               workload id, cycle, reason, run statistics)
92+m   n       payload: pickled ``{"machine", "cycle", "reason"}``
====== ======= ====================================================

The metadata section is plain JSON and is readable (and checksum
verifiable) without deserializing any machine state --
:func:`read_metadata` and ``repro snapshot inspect`` never touch the
payload.  The payload itself is decoded through a **restricted
unpickler**: only an explicit allowlist of state-bearing ``repro``
classes plus a short allowlist of stdlib container types may be
referenced; any other global (``os.system``, ``builtins.eval``, a
dotted attribute chain, a ``repro`` module-level *function* such as
``repro.cli.main``) raises a typed
:class:`~repro.errors.SnapshotError` *before* any object is
constructed.  Snapshots therefore no longer need to be treated as a
trusted format -- hostile or stale bytes fail closed.

The envelope is validated (magic, version, lengths, both checksums)
before any decoding, so a truncated, corrupted or foreign file raises
a typed :class:`~repro.errors.SnapshotError` instead of a pickle
crash.  Writes go to a temporary file in the target directory, are
fsynced, and are published with an atomic ``os.replace`` -- a snapshot
either exists completely or not at all.

Format v1 files (the pre-v2 layout: one 52-byte header over an
unrestricted pickle) still load behind an explicit
``allow_legacy=True`` / ``--allow-v1`` opt-in, and
:func:`migrate_snapshot` (CLI: ``repro snapshot migrate``) rewrites
them to v2 in place with checksum verification on both sides.

**Format v3: delta snapshots.**  When delta mode is on
(``CheckpointConfig.delta_every > 0``) periodic snapshots form
*chains*: a full **base** (``ckpt-*.base.snap``, ordinary v2 payload)
followed by **deltas** (``ckpt-*.delta.snap``, header version 3, same
header layout) that carry only the state *sections* whose pickled
bytes changed since the previous link.  A delta's metadata names its
``parent`` file, the parent's payload SHA-256 as ``parent_checksum``
and its own ``chain_depth``; :func:`verify_chain` walks those links
with envelope/metadata reads only (no payload is ever unpickled) and
raises a typed :class:`~repro.errors.ChainBrokenError` on a missing,
damaged or checksum-mismatched ancestor *before* any object is
constructed.  The delta payload is a pickled plain-data dict
``{"delta": True, "cycle", "reason", "sections": {key: bytes},
"removed": [key...]}``; each section blob decodes through the same
restricted unpickler and is applied to the base machine by
``Machine.apply_snapshot_sections``.  :func:`rebase_snapshot`
collapses a chain tip back into a standalone v2 base.
"""

from __future__ import annotations

import hashlib
import io
import json
import os
import pickle
import struct
import tempfile
from pathlib import Path
from typing import Any, Optional, Union

from ..errors import ChainBrokenError, SnapshotError

MAGIC = b"RPROSNAP"
FORMAT_VERSION = 2
#: the pre-metadata, unrestricted-pickle format still readable behind
#: ``allow_legacy=True``
LEGACY_VERSION = 1
#: delta snapshots: same header layout as v2, but the payload holds
#: only the state sections that changed since the parent link
DELTA_VERSION = 3

#: v2: magic(8s) + version(I) + meta len(Q) + meta sha256(32s)
#:     + payload length(Q) + payload sha256(32s)
_HEADER = struct.Struct(">8sIQ32sQ32s")
#: v1: magic(8s) + version(I) + payload length(Q) + payload sha256(32s)
_HEADER_V1 = struct.Struct(">8sIQ32s")


# ----------------------------------------------------------------------
# restricted unpickling
# ----------------------------------------------------------------------
#: stdlib globals a machine pickle may legitimately reference.  The
#: set is deliberately tiny -- container types and the seeded RNG --
#: and was derived by enumerating ``find_class`` calls over real
#: snapshots of every paper-figure workload.
_STDLIB_ALLOWLIST: dict[str, frozenset[str]] = {
    "builtins": frozenset(
        {"set", "frozenset", "complex", "bytearray", "range", "slice",
         "object"}
    ),
    "collections": frozenset({"deque", "OrderedDict", "Counter"}),
    "random": frozenset({"Random"}),
}

#: ``repro`` globals a machine pickle may legitimately reference: the
#: state-bearing classes of a serialized machine, pinned per defining
#: module.  Derived the same way as the stdlib list -- by enumerating
#: ``find_class`` calls over real snapshots of every paper-figure
#: workload (initial, mid-run, timeout and failure states, with and
#: without fault plans and record mode).  Pinning names, rather than
#: admitting anything importable from ``repro.*``, keeps module-level
#: *functions* out of reach: pickle's ``REDUCE`` opcode calls whatever
#: ``find_class`` returns with arguments taken from the stream, so
#: admitting e.g. ``repro.cli.main`` would hand a checksummed-but-
#: hostile file arbitrary code execution.
_REPRO_ALLOWLIST: dict[str, frozenset[str]] = {
    "repro.checkpoint.manager": frozenset(
        {"CheckpointConfig", "CheckpointManager"}
    ),
    "repro.checkpoint.replay": frozenset({"EventTrace"}),
    "repro.faults.injector": frozenset({"FaultInjector", "FaultStats"}),
    "repro.faults.plan": frozenset(
        {"FaultPlan", "ShardFault", "UnitFault"}
    ),
    "repro.graph.cell": frozenset({"Arc", "Cell", "_NoTokenType"}),
    "repro.graph.graph": frozenset({"DataflowGraph"}),
    "repro.graph.opcodes": frozenset({"Op"}),
    "repro.machine.config": frozenset({"MachineConfig"}),
    "repro.machine.machine": frozenset(
        {"Machine", "_CellState", "_UnitState"}
    ),
    "repro.machine.sharded": frozenset({"ShardMachine"}),
    "repro.machine.packets": frozenset({"PacketCounters"}),
    "repro.machine.stats": frozenset(
        {"CheckpointStats", "ReliabilityStats"}
    ),
}


class _RestrictedUnpickler(pickle.Unpickler):
    """Unpickler that refuses every global outside the allowlists.

    ``find_class`` is the only gate through which a pickle stream can
    reach callables, so rejecting here stops gadget payloads
    (``os.system``, ``builtins.eval``, ``repro.cli.main``, ...) before
    any object is constructed.  Dotted names are rejected outright:
    protocol-4 ``STACK_GLOBAL`` resolves them with a ``getattr``
    chain, which would let ``("repro.checkpoint.snapshot",
    "os.system")`` escape a plain module prefix check.  Whatever an
    allowlisted name resolves to must additionally be a *class*
    defined in its allowlist's package -- a function (or a module
    rebound over an allowlisted name) executes under ``REDUCE``
    instead of merely constructing state, so non-classes are refused
    even if a future allowlist edit names one by mistake.
    """

    def find_class(self, module: str, name: str) -> Any:
        if "." in name:
            raise SnapshotError(
                f"snapshot payload references dotted global "
                f"{module}.{name}; refusing to traverse attributes"
            )
        allowed = _REPRO_ALLOWLIST.get(module, _STDLIB_ALLOWLIST.get(module))
        if allowed is None or name not in allowed:
            raise SnapshotError(
                f"snapshot payload references forbidden global "
                f"{module}.{name}; only allowlisted repro state classes "
                f"and stdlib containers may appear in a snapshot"
            )
        obj = super().find_class(module, name)
        if not isinstance(obj, type):
            raise SnapshotError(
                f"snapshot payload references {module}.{name}, which is "
                f"not a class; refusing a callable that REDUCE would "
                f"invoke"
            )
        if (module in _REPRO_ALLOWLIST
                and getattr(obj, "__module__", "").split(".")[0] != "repro"):
            raise SnapshotError(
                f"snapshot payload references {module}.{name}, which "
                f"is not defined inside the repro package"
            )
        return obj


def _restricted_loads(payload: bytes, where: str) -> Any:
    try:
        return _RestrictedUnpickler(io.BytesIO(payload)).load()
    except SnapshotError:
        raise
    except Exception as exc:   # checksummed yet undecodable: version skew
        raise SnapshotError(f"{where} cannot be deserialized: {exc}") from exc


# ----------------------------------------------------------------------
# atomic writes
# ----------------------------------------------------------------------
def _atomic_write(path: Path, data: bytes) -> None:
    """Write ``data`` to ``path`` with write-then-rename atomicity.

    The temporary sibling gets a unique per-writer name (via
    ``tempfile.mkstemp``), so two processes checkpointing into the same
    directory never clobber each other's in-flight temp file; the loser
    of the final ``os.replace`` race simply has its complete snapshot
    superseded by the winner's complete snapshot.
    """
    fd, tmp = tempfile.mkstemp(
        prefix=path.name + ".", suffix=".tmp", dir=path.parent
    )
    try:
        with os.fdopen(fd, "wb") as fh:
            fh.write(data)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    try:
        dirfd = os.open(path.parent, os.O_RDONLY)
    except OSError:         # platform without directory fds
        return
    try:
        os.fsync(dirfd)
    finally:
        os.close(dirfd)


# ----------------------------------------------------------------------
# encoding
# ----------------------------------------------------------------------
def snapshot_metadata(machine: Any, reason: str = "periodic") -> dict[str, Any]:
    """The self-describing JSON metadata section for one snapshot.

    Everything here is derivable without the payload, deliberately
    free of wall-clock timestamps (snapshots of identical machine
    states are byte-identical), and safe to show for an untrusted
    file -- ``repro snapshot inspect`` prints exactly this.
    """
    from .. import __version__

    stats: dict[str, Any] = {
        "events_pending": len(getattr(machine, "_events", ())),
        "progress": getattr(machine, "_progress", 0),
    }
    sink_progress = getattr(machine, "_sink_progress", None)
    if callable(sink_progress):
        stats["sinks"] = {
            stream: list(pair) for stream, pair in sink_progress().items()
        }
    ckpt = getattr(machine, "ckpt", None)
    if ckpt is not None:
        stats["snapshots_written"] = ckpt.stats.snapshots_written
    meta = {
        "format": FORMAT_VERSION,
        "code_version": __version__,
        "workload": getattr(machine, "workload_id", None),
        "cycle": machine.now,
        "reason": reason,
        "stats": stats,
    }
    shard = getattr(machine, "shard_index", None)
    if shard is not None:
        # one member of a coordinated shard set: resumable only as a
        # complete set through the coordinated manifest
        meta["shard"] = shard
        meta["shards"] = getattr(machine, "n_shards", None)
    return meta


def _pack_envelope(
    meta: dict[str, Any], payload: bytes, version: int = FORMAT_VERSION
) -> bytes:
    meta_bytes = json.dumps(meta, sort_keys=True, default=repr).encode("utf-8")
    header = _HEADER.pack(
        MAGIC,
        version,
        len(meta_bytes),
        hashlib.sha256(meta_bytes).digest(),
        len(payload),
        hashlib.sha256(payload).digest(),
    )
    return header + meta_bytes + payload


def snapshot_bytes(
    machine: Any,
    reason: str = "periodic",
    extra: Optional[dict[str, Any]] = None,
    meta_extra: Optional[dict[str, Any]] = None,
) -> bytes:
    """Serialize ``machine`` into the v2 snapshot envelope.

    ``extra`` rides along in the payload (same restricted-unpickler
    rules apply on load); the coordinated sharded checkpoint stores
    each shard's in-flight channel state there.  ``meta_extra`` merges
    additional keys into the JSON metadata section (the chain writer
    stamps ``kind``/``chain_depth`` there).
    """
    data: dict[str, Any] = {
        "machine": machine, "cycle": machine.now, "reason": reason,
    }
    if extra is not None:
        data["extra"] = extra
    payload = pickle.dumps(data, protocol=pickle.HIGHEST_PROTOCOL)
    meta = snapshot_metadata(machine, reason)
    if meta_extra:
        meta.update(meta_extra)
    return _pack_envelope(meta, payload)


def _snapshot_bytes_v1(machine: Any, reason: str = "periodic") -> bytes:
    """Serialize ``machine`` into the legacy v1 envelope.

    Kept (private) so the migration fixtures and the v1-vs-v2 codec
    benchmark can produce bit-faithful legacy files; nothing in the
    write path uses it.
    """
    payload = pickle.dumps(
        {"machine": machine, "cycle": machine.now, "reason": reason},
        protocol=pickle.HIGHEST_PROTOCOL,
    )
    header = _HEADER_V1.pack(
        MAGIC, LEGACY_VERSION, len(payload), hashlib.sha256(payload).digest()
    )
    return header + payload


def save_snapshot(
    machine: Any,
    path: Union[str, Path],
    reason: str = "periodic",
    extra: Optional[dict[str, Any]] = None,
) -> Path:
    """Atomically write one snapshot of ``machine`` and return its path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    _atomic_write(path, snapshot_bytes(machine, reason, extra=extra))
    return path


# ----------------------------------------------------------------------
# decoding
# ----------------------------------------------------------------------
def _read_raw(path: Path) -> bytes:
    try:
        return path.read_bytes()
    except FileNotFoundError:
        raise SnapshotError(f"snapshot {path} does not exist") from None
    except OSError as exc:
        raise SnapshotError(f"cannot read snapshot {path}: {exc}") from exc


def _split_envelope(path: Path, raw: bytes) -> tuple[int, bytes, bytes]:
    """Validate the envelope and return ``(version, meta_bytes,
    payload)``; ``meta_bytes`` is empty for v1 files.

    Every check here runs before any JSON or pickle decoding: magic,
    version, section lengths (no truncation, no trailing garbage) and
    both SHA-256 checksums.
    """
    if len(raw) < _HEADER_V1.size:
        raise SnapshotError(
            f"snapshot {path} is truncated: {len(raw)} bytes is shorter "
            f"than the {_HEADER_V1.size}-byte header"
        )
    magic, version = struct.unpack_from(">8sI", raw)
    if magic != MAGIC:
        raise SnapshotError(f"{path} is not a repro snapshot (bad magic)")
    if version == LEGACY_VERSION:
        _, _, length, digest = _HEADER_V1.unpack_from(raw)
        payload = raw[_HEADER_V1.size:]
        if len(payload) != length:
            raise SnapshotError(
                f"snapshot {path} is truncated: header promises {length} "
                f"payload bytes, file holds {len(payload)}"
            )
        if hashlib.sha256(payload).digest() != digest:
            raise SnapshotError(
                f"snapshot {path} failed its checksum: the file is corrupted"
            )
        return version, b"", payload
    if version not in (FORMAT_VERSION, DELTA_VERSION):
        raise SnapshotError(
            f"snapshot {path} has format version {version}; this build "
            f"reads versions {LEGACY_VERSION}, {FORMAT_VERSION} and "
            f"{DELTA_VERSION}"
        )
    if len(raw) < _HEADER.size:
        raise SnapshotError(
            f"snapshot {path} is truncated: {len(raw)} bytes is shorter "
            f"than the {_HEADER.size}-byte v2 header"
        )
    (_, _, meta_len, meta_digest, payload_len, payload_digest) = (
        _HEADER.unpack_from(raw)
    )
    expected = _HEADER.size + meta_len + payload_len
    if len(raw) != expected:
        raise SnapshotError(
            f"snapshot {path} is damaged: header promises {expected} "
            f"bytes total, file holds {len(raw)}"
        )
    meta_bytes = raw[_HEADER.size:_HEADER.size + meta_len]
    payload = raw[_HEADER.size + meta_len:]
    if hashlib.sha256(meta_bytes).digest() != meta_digest:
        raise SnapshotError(
            f"snapshot {path} failed its metadata checksum: the file is "
            f"corrupted"
        )
    if hashlib.sha256(payload).digest() != payload_digest:
        raise SnapshotError(
            f"snapshot {path} failed its payload checksum: the file is "
            f"corrupted"
        )
    return version, meta_bytes, payload


def _decode_meta(path: Path, meta_bytes: bytes) -> dict[str, Any]:
    try:
        meta = json.loads(meta_bytes.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise SnapshotError(
            f"snapshot {path} has an unreadable metadata section: {exc}"
        ) from exc
    if not isinstance(meta, dict):
        raise SnapshotError(
            f"snapshot {path} metadata is not a JSON object"
        )
    return meta


def read_metadata(path: Union[str, Path]) -> dict[str, Any]:
    """Read a snapshot's self-describing metadata without deserializing
    any machine state.

    For v2 files this returns the embedded JSON metadata section (with
    ``"checksum": "ok"`` added -- both section checksums are verified
    on the way).  For v1 files, which carry no metadata, it returns
    what the envelope alone reveals plus a migration hint.  The
    payload is never unpickled, so this is safe on untrusted files.
    """
    path = Path(path)
    raw = _read_raw(path)
    version, meta_bytes, payload = _split_envelope(path, raw)
    if version == LEGACY_VERSION:
        return {
            "format": LEGACY_VERSION,
            "payload_bytes": len(payload),
            "checksum": "ok",
            "hint": (
                "legacy v1 snapshot (no metadata section, unrestricted "
                "pickle); run `repro snapshot migrate` to rewrite it as "
                "v2, or load it with --allow-v1 / allow_legacy=True"
            ),
        }
    meta = _decode_meta(path, meta_bytes)
    meta["payload_bytes"] = len(payload)
    meta["checksum"] = "ok"
    return meta


def read_snapshot(
    path: Union[str, Path], allow_legacy: bool = False
) -> dict[str, Any]:
    """Validate and deserialize one snapshot file into its payload dict.

    Raises :class:`SnapshotError` for every damage mode: missing file,
    bad magic, unsupported format version, truncation, trailing
    garbage, checksum mismatch on either section, undecodable
    metadata, or a payload that references any global outside the
    restricted-unpickler allowlist.  Legacy v1 files are refused
    unless ``allow_legacy=True`` (they decode through the same
    restricted unpickler).  The returned dict carries the payload
    fields (``machine``, ``cycle``, ``reason``) plus the metadata
    section under ``"meta"``.
    """
    path = Path(path)
    raw = _read_raw(path)
    version, meta_bytes, payload = _split_envelope(path, raw)
    if version == DELTA_VERSION:
        raise SnapshotError(
            f"snapshot {path} is a v3 delta: it only carries state that "
            f"changed since its parent; load it through load_machine / "
            f"`repro resume`, which reconstructs it through its chain"
        )
    if version == LEGACY_VERSION:
        if not allow_legacy:
            raise SnapshotError(
                f"snapshot {path} uses legacy format v1; migrate it with "
                f"`repro snapshot migrate {path}`, or opt in explicitly "
                f"with --allow-v1 / allow_legacy=True"
            )
        meta: dict[str, Any] = {"format": LEGACY_VERSION}
    else:
        meta = _decode_meta(path, meta_bytes)
    data = _restricted_loads(payload, f"snapshot {path}")
    if not isinstance(data, dict) or "machine" not in data:
        raise SnapshotError(f"snapshot {path} has an unexpected payload")
    data["meta"] = meta
    return data


def snapshot_cycle(
    path: Union[str, Path], allow_legacy: bool = False
) -> int:
    """The cycle a snapshot was taken at.

    Read from the v2 metadata section when available (no payload
    deserialization); v1 files fall back to decoding the payload and
    honour the same ``allow_legacy`` gate as :func:`read_snapshot`.
    """
    meta = read_metadata(path)
    if "cycle" in meta:
        return int(meta["cycle"])
    return int(read_snapshot(path, allow_legacy=allow_legacy)["cycle"])


def migrate_snapshot(path: Union[str, Path]) -> str:
    """Rewrite a legacy v1 snapshot to format v2 in place.

    The v1 payload checksum is verified before decoding (through the
    restricted unpickler), the rewritten file is re-read and
    re-verified end to end before the function returns, and the write
    itself is atomic -- a crash mid-migration leaves the original
    file untouched.  Returns ``"migrated"`` or ``"already-v2"``.
    """
    path = Path(path)
    raw = _read_raw(path)
    version, _, payload = _split_envelope(path, raw)
    if version == DELTA_VERSION:
        # a delta is not a rewrappable machine payload; collapsing its
        # chain is a different operation with its own command
        return "delta-skipped (collapse with `repro snapshot rebase`)"
    if version == FORMAT_VERSION:
        return "already-v2"
    data = _restricted_loads(payload, f"snapshot {path}")
    if not isinstance(data, dict) or "machine" not in data:
        raise SnapshotError(f"snapshot {path} has an unexpected payload")
    reason = str(data.get("reason", "migrated"))
    meta = snapshot_metadata(data["machine"], reason)
    # keep the original payload byte-for-byte: migration must not
    # re-serialize state it merely re-wraps
    _atomic_write(path, _pack_envelope(meta, payload))
    check = read_snapshot(path)
    if check["cycle"] != data.get("cycle") or check["reason"] != reason:
        raise SnapshotError(
            f"migration self-check failed for {path}: rewritten payload "
            f"does not match the original"
        )
    return "migrated"


# ----------------------------------------------------------------------
# delta chains (format v3)
# ----------------------------------------------------------------------
def _section_blobs(machine: Any) -> dict[str, bytes]:
    """Pickle each addressable state section of ``machine`` separately.

    The blobs serve double duty: their SHA-256 digests are the dirty
    tracking (a section is dirty iff its bytes changed since the chain
    tip), and the dirty blobs themselves *are* the delta payload -- so
    digest and stored bytes can never disagree.
    """
    sections = machine.snapshot_sections()
    return {
        key: pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        for key, value in sections.items()
    }


def write_chain_snapshot(
    machine: Any,
    path: Union[str, Path],
    reason: str = "periodic",
    *,
    kind: str,
    extra: Optional[dict[str, Any]] = None,
) -> Path:
    """Atomically write one link of a delta chain and advance the
    machine's in-memory chain tip.

    ``kind="base"`` writes an ordinary full v2 snapshot (payload
    identical to :func:`save_snapshot`) that starts a new chain;
    ``kind="delta"`` writes a v3 file carrying only the sections whose
    pickled bytes differ from the tip recorded at the previous link.
    The tip (``machine._snap_chain``) is deliberately *not* serialized
    into snapshots (see ``Machine.__getstate__``): any resumed or
    rolled-back machine starts a fresh chain with a full base, so a
    delta can never chain onto state the writer did not itself emit.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    blobs = _section_blobs(machine)
    digests = {
        key: hashlib.sha256(blob).hexdigest() for key, blob in blobs.items()
    }
    if kind == "base":
        data = snapshot_bytes(
            machine, reason, extra=extra,
            meta_extra={"kind": "base", "chain_depth": 0},
        )
        meta_len = _HEADER.unpack_from(data)[2]
        payload = data[_HEADER.size + meta_len:]
        depth = 0
    elif kind == "delta":
        tip = getattr(machine, "_snap_chain", None)
        if tip is None:
            raise SnapshotError(
                "cannot write a delta snapshot: this machine has no "
                "chain tip (write a base first; resumed and rolled-back "
                "machines always restart their chain)"
            )
        changed = {
            key: blob
            for key, blob in blobs.items()
            if digests[key] != tip["digests"].get(key)
        }
        removed = sorted(k for k in tip["digests"] if k not in digests)
        body: dict[str, Any] = {
            "delta": True,
            "cycle": machine.now,
            "reason": reason,
            "sections": changed,
            "removed": removed,
        }
        if extra is not None:
            body["extra"] = extra
        payload = pickle.dumps(body, protocol=pickle.HIGHEST_PROTOCOL)
        depth = int(tip["depth"]) + 1
        meta = snapshot_metadata(machine, reason)
        meta.update(
            format=DELTA_VERSION,
            kind="delta",
            parent=tip["name"],
            parent_checksum=tip["checksum"],
            chain_depth=depth,
        )
        data = _pack_envelope(meta, payload, version=DELTA_VERSION)
    else:
        raise SnapshotError(f"unknown chain snapshot kind {kind!r}")
    _atomic_write(path, data)
    machine._snap_chain = {
        "digests": digests,
        "name": path.name,
        "checksum": hashlib.sha256(payload).hexdigest(),
        "depth": depth,
    }
    return path


#: hard bound on chain walks; real chains are forced to rebase at
#: ``max_chain_depth`` long before this
_CHAIN_WALK_LIMIT = 10_000


def verify_chain(path: Union[str, Path]) -> list[Path]:
    """Verify a snapshot's parent chain and return it base-first.

    Walks ``parent``/``parent_checksum`` links from ``path`` down to a
    full base using envelope and metadata reads only -- **no payload
    is ever deserialized** -- re-verifying each ancestor's envelope
    checksums and matching its payload SHA-256 against the checksum
    its child recorded.  Raises :class:`ChainBrokenError`
    (``status="orphaned"`` for a missing parent, ``"damaged"`` for
    everything else) on any break, or a plain :class:`SnapshotError`
    if ``path`` itself is unreadable.  For a standalone snapshot the
    chain is just ``[path]``.
    """
    path = Path(path)
    raw = _read_raw(path)
    version, meta_bytes, _payload = _split_envelope(path, raw)
    meta = _decode_meta(path, meta_bytes) if version != LEGACY_VERSION else {}
    chain = [path]
    seen = {path.name}
    while meta.get("kind") == "delta":
        child = chain[0]
        parent_name = meta.get("parent")
        want = meta.get("parent_checksum")
        depth = meta.get("chain_depth")
        if (not isinstance(parent_name, str) or not parent_name
                or not isinstance(want, str)):
            raise ChainBrokenError(
                f"delta snapshot {child} names no parent/parent_checksum; "
                f"its chain cannot be verified"
            )
        if os.sep in parent_name or parent_name in (".", ".."):
            raise ChainBrokenError(
                f"delta snapshot {child} names a parent outside its own "
                f"directory ({parent_name!r}); refusing to follow it"
            )
        if parent_name in seen or len(chain) > _CHAIN_WALK_LIMIT:
            raise ChainBrokenError(
                f"delta snapshot {path} has a cyclic or unbounded parent "
                f"chain at {parent_name!r}"
            )
        parent = child.parent / parent_name
        if not parent.exists():
            quarantined = parent.with_name(parent.name + ".poisoned")
            hint = (
                " (a quarantined copy exists)" if quarantined.exists() else ""
            )
            raise ChainBrokenError(
                f"delta snapshot {child} is orphaned: parent "
                f"{parent_name} is missing{hint}; the chain cannot be "
                f"resumed",
                status="orphaned",
            )
        praw = _read_raw(parent)
        try:
            pversion, pmeta_bytes, ppayload = _split_envelope(parent, praw)
        except SnapshotError as exc:
            raise ChainBrokenError(
                f"delta snapshot {child} has a damaged ancestor: {exc}"
            ) from exc
        if hashlib.sha256(ppayload).hexdigest() != want:
            raise ChainBrokenError(
                f"delta snapshot {child} records parent_checksum "
                f"{want[:12]}... but {parent_name}'s payload hashes "
                f"differently: the parent was rewritten or the link was "
                f"tampered with"
            )
        pmeta = (
            _decode_meta(parent, pmeta_bytes)
            if pversion != LEGACY_VERSION else {}
        )
        pdepth = pmeta.get("chain_depth", 0)
        if isinstance(depth, int) and pdepth != depth - 1:
            raise ChainBrokenError(
                f"delta snapshot {child} claims chain depth {depth} but "
                f"parent {parent_name} sits at depth {pdepth}; the chain "
                f"metadata is inconsistent"
            )
        chain.insert(0, parent)
        seen.add(parent_name)
        meta = pmeta
    return chain


def chain_status(path: Union[str, Path]) -> dict[str, Any]:
    """Classify a snapshot's chain without touching any payload:
    ``{"status": "intact"|"orphaned"|"damaged", "chain": [names...] or
    None, "error": str or None}``."""
    try:
        chain = verify_chain(path)
    except ChainBrokenError as exc:
        return {"status": exc.status, "chain": None, "error": str(exc)}
    except SnapshotError as exc:
        return {"status": "damaged", "chain": None, "error": str(exc)}
    return {
        "status": "intact",
        "chain": [p.name for p in chain],
        "error": None,
    }


def chain_descendants(
    directory: Union[str, Path], name: str
) -> list[str]:
    """File names of every on-disk delta whose parent chain passes
    through ``name`` -- the unit the supervisor quarantines together
    with a poisoned snapshot (metadata reads only)."""
    directory = Path(directory)
    parent_of: dict[str, str] = {}
    for path in directory.glob("*.snap"):
        try:
            meta = read_metadata(path)
        except SnapshotError:
            continue
        parent = meta.get("parent")
        if meta.get("kind") == "delta" and isinstance(parent, str):
            parent_of[path.name] = parent
    doomed = {name}
    out: list[str] = []
    changed = True
    while changed:
        changed = False
        for child, parent in parent_of.items():
            if parent in doomed and child not in doomed:
                doomed.add(child)
                out.append(child)
                changed = True
    return sorted(out)


def _read_delta(path: Path) -> tuple[dict[str, Any], dict[str, Any]]:
    """Decode one verified v3 delta file into ``(meta, body)``.

    The outer payload is plain data (dict/str/bytes) but still decodes
    through the restricted unpickler; the per-section blobs inside are
    decoded separately by the chain loader.
    """
    raw = _read_raw(path)
    version, meta_bytes, payload = _split_envelope(path, raw)
    if version != DELTA_VERSION:
        raise SnapshotError(f"snapshot {path} is not a v3 delta")
    meta = _decode_meta(path, meta_bytes)
    body = _restricted_loads(payload, f"delta snapshot {path}")
    if (
        not isinstance(body, dict)
        or body.get("delta") is not True
        or not isinstance(body.get("sections"), dict)
        or not all(
            isinstance(k, str) and isinstance(v, bytes)
            for k, v in body["sections"].items()
        )
        or not isinstance(body.get("removed", []), list)
    ):
        raise SnapshotError(
            f"delta snapshot {path} has an unexpected payload shape"
        )
    return meta, body


def _load_chain(path: Path, allow_legacy: bool = False) -> tuple[Any, Any]:
    """Reconstruct ``(machine, extra)`` from a delta chain tip.

    The chain is fully verified (:func:`verify_chain`) before any
    payload is unpickled; the base machine then has each delta's dirty
    sections applied in order.  ``extra`` (a shard snapshot's channel
    state) comes from the newest link that carries one.
    """
    chain = verify_chain(path)
    data = read_snapshot(chain[0], allow_legacy=allow_legacy)
    machine = data["machine"]
    extra = data.get("extra")
    for link in chain[1:]:
        _meta, body = _read_delta(link)
        sections = {
            key: _restricted_loads(
                blob, f"delta snapshot {link} section {key!r}"
            )
            for key, blob in body["sections"].items()
        }
        apply = getattr(machine, "apply_snapshot_sections", None)
        if apply is None:
            raise SnapshotError(
                f"snapshot {chain[0]} holds a "
                f"{type(machine).__name__}, which does not support "
                f"delta sections"
            )
        apply(sections, body.get("removed", ()))
        if "extra" in body:
            extra = body["extra"]
    return machine, extra


def rebase_snapshot(path: Union[str, Path]) -> Path:
    """Collapse a delta chain tip into a standalone full base.

    The chain is verified and replayed into a machine, which is then
    rewritten as an ordinary v2 base snapshot (``*.base.snap``); the
    delta file is removed afterwards, so a crash in between leaves
    both resumable.  Refuses (typed) if another on-disk delta lists
    ``path`` as its parent -- rebasing a mid-chain link would orphan
    its descendants.
    """
    path = Path(path)
    meta = read_metadata(path)
    if meta.get("kind") != "delta":
        raise SnapshotError(
            f"{path} is not a delta snapshot (kind="
            f"{meta.get('kind', 'full')!r}); only deltas can be rebased"
        )
    for sibling in sorted(path.parent.glob("*.snap")):
        if sibling == path:
            continue
        try:
            smeta = read_metadata(sibling)
        except SnapshotError:
            continue
        if smeta.get("kind") == "delta" and smeta.get("parent") == path.name:
            raise SnapshotError(
                f"cannot rebase {path.name}: {sibling.name} lists it as "
                f"parent and would be orphaned; rebase the chain tip "
                f"instead"
            )
    machine, extra = _load_chain(path)
    if path.name.endswith(".delta.snap"):
        new_path = path.with_name(
            path.name[: -len(".delta.snap")] + ".base.snap"
        )
    else:
        new_path = path       # coordinated shard member: same name
    _atomic_write(
        new_path,
        snapshot_bytes(
            machine, "rebase", extra=extra,
            meta_extra={"kind": "base", "chain_depth": 0},
        ),
    )
    if new_path != path:
        path.unlink(missing_ok=True)
    return new_path


#: snapshot name prefixes ranked for resume preference at equal cycles
_PREFIX_RANK = {"initial": 4, "ckpt": 3, "live": 2, "timeout": 1,
                "failure": 0}


def latest_snapshot(
    directory: Union[str, Path], include_failures: bool = False
) -> Optional[Path]:
    """The newest *resumable* snapshot in a checkpoint directory.

    File names encode their cycle (``ckpt-<cycle>.snap``,
    ``live-<cycle>.snap``, ``timeout-<cycle>.snap``,
    ``failure-<cycle>.snap``; ``initial.snap`` is cycle 0), so no file
    needs to be opened to pick the resume point.

    Resume-from-directory wants the last *good* state: a
    ``failure-*.snap`` pins a machine that is already wedged, so
    resuming it would immediately re-fail.  By default only
    initial/periodic/live/timeout snapshots are considered -- a
    timed-out machine was still making progress and resumes usefully
    with a larger ``max_cycles`` -- and failure snapshots are loadable
    only when named explicitly (or with ``include_failures=True``).
    At equal cycles a periodic snapshot beats a live (out-of-band) one
    beats a timeout one beats a failure one.  Quarantined snapshots
    (renamed ``*.snap.poisoned`` by the supervisor) no longer match
    the glob and are skipped naturally.

    Delta-mode periodic snapshots (``ckpt-<cycle>.base.snap`` /
    ``ckpt-<cycle>.delta.snap``) rank exactly like classic ones, but a
    delta is only a resume point if its whole parent chain verifies
    (:func:`verify_chain`): a chain-broken delta is skipped and the
    next-newest intact candidate wins -- stepping back to the last
    good base instead of handing resume a poisoned chain.
    """
    directory = Path(directory)
    candidates: list[tuple[int, int, str, Path]] = []
    for path in directory.glob("*.snap"):
        stem = path.stem
        if stem == "initial":
            key = (0, _PREFIX_RANK["initial"])
        else:
            prefix, _, rest = stem.partition("-")
            cycle, _, kind = rest.partition(".")
            if prefix not in _PREFIX_RANK or not cycle.isdigit():
                continue
            if kind not in ("", "base", "delta"):
                continue      # e.g. one member of a coordinated set
            if prefix == "failure" and not include_failures:
                continue
            key = (int(cycle), _PREFIX_RANK[prefix])
        candidates.append((*key, path.name, path))
    for *_key, _name, path in sorted(candidates, reverse=True):
        if path.name.endswith(".delta.snap"):
            try:
                verify_chain(path)
            except SnapshotError:
                continue      # broken chain: not a resume point
        return path
    return None


def load_machine(
    source: Union[str, Path],
    expected_cls: Optional[type] = None,
    allow_legacy: bool = False,
    with_extra: bool = False,
) -> Any:
    """Load the machine held by a snapshot file or checkpoint directory.

    The deserialized event heap is checked against the machine's event
    vocabulary so a tampered payload cannot smuggle handler names in.
    ``allow_legacy`` gates v1 files exactly as in
    :func:`read_snapshot`.  A v3 delta file is reconstructed through
    its verified parent chain (:func:`verify_chain` runs first, so a
    broken chain raises :class:`ChainBrokenError` before any payload
    is deserialized).  With ``with_extra=True`` the return value is
    ``(machine, extra)`` where ``extra`` is the payload's side channel
    (e.g. a shard snapshot's in-flight messages) or ``None``.
    """
    path = Path(source)
    if path.is_dir():
        found = latest_snapshot(path)
        if found is None:
            failures = sorted(p.name for p in path.glob("failure-*.snap"))
            if failures:
                raise SnapshotError(
                    f"no resumable snapshots in directory {path}; it only "
                    f"holds failure snapshots ({', '.join(failures)}), "
                    f"which pin an already-wedged machine -- name one "
                    f"explicitly to load it for forensics"
                )
            raise SnapshotError(f"no snapshots in directory {path}")
        path = found
    raw = _read_raw(path)
    if (
        len(raw) >= 12
        and raw[:8] == MAGIC
        and struct.unpack_from(">8sI", raw)[1] == DELTA_VERSION
    ):
        machine, chain_extra = _load_chain(path, allow_legacy=allow_legacy)
        data = {"machine": machine}
        if chain_extra is not None:
            data["extra"] = chain_extra
    else:
        data = read_snapshot(path, allow_legacy=allow_legacy)
        machine = data["machine"]
    if expected_cls is not None and not isinstance(machine, expected_cls):
        raise SnapshotError(
            f"snapshot {path} holds a {type(machine).__name__}, "
            f"not a {expected_cls.__name__}"
        )
    kinds = getattr(type(machine), "_EVENT_KINDS", frozenset())
    for _time, _seq, kind, _args, _aux in getattr(machine, "_events", []):
        if kind not in kinds:
            raise SnapshotError(
                f"snapshot {path} schedules unknown event kind {kind!r}"
            )
    # machines pickled by builds that predate out-of-band snapshots
    # lack the request queue; backfill so the event loop can run them
    machine.__dict__.setdefault("_snap_requests", [])
    # the chain tip is never serialized: every loaded machine starts a
    # fresh chain, so its first delta-mode snapshot is a full base
    machine.__dict__.setdefault("_snap_chain", None)
    if with_extra:
        extra = data.get("extra")
        return machine, extra if isinstance(extra, dict) else None
    return machine
