"""Crash-consistent checkpointing, resume and deterministic replay.

The three layers (see DESIGN.md section 8):

* :mod:`repro.checkpoint.snapshot` -- the versioned, checksummed,
  atomically-written on-disk snapshot format;
* :mod:`repro.checkpoint.manager` -- periodic snapshot scheduling,
  retention, failure diagnosis bundles and the record manifest;
* :mod:`repro.checkpoint.replay` -- event-trace digests, bit-exact
  re-execution of recorded runs, and binary search over the digest
  ledger for the first divergent checkpoint window
  (:func:`bisect_divergence`).

Quick use::

    from repro.checkpoint import CheckpointConfig
    from repro.machine import Machine, run_machine

    cfg = CheckpointConfig("ckpts/", interval=10_000, record=True)
    run_machine(graph, inputs, checkpoint=cfg)       # dies mid-run...
    m = Machine.resume("ckpts/")                     # ...pick it back up
    m.run()                                          # bit-identical finish
"""

from ..errors import ManifestError, SnapshotError
from .manager import CheckpointConfig, CheckpointManager
from .replay import (
    DivergenceReport,
    EventTrace,
    ReplayReport,
    bisect_divergence,
    outputs_digest,
    read_manifest,
    replay_bundle,
)
from .snapshot import (
    FORMAT_VERSION,
    latest_snapshot,
    load_machine,
    read_snapshot,
    save_snapshot,
    snapshot_cycle,
)

__all__ = [
    "CheckpointConfig",
    "CheckpointManager",
    "DivergenceReport",
    "EventTrace",
    "FORMAT_VERSION",
    "ManifestError",
    "ReplayReport",
    "SnapshotError",
    "bisect_divergence",
    "latest_snapshot",
    "load_machine",
    "outputs_digest",
    "read_manifest",
    "read_snapshot",
    "replay_bundle",
    "save_snapshot",
    "snapshot_cycle",
]
