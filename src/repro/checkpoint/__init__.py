"""Crash-consistent checkpointing, resume, replay and supervision.

The four layers (see DESIGN.md section 8):

* :mod:`repro.checkpoint.snapshot` -- the versioned, checksummed,
  atomically-written on-disk snapshot format (v2: self-describing
  JSON metadata over a restricted-unpickler payload; v3: incremental
  deltas chained on a v2 base, verified link by link before any
  payload is touched; legacy v1 reads behind ``allow_legacy=True``
  and migrates in place);
* :mod:`repro.checkpoint.manager` -- periodic snapshot scheduling,
  retention, out-of-band live snapshots, failure diagnosis bundles and
  the record manifest;
* :mod:`repro.checkpoint.replay` -- event-trace digests, bit-exact
  re-execution of recorded runs, and binary search over the digest
  ledger for the first divergent checkpoint window
  (:func:`bisect_divergence`);
* :mod:`repro.checkpoint.supervisor` -- an always-on crash-recovery
  loop (resume on crash with exponential backoff + jitter, restart
  budget, poisoned-snapshot quarantine and step-back).

Quick use::

    from repro.checkpoint import CheckpointConfig
    from repro.machine import Machine, run_machine

    cfg = CheckpointConfig("ckpts/", interval=10_000, record=True)
    run_machine(graph, inputs, checkpoint=cfg)       # dies mid-run...
    m = Machine.resume("ckpts/")                     # ...pick it back up
    m.run()                                          # bit-identical finish
"""

from ..errors import (
    ChainBrokenError,
    ManifestError,
    SnapshotError,
    SupervisorError,
)
from .coordinator import (
    CoordinatedCheckpointManager,
    is_sharded_dir,
    latest_coordinated,
    quarantine_coordinated,
    read_shard_manifest,
    shard_snapshot_name,
)
from .fsck import fsck_directory
from .manager import CheckpointConfig, CheckpointManager
from .replay import (
    DivergenceReport,
    EventTrace,
    ReplayReport,
    bisect_divergence,
    outputs_digest,
    read_manifest,
    replay_bundle,
)
from .snapshot import (
    DELTA_VERSION,
    FORMAT_VERSION,
    LEGACY_VERSION,
    chain_descendants,
    chain_status,
    latest_snapshot,
    load_machine,
    migrate_snapshot,
    read_metadata,
    read_snapshot,
    rebase_snapshot,
    save_snapshot,
    snapshot_cycle,
    verify_chain,
    write_chain_snapshot,
)
from .supervisor import (
    EXIT_SNAPSHOT_UNLOADABLE,
    AttemptRecord,
    BackoffPolicy,
    Supervisor,
    SupervisorConfig,
    SupervisorReport,
)

__all__ = [
    "AttemptRecord",
    "BackoffPolicy",
    "ChainBrokenError",
    "CheckpointConfig",
    "CheckpointManager",
    "CoordinatedCheckpointManager",
    "DELTA_VERSION",
    "DivergenceReport",
    "EXIT_SNAPSHOT_UNLOADABLE",
    "EventTrace",
    "FORMAT_VERSION",
    "LEGACY_VERSION",
    "ManifestError",
    "ReplayReport",
    "SnapshotError",
    "Supervisor",
    "SupervisorConfig",
    "SupervisorError",
    "SupervisorReport",
    "bisect_divergence",
    "chain_descendants",
    "chain_status",
    "fsck_directory",
    "is_sharded_dir",
    "latest_coordinated",
    "latest_snapshot",
    "load_machine",
    "migrate_snapshot",
    "outputs_digest",
    "quarantine_coordinated",
    "read_manifest",
    "read_metadata",
    "read_shard_manifest",
    "read_snapshot",
    "rebase_snapshot",
    "replay_bundle",
    "save_snapshot",
    "shard_snapshot_name",
    "snapshot_cycle",
    "verify_chain",
    "write_chain_snapshot",
]
