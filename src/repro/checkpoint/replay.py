"""Deterministic record/replay of machine runs.

Because every stochastic decision in a run is drawn from the seeded
fault-plan RNG and every event is plain data, a run is a pure function
of its initial state.  Record mode (``CheckpointConfig(record=True)``)
exploits that: it snapshots the machine *before* the first event
(``initial.snap``), keeps a chained digest of every executed event, and
writes a ``manifest.json`` describing how the run ended.  Replaying the
bundle re-executes the run from the initial snapshot and checks that
the event sequence, the outputs and the failure (if any) come out
identical -- the forensics loop for any fault-induced failure.

Divergence bisection
--------------------

Because the chained event-trace digest after event *n* commits to the
entire ordered prefix, "the replayed digest at checkpoint *k* equals
the recorded one" is a *monotone* predicate: once two executions
diverge, their digests never re-converge.  Record mode therefore
persists a **digest ledger** in the manifest -- one ``{snapshot,
cycle, trace_sha256, trace_events}`` entry per snapshot ever taken
(entries outlive retention pruning).  :func:`bisect_divergence`
binary-searches that ledger: each probe resumes from the newest
surviving snapshot at or below the last known-good entry, re-executes
to the probed entry's cycle (pausing exactly at the ``checkpoint_tick``
heap point where the recorded digest was captured), and compares
digests.  The search converges on one adjacent ledger pair -- the
first divergent checkpoint window -- and then re-runs both sides of
that window with full event capture to name the first differing event
and its suspect cell/arc.
"""

from __future__ import annotations

import hashlib
import json
from collections import deque
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Any, Optional, Union

from ..errors import DeadlockError, SimulationTimeout, SnapshotError

#: schema version of manifest.json
MANIFEST_SCHEMA = 1
MANIFEST_NAME = "manifest.json"


class EventTrace:
    """Chained SHA-256 digest of every non-aux event a machine executes.

    The digest after event *n* commits to the entire ordered prefix, so
    two runs match if and only if they executed the same events at the
    same cycles with the same arguments.  A bounded tail of recent
    events is kept for human diffing when a replay diverges.  The state
    is plain bytes, so it snapshots and resumes with the machine.
    """

    __slots__ = ("count", "digest", "tail")

    def __init__(self) -> None:
        self.count = 0
        self.digest = b"\x00" * 32
        self.tail: deque = deque(maxlen=32)

    def record(self, time: int, kind: str, args: tuple) -> None:
        item = f"{time}:{kind}:{args!r}"
        self.digest = hashlib.sha256(
            self.digest + item.encode("utf-8", "backslashreplace")
        ).digest()
        self.count += 1
        self.tail.append(item)

    def hexdigest(self) -> str:
        return self.digest.hex()

    def __getstate__(self):
        return (self.count, self.digest, self.tail)

    def __setstate__(self, state) -> None:
        self.count, self.digest, self.tail = state


def outputs_digest(outputs: dict[str, list]) -> str:
    """Canonical digest of a run's output streams.

    JSON float formatting uses ``repr`` (shortest round-trip), so equal
    digests mean bit-identical IEEE-754 outputs.
    """
    text = json.dumps(outputs, sort_keys=True, default=repr)
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def _outcome(machine, error: Optional[Exception]) -> dict[str, Any]:
    """The comparable facts of how a run ended."""
    out: dict[str, Any] = {
        "status": "failed" if error is not None else "completed",
        "final_cycle": machine.now if error is not None else machine.stats().cycles,
        "outputs_sha256": outputs_digest(machine.outputs()),
    }
    if machine.trace is not None:
        out["trace_sha256"] = machine.trace.hexdigest()
        out["trace_events"] = machine.trace.count
    if error is not None:
        out["error"] = {
            "type": type(error).__name__,
            "cycle": getattr(error, "cycle", None),
            "message": str(error),
        }
    return out


@dataclass
class ReplayReport:
    """Outcome of re-executing a recorded run."""

    bundle: str
    expected: dict[str, Any] = field(default_factory=dict)
    actual: dict[str, Any] = field(default_factory=dict)
    mismatches: list[str] = field(default_factory=list)
    #: filled by ``replay_bundle(..., bisect=True)`` on a diverged replay
    divergence: Optional["DivergenceReport"] = None

    @property
    def reproduced(self) -> bool:
        return not self.mismatches

    def summary(self) -> str:
        if self.reproduced:
            what = self.expected.get("status", "run")
            return (
                f"replay of {self.bundle}: reproduced the recorded "
                f"{what} run exactly ({self.actual.get('trace_events', '?')} "
                f"events, outputs {self.actual.get('outputs_sha256', '')[:12]}...)"
            )
        lines = [f"replay of {self.bundle}: DIVERGED from the record"]
        for m in self.mismatches:
            lines.append(f"  {m}")
        if self.divergence is not None:
            lines.append(self.divergence.summary())
        return "\n".join(lines)


def _compare(expected: dict[str, Any], actual: dict[str, Any]) -> list[str]:
    mismatches = []
    for key in ("status", "final_cycle", "outputs_sha256", "trace_sha256",
                "trace_events"):
        if key in expected and expected.get(key) != actual.get(key):
            mismatches.append(
                f"{key}: recorded {expected.get(key)!r}, "
                f"replayed {actual.get(key)!r}"
            )
    exp_err, act_err = expected.get("error"), actual.get("error")
    if exp_err is not None or act_err is not None:
        for key in ("type", "cycle"):
            e = exp_err.get(key) if exp_err else None
            a = act_err.get(key) if act_err else None
            if e != a:
                mismatches.append(
                    f"error {key}: recorded {e!r}, replayed {a!r}"
                )
    return mismatches


def read_manifest(directory: Union[str, Path]) -> dict[str, Any]:
    path = Path(directory) / MANIFEST_NAME
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except FileNotFoundError:
        raise SnapshotError(
            f"{path} does not exist: not a recorded run bundle "
            f"(record with CheckpointConfig(record=True) or "
            f"`repro checkpoint --record`)"
        ) from None
    except (OSError, json.JSONDecodeError) as exc:
        raise SnapshotError(f"cannot read manifest {path}: {exc}") from exc
    if not isinstance(data, dict) or data.get("schema") != MANIFEST_SCHEMA:
        raise SnapshotError(
            f"manifest {path} has unsupported schema "
            f"{data.get('schema') if isinstance(data, dict) else data!r}; "
            f"expected {MANIFEST_SCHEMA}"
        )
    return data


def replay_bundle(
    directory: Union[str, Path],
    max_cycles: int = 50_000_000,
    bisect: bool = False,
) -> ReplayReport:
    """Re-execute a recorded run bundle and diff it against the record.

    Loads the bundle's initial snapshot, detaches it from the bundle
    directory (a replay must never overwrite the evidence), runs to
    completion or failure, and compares status, final cycle, output
    digest and event-trace digest against ``manifest.json``.

    With ``bisect=True`` a diverged replay is handed to
    :func:`bisect_divergence`, and the resulting
    :class:`DivergenceReport` is attached to the returned report.
    """
    from .snapshot import load_machine

    directory = Path(directory)
    manifest = read_manifest(directory)
    initial = directory / manifest.get("initial_snapshot", "initial.snap")
    machine = load_machine(initial)
    machine.ckpt = None
    if machine.trace is None:
        raise SnapshotError(
            f"initial snapshot {initial} was taken without event tracing; "
            f"the bundle cannot be replayed bit-exactly"
        )
    error: Optional[Exception] = None
    try:
        machine.run(max_cycles=max_cycles)
    except (DeadlockError, SimulationTimeout) as exc:
        error = exc
    actual = _outcome(machine, error)
    expected = {
        k: manifest[k]
        for k in ("status", "final_cycle", "outputs_sha256", "trace_sha256",
                  "trace_events", "error")
        if k in manifest
    }
    if manifest.get("status") == "running":
        raise SnapshotError(
            f"bundle {directory} records a run that never finished "
            f"(status 'running'): resume it first, then replay"
        )
    report = ReplayReport(
        bundle=str(directory),
        expected=expected,
        actual=actual,
        mismatches=_compare(expected, actual),
    )
    if bisect and not report.reproduced:
        report.divergence = bisect_divergence(
            directory, max_cycles=max_cycles
        )
    return report


# ----------------------------------------------------------------------
# divergence bisection
# ----------------------------------------------------------------------
@dataclass
class DivergenceReport:
    """Where (and on which event) a replay first left the record.

    ``window`` is the half-open cycle range ``[lo, hi)`` between two
    adjacent digest-ledger entries: the replayed trace digest matches
    the record at cycle ``lo`` and mismatches at ``hi``, so the first
    divergent event executed inside the window.  ``window_indices``
    are the corresponding ledger indices (the last index is the
    terminal manifest digest, one past the last snapshot).
    """

    bundle: str
    diverged: bool
    interval: int = 0
    probes: int = 0
    window: Optional[list[int]] = None
    window_indices: Optional[list[int]] = None
    window_snapshots: Optional[list[Optional[str]]] = None
    first_event: Optional[str] = None
    first_event_cycle: Optional[int] = None
    suspect: Optional[dict[str, Any]] = None
    recorded_tail: list[str] = field(default_factory=list)
    replayed_tail: list[str] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def to_dict(self) -> dict[str, Any]:
        return asdict(self)

    def summary(self) -> str:
        if not self.diverged:
            return (
                f"bisect of {self.bundle}: CLEAN -- replay matches the "
                f"recorded digest at every checkpoint and at the end "
                f"({self.probes} probe{'s' if self.probes != 1 else ''})"
            )
        lines = [
            f"bisect of {self.bundle}: DIVERGED in cycle window "
            f"[{self.window[0]}, {self.window[1]}) -- ledger entries "
            f"{self.window_indices[0]}..{self.window_indices[1]}, "
            f"{self.probes} probe{'s' if self.probes != 1 else ''}"
        ]
        if self.first_event is not None:
            lines.append(f"  first differing event: {self.first_event}")
        if self.suspect:
            lines.append(f"  suspect: {self.suspect}")
        for note in self.notes:
            lines.append(f"  note: {note}")
        return "\n".join(lines)


class _PassiveCheckpoint:
    """Duck-typed no-op stand-in for a ``CheckpointManager``.

    Replay probes must keep ``checkpoint_tick`` events re-arming on the
    recorded cadence -- the ticks are the pause points the ledger
    digests were captured at -- but must never write into the bundle
    directory (the evidence).  Swapping this in for the snapshot's real
    manager keeps ``config.interval`` visible to the tick handler and
    turns every save into a no-op.
    """

    def __init__(self, interval: int) -> None:
        from ..machine.stats import CheckpointStats
        from .manager import CheckpointConfig

        self.config = CheckpointConfig(
            directory=".", interval=interval, retain=0, record=False
        )
        self.stats = CheckpointStats()
        #: cycle -> (digest, event count) observed at each tick passed
        #: through -- lets a full probe cross-check every ledger entry
        self.observed: dict[int, tuple[str, int]] = {}

    def on_start(self, machine: Any) -> None:
        pass

    def save_periodic(self, machine: Any) -> None:
        self.observed[machine.now] = (
            machine.trace.hexdigest(), machine.trace.count
        )
        return None

    def save_live(self, machine: Any, reason: str = "live") -> None:
        return None

    def save_failure(self, machine: Any, error: Exception) -> None:
        return None

    def on_complete(self, machine: Any) -> None:
        pass

    def latest(self) -> None:
        return None


def _install_perturbation(machine: Any, plan: Any) -> None:
    """Swap a perturbing fault plan into a snapshot-loaded machine.

    When the recording ran with a fault injector, only the plan is
    swapped (the RNG cursor rides in the snapshot, so packet-fault
    draws before the perturbation point stay identical).  A recording
    made *without* an injector used the plain delivery path; installing
    packet faults or outages there would change the event vocabulary
    from the resume point instead of seeding a mid-run divergence, so
    only ``slow`` unit faults are accepted.
    """
    if plan is None:
        return
    if machine.injector is not None:
        machine.injector.plan = plan
    elif plan.has_packet_faults or any(
        f.kind != "slow" for f in plan.unit_faults
    ):
        raise SnapshotError(
            "this bundle was recorded without a fault injector; only "
            "'slow' unit faults can perturb its replay (packet faults "
            "and outages need the injector state the recording never had)"
        )
    machine.fault_plan = plan


def _ledger_entries(
    directory: Path, manifest: dict[str, Any]
) -> list[dict[str, Any]]:
    """The bundle's digest ledger plus a terminal pseudo-entry built
    from the manifest's final digest."""
    ledger = manifest.get("ledger")
    if not isinstance(ledger, list) or not ledger:
        raise SnapshotError(
            f"bundle {directory} has no digest ledger in its manifest "
            f"(recorded by an older build?); re-record it to enable "
            f"divergence bisection"
        )
    if "trace_sha256" not in manifest or "final_cycle" not in manifest:
        raise SnapshotError(
            f"bundle {directory} records no final trace digest; "
            f"resume the run to completion, then bisect"
        )
    entries = [dict(e) for e in ledger]
    # aux checkpoint ticks can outlive the last *traced* event (e.g.
    # retransmit checks keep the heap alive after the final delivery),
    # so the last ledger cycle may exceed the reported final cycle --
    # the terminal window must not run backwards
    entries.append(
        {
            "snapshot": None,
            "cycle": max(
                int(manifest["final_cycle"]), int(entries[-1]["cycle"])
            ),
            "trace_sha256": manifest["trace_sha256"],
            "trace_events": manifest.get("trace_events"),
            "terminal": True,
        }
    )
    return entries


def _resume_index(
    directory: Path, entries: list[dict[str, Any]], lo: int
) -> int:
    """Largest ledger index ``<= lo`` whose snapshot file still exists
    (retention may have pruned the others; ``initial.snap`` survives)."""
    for j in range(lo, -1, -1):
        name = entries[j].get("snapshot")
        if name and (directory / name).exists():
            return j
    raise SnapshotError(
        f"bundle {directory} has no surviving snapshot at or below "
        f"ledger entry {lo} (not even initial.snap); cannot probe"
    )


def _load_probe(
    directory: Path,
    entries: list[dict[str, Any]],
    j: int,
    interval: int,
    perturb: Any,
) -> Any:
    """Load the snapshot at ledger index ``j`` as a detached probe."""
    from .snapshot import load_machine

    machine = load_machine(directory / entries[j]["snapshot"])
    if machine.trace is None:
        raise SnapshotError(
            f"snapshot {entries[j]['snapshot']} in {directory} carries "
            f"no event trace; the bundle cannot be bisected"
        )
    machine.ckpt = _PassiveCheckpoint(interval)
    _install_perturbation(machine, perturb)
    # initial.snap is written before the first checkpoint_tick is
    # scheduled; arming it here consumes exactly the sequence number
    # the recorded run's tick got, so the probe's heap order matches
    if interval and not any(
        e[2] == "checkpoint_tick" for e in machine._events
    ):
        machine._at(machine.now + interval, "checkpoint_tick", aux=True)
    return machine


def _run_to(machine: Any, entry: dict[str, Any], max_cycles: int) -> None:
    """Advance a probe to a ledger entry's capture point (or to the
    end, for the terminal entry), swallowing run failures -- a probe
    that fails early simply won't match the entry's digest."""
    target = None if entry.get("terminal") else entry["cycle"]
    try:
        machine.run(max_cycles=max_cycles, stop_at_checkpoint=target)
    except (DeadlockError, SimulationTimeout):
        pass


def _digest_matches(machine: Any, entry: dict[str, Any]) -> bool:
    return (
        machine.trace.hexdigest() == entry["trace_sha256"]
        and machine.trace.count == entry.get("trace_events")
    )


def _suspect_from_event(machine: Any, event: tuple) -> dict[str, Any]:
    """Name the cell/arc/unit an executed event touched."""
    time, kind, args = event
    g = machine.graph
    info: dict[str, Any] = {"cycle": time, "kind": kind}

    def add_cell(cid: int) -> None:
        cell = g.cells.get(cid)
        info["cell"] = cid
        if cell is not None:
            info["label"] = cell.label

    def add_arc(aid: int) -> None:
        info["arc"] = aid
        arc = g.arcs.get(aid)
        if arc is not None:
            info["src"] = g.cells[arc.src].label
            info["dst"] = g.cells[arc.dst].label

    if kind == "dispatch" and args:
        info["pe"] = args[0]
    elif kind in ("record_sink", "deliver_ack") and args:
        add_cell(args[0])
    elif kind in (
        "transmit_result",
        "deliver_reliable",
        "receive_ack",
        "deliver_one_faulty",
    ) and args:
        add_arc(args[0])
    elif kind == "deliver_results" and args and args[0]:
        add_arc(args[0][0])
        info["arcs"] = list(args[0])
    return info


def bisect_divergence(
    directory: Union[str, Path],
    perturb: Any = None,
    max_cycles: int = 50_000_000,
    tail: int = 16,
) -> DivergenceReport:
    """Binary-search a bundle's digest ledger for the first divergent
    checkpoint window, then capture both sides of that window.

    ``perturb`` optionally installs a different
    :class:`~repro.faults.FaultPlan` on the replay side (see
    :func:`_install_perturbation`) -- the tool that turns "would this
    fault have changed the run, and where first?" into a one-command
    answer.  Without it, a divergence means the replay itself failed
    to reproduce the record.

    Each probe resumes from the newest surviving snapshot at or below
    the last known-good ledger entry and re-executes to the probed
    entry's cycle; matched probes are kept paused and continued in
    place, so the matched side of the search costs one forward pass in
    total.  Returns a :class:`DivergenceReport`; ``diverged=False``
    means every ledger digest and the terminal digest matched.
    """
    from ..sim.trace import EventCapture, first_divergence, format_event

    directory = Path(directory)
    manifest = read_manifest(directory)
    if manifest.get("status") == "running":
        raise SnapshotError(
            f"bundle {directory} records a run that never finished "
            f"(status 'running'): resume it first, then bisect"
        )
    interval = int(manifest.get("interval") or 0)
    entries = _ledger_entries(directory, manifest)
    report = DivergenceReport(
        bundle=str(directory), diverged=False, interval=interval
    )

    #: (ledger index, machine paused at that entry's capture point) of
    #: the highest matched probe -- continued in place when possible
    paused: Optional[tuple[int, Any]] = None
    #: replayed digests observed at every tick any probe passed through
    observed: dict[int, tuple[str, int]] = {}

    def probe(i: int, lo: int) -> bool:
        nonlocal paused
        report.probes += 1
        if paused is not None and paused[0] < i:
            machine = paused[1]
        else:
            j = _resume_index(directory, entries, lo)
            machine = _load_probe(directory, entries, j, interval, perturb)
        _run_to(machine, entries[i], max_cycles)
        observed.update(machine.ckpt.observed)
        if _digest_matches(machine, entries[i]):
            paused = None if entries[i].get("terminal") else (i, machine)
            return True
        paused = None
        return False

    last = len(entries) - 1
    if probe(last, 0):
        # the chained digest is prefix-committing, so a matching
        # terminal digest proves the replay executed the recorded event
        # sequence exactly -- any mid-ledger entry that disagrees with
        # the digests observed along the way is therefore wrong *in the
        # ledger itself* (a damaged or tampered bundle), not a replay
        # divergence, and is pinned without any further probing
        bad = next(
            (
                i
                for i in range(1, last)
                if entries[i]["cycle"] in observed
                and observed[entries[i]["cycle"]]
                != (
                    entries[i]["trace_sha256"],
                    entries[i].get("trace_events"),
                )
            ),
            None,
        )
        if bad is None:
            return report         # CLEAN: every digest matches
        report.diverged = True
        report.window = [entries[bad - 1]["cycle"], entries[bad]["cycle"]]
        report.window_indices = [bad - 1, bad]
        report.window_snapshots = [
            entries[bad - 1].get("snapshot"),
            entries[bad].get("snapshot"),
        ]
        report.notes.append(
            f"replay matches the recorded terminal digest, but ledger "
            f"entry {bad} (cycle {entries[bad]['cycle']}) disagrees with "
            f"the digest the replay passed through: the ledger is "
            f"internally inconsistent -- the bundle's manifest is "
            f"damaged or tampered, not the run"
        )
        return report

    lo, hi = 0, last              # invariant: match at lo, mismatch at hi
    while hi - lo > 1:
        mid = (lo + hi) // 2
        if probe(mid, lo):
            lo = mid
        else:
            hi = mid

    report.diverged = True
    report.window = [entries[lo]["cycle"], entries[hi]["cycle"]]
    report.window_indices = [lo, hi]
    report.window_snapshots = [
        entries[lo].get("snapshot"),
        entries[hi].get("snapshot"),
    ]

    # ------------------------------------------------------------------
    # window forensics: re-run both sides of [lo, hi) with full capture
    # ------------------------------------------------------------------
    j = _resume_index(directory, entries, lo)
    c_lo = entries[lo]["cycle"]

    def run_side(with_perturb: bool) -> Any:
        machine = _load_probe(
            directory, entries, j, interval, perturb if with_perturb else None
        )
        machine.capture = EventCapture(start_cycle=c_lo)
        _run_to(machine, entries[hi], max_cycles)
        if machine.capture.truncated:
            report.notes.append(
                "event capture truncated inside the window; tails show "
                "its beginning only"
            )
        return machine

    replay_machine = run_side(True)
    replayed = replay_machine.capture
    if perturb is not None:
        recorded = run_side(False).capture
        idx = first_divergence(recorded.events, replayed.events)
        if idx is None:
            report.notes.append(
                "window captures are identical event-for-event; the "
                "divergence is in event *timing* beyond the capture or "
                "in aux-event effects"
            )
        else:
            lo_cut = max(0, idx - tail // 2)
            report.recorded_tail = [
                format_event(e) for e in recorded.events[lo_cut: idx + tail]
            ]
            report.replayed_tail = [
                format_event(e) for e in replayed.events[lo_cut: idx + tail]
            ]
            side = replayed if idx < len(replayed.events) else recorded
            if idx < len(side.events):
                event = side.events[idx]
                report.first_event = format_event(event)
                report.first_event_cycle = event[0]
                report.suspect = _suspect_from_event(replay_machine, event)
            else:
                report.notes.append(
                    "one side's capture is a strict prefix of the "
                    "other's: the shorter run quiesced early"
                )
    else:
        # without a perturbation both re-runs replay identically, so
        # the recorded side of the window only survives in the hi
        # snapshot's embedded trace tail (if retention kept the file)
        report.replayed_tail = replayed.formatted()[-tail:]
        hi_snap = entries[hi].get("snapshot")
        if hi_snap and (directory / hi_snap).exists():
            from .snapshot import read_snapshot

            recorded_machine = read_snapshot(directory / hi_snap)["machine"]
            if recorded_machine.trace is not None:
                report.recorded_tail = list(recorded_machine.trace.tail)[-tail:]
                report.notes.append(
                    f"recorded tail taken from {hi_snap}'s embedded "
                    f"trace (last {len(report.recorded_tail)} events "
                    f"before the window's end); tails are unaligned"
                )
        else:
            report.notes.append(
                "the window's closing snapshot was pruned by retention; "
                "no recorded-side events survive to diff against"
            )
    return report
