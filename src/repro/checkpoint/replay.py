"""Deterministic record/replay of machine runs.

Because every stochastic decision in a run is drawn from the seeded
fault-plan RNG and every event is plain data, a run is a pure function
of its initial state.  Record mode (``CheckpointConfig(record=True)``)
exploits that: it snapshots the machine *before* the first event
(``initial.snap``), keeps a chained digest of every executed event, and
writes a ``manifest.json`` describing how the run ended.  Replaying the
bundle re-executes the run from the initial snapshot and checks that
the event sequence, the outputs and the failure (if any) come out
identical -- the forensics loop for any fault-induced failure.
"""

from __future__ import annotations

import hashlib
import json
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Optional, Union

from ..errors import DeadlockError, SimulationTimeout, SnapshotError

#: schema version of manifest.json
MANIFEST_SCHEMA = 1
MANIFEST_NAME = "manifest.json"


class EventTrace:
    """Chained SHA-256 digest of every non-aux event a machine executes.

    The digest after event *n* commits to the entire ordered prefix, so
    two runs match if and only if they executed the same events at the
    same cycles with the same arguments.  A bounded tail of recent
    events is kept for human diffing when a replay diverges.  The state
    is plain bytes, so it snapshots and resumes with the machine.
    """

    __slots__ = ("count", "digest", "tail")

    def __init__(self) -> None:
        self.count = 0
        self.digest = b"\x00" * 32
        self.tail: deque = deque(maxlen=32)

    def record(self, time: int, kind: str, args: tuple) -> None:
        item = f"{time}:{kind}:{args!r}"
        self.digest = hashlib.sha256(
            self.digest + item.encode("utf-8", "backslashreplace")
        ).digest()
        self.count += 1
        self.tail.append(item)

    def hexdigest(self) -> str:
        return self.digest.hex()

    def __getstate__(self):
        return (self.count, self.digest, self.tail)

    def __setstate__(self, state) -> None:
        self.count, self.digest, self.tail = state


def outputs_digest(outputs: dict[str, list]) -> str:
    """Canonical digest of a run's output streams.

    JSON float formatting uses ``repr`` (shortest round-trip), so equal
    digests mean bit-identical IEEE-754 outputs.
    """
    text = json.dumps(outputs, sort_keys=True, default=repr)
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def _outcome(machine, error: Optional[Exception]) -> dict[str, Any]:
    """The comparable facts of how a run ended."""
    out: dict[str, Any] = {
        "status": "failed" if error is not None else "completed",
        "final_cycle": machine.now if error is not None else machine.stats().cycles,
        "outputs_sha256": outputs_digest(machine.outputs()),
    }
    if machine.trace is not None:
        out["trace_sha256"] = machine.trace.hexdigest()
        out["trace_events"] = machine.trace.count
    if error is not None:
        out["error"] = {
            "type": type(error).__name__,
            "cycle": getattr(error, "cycle", None),
            "message": str(error),
        }
    return out


@dataclass
class ReplayReport:
    """Outcome of re-executing a recorded run."""

    bundle: str
    expected: dict[str, Any] = field(default_factory=dict)
    actual: dict[str, Any] = field(default_factory=dict)
    mismatches: list[str] = field(default_factory=list)

    @property
    def reproduced(self) -> bool:
        return not self.mismatches

    def summary(self) -> str:
        if self.reproduced:
            what = self.expected.get("status", "run")
            return (
                f"replay of {self.bundle}: reproduced the recorded "
                f"{what} run exactly ({self.actual.get('trace_events', '?')} "
                f"events, outputs {self.actual.get('outputs_sha256', '')[:12]}...)"
            )
        lines = [f"replay of {self.bundle}: DIVERGED from the record"]
        for m in self.mismatches:
            lines.append(f"  {m}")
        return "\n".join(lines)


def _compare(expected: dict[str, Any], actual: dict[str, Any]) -> list[str]:
    mismatches = []
    for key in ("status", "final_cycle", "outputs_sha256", "trace_sha256",
                "trace_events"):
        if key in expected and expected.get(key) != actual.get(key):
            mismatches.append(
                f"{key}: recorded {expected.get(key)!r}, "
                f"replayed {actual.get(key)!r}"
            )
    exp_err, act_err = expected.get("error"), actual.get("error")
    if exp_err is not None or act_err is not None:
        for key in ("type", "cycle"):
            e = exp_err.get(key) if exp_err else None
            a = act_err.get(key) if act_err else None
            if e != a:
                mismatches.append(
                    f"error {key}: recorded {e!r}, replayed {a!r}"
                )
    return mismatches


def read_manifest(directory: Union[str, Path]) -> dict[str, Any]:
    path = Path(directory) / MANIFEST_NAME
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except FileNotFoundError:
        raise SnapshotError(
            f"{path} does not exist: not a recorded run bundle "
            f"(record with CheckpointConfig(record=True) or "
            f"`repro checkpoint --record`)"
        ) from None
    except (OSError, json.JSONDecodeError) as exc:
        raise SnapshotError(f"cannot read manifest {path}: {exc}") from exc
    if not isinstance(data, dict) or data.get("schema") != MANIFEST_SCHEMA:
        raise SnapshotError(
            f"manifest {path} has unsupported schema "
            f"{data.get('schema') if isinstance(data, dict) else data!r}; "
            f"expected {MANIFEST_SCHEMA}"
        )
    return data


def replay_bundle(
    directory: Union[str, Path], max_cycles: int = 50_000_000
) -> ReplayReport:
    """Re-execute a recorded run bundle and diff it against the record.

    Loads the bundle's initial snapshot, detaches it from the bundle
    directory (a replay must never overwrite the evidence), runs to
    completion or failure, and compares status, final cycle, output
    digest and event-trace digest against ``manifest.json``.
    """
    from .snapshot import load_machine

    directory = Path(directory)
    manifest = read_manifest(directory)
    initial = directory / manifest.get("initial_snapshot", "initial.snap")
    machine = load_machine(initial)
    machine.ckpt = None
    if machine.trace is None:
        raise SnapshotError(
            f"initial snapshot {initial} was taken without event tracing; "
            f"the bundle cannot be replayed bit-exactly"
        )
    error: Optional[Exception] = None
    try:
        machine.run(max_cycles=max_cycles)
    except (DeadlockError, SimulationTimeout) as exc:
        error = exc
    actual = _outcome(machine, error)
    expected = {
        k: manifest[k]
        for k in ("status", "final_cycle", "outputs_sha256", "trace_sha256",
                  "trace_events", "error")
        if k in manifest
    }
    if manifest.get("status") == "running":
        raise SnapshotError(
            f"bundle {directory} records a run that never finished "
            f"(status 'running'): resume it first, then replay"
        )
    return ReplayReport(
        bundle=str(directory),
        expected=expected,
        actual=actual,
        mismatches=_compare(expected, actual),
    )
