"""Integrity walk over a checkpoint directory (``repro snapshot fsck``).

Delta chains trade write bytes for a new failure surface: a damaged or
missing ancestor silently poisons every descendant.  :func:`fsck_directory`
makes that surface inspectable -- it classifies every snapshot file and
(for sharded directories) every committed coordinated set, walking each
delta's parent chain with envelope and metadata reads only.  **No
payload is ever deserialized**, so fsck is safe to run on untrusted or
known-damaged directories.

The report is plain data (JSON-serializable); ``ok`` is False exactly
when some non-quarantined snapshot or committed set is unresumable --
the condition under which the CLI exits non-zero.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Union

from ..errors import SnapshotError
from .coordinator import _set_chain_broken, read_shard_manifest
from .replay import MANIFEST_NAME
from .snapshot import LEGACY_VERSION, chain_status, read_metadata

__all__ = ["fsck_directory"]


def _file_entry(path: Path) -> dict[str, Any]:
    """Classify one ``*.snap`` file without touching its payload."""
    entry: dict[str, Any] = {"name": path.name}
    try:
        meta = read_metadata(path)
    except SnapshotError as exc:
        entry.update(kind="unknown", status="damaged", error=str(exc))
        return entry
    if meta.get("format") == LEGACY_VERSION:
        kind = "legacy"
    else:
        kind = meta.get("kind", "full")
    entry["kind"] = kind
    if "cycle" in meta:
        entry["cycle"] = meta["cycle"]
    if kind in ("base", "delta"):
        entry["chain_depth"] = meta.get("chain_depth", 0)
        status = chain_status(path)
        entry["status"] = status["status"]
        if status["chain"] is not None:
            entry["chain"] = status["chain"]
        if status["error"]:
            entry["error"] = status["error"]
    else:
        # full/legacy/live/failure snapshots are self-contained and the
        # metadata read above already verified both section checksums
        entry["status"] = "intact"
    return entry


def _coordinated_sets(directory: Path) -> list[dict[str, Any]]:
    """Classify every committed coordinated set of a sharded manifest."""
    manifest = read_shard_manifest(directory)
    entries = [
        e for e in manifest.get("coordinated", []) if isinstance(e, dict)
    ]
    quarantined = {
        q.get("cycle")
        for q in manifest.get("quarantined", [])
        if isinstance(q, dict)
    }
    by_cycle = {e.get("cycle"): e for e in entries}
    out: list[dict[str, Any]] = []
    for entry in entries:
        report: dict[str, Any] = {
            "cycle": entry.get("cycle"),
            "kind": entry.get("kind", "full"),
            "files": len(entry.get("files", [])),
        }
        if "chain_depth" in entry:
            report["chain_depth"] = entry["chain_depth"]
        if entry.get("cycle") in quarantined:
            report["status"] = "quarantined"
            out.append(report)
            continue
        missing = [
            name
            for name in entry.get("files", [])
            if not (directory / name).exists()
        ]
        if missing or not entry.get("files"):
            report["status"] = "damaged"
            report["error"] = (
                f"committed set is missing member files: "
                f"{', '.join(missing) or '(no files listed)'}"
            )
        elif _set_chain_broken(entry, by_cycle, quarantined, directory):
            report["status"] = "orphaned"
            report["error"] = (
                "delta set's parent chain is incomplete (missing, "
                "quarantined or gutted ancestor set)"
            )
        else:
            report["status"] = "intact"
        out.append(report)
    return out


def fsck_directory(directory: Union[str, Path]) -> dict[str, Any]:
    """Walk every snapshot chain in ``directory`` and report integrity.

    Returns ``{"directory", "ok", "files", "quarantined", "problems"}``
    plus ``"sets"`` for sharded directories.  ``ok`` is False when any
    live (non-quarantined) snapshot file or committed coordinated set
    is damaged or orphaned; already-quarantined material is listed but
    never fails the check -- it has been dealt with.
    """
    directory = Path(directory)
    if not directory.is_dir():
        raise SnapshotError(f"{directory} is not a directory")
    report: dict[str, Any] = {
        "directory": str(directory),
        "ok": True,
        "files": [],
        "quarantined": sorted(
            p.name for p in directory.glob("*.snap.poisoned")
        ),
        "problems": [],
    }
    for path in sorted(directory.glob("*.snap")):
        entry = _file_entry(path)
        report["files"].append(entry)
        if entry["status"] != "intact":
            report["ok"] = False
            report["problems"].append(
                f"{entry['name']}: {entry['status']}"
                + (f" ({entry['error']})" if entry.get("error") else "")
            )
    if (directory / MANIFEST_NAME).exists():
        try:
            sets = _coordinated_sets(directory)
        except SnapshotError:
            sets = None  # not a sharded manifest (record bundle etc.)
        if sets is not None:
            report["sets"] = sets
            for entry in sets:
                if entry["status"] not in ("intact", "quarantined"):
                    report["ok"] = False
                    report["problems"].append(
                        f"coordinated set at cycle {entry['cycle']}: "
                        f"{entry['status']}"
                        + (
                            f" ({entry['error']})"
                            if entry.get("error")
                            else ""
                        )
                    )
    return report
