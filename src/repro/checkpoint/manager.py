"""Periodic snapshot scheduling, retention and failure bundles.

A :class:`CheckpointManager` is attached to one
:class:`repro.machine.Machine` run.  The machine drives it from inside
the event loop (``checkpoint_tick`` aux events every
``CheckpointConfig.interval`` cycles); the manager owns the on-disk
side: snapshot naming, atomic writes, retention pruning, the
record/replay manifest and the failure diagnosis bundle.

The manager itself is plain data and is serialized inside every
snapshot it writes, so a resumed run keeps checkpointing into the same
directory on the same cadence with the same retention bookkeeping.
"""

from __future__ import annotations

import json
import time
import warnings
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Optional, Union

from ..errors import ManifestError, SimulationTimeout, SnapshotError
from .replay import MANIFEST_NAME, MANIFEST_SCHEMA, _outcome
from .snapshot import (
    _atomic_write,
    read_metadata,
    save_snapshot,
    write_chain_snapshot,
)


@dataclass
class CheckpointConfig:
    """How one run checkpoints itself.

    ``directory``
        Where snapshots (and, in record mode, the manifest) live.
    ``interval``
        Cycles between periodic snapshots; 0 disables periodic
        snapshots (failure snapshots and record mode still work).
    ``retain``
        How many periodic snapshots to keep (oldest pruned first);
        0 keeps all of them.
    ``record``
        Record mode: write an initial snapshot plus ``manifest.json``
        and keep an event-trace digest, so the whole run can be
        re-executed and verified with
        :func:`repro.checkpoint.replay_bundle`.
    ``delta_every``
        Delta-chain policy: 0 (the default) writes classic standalone
        ``ckpt-*.snap`` full snapshots; N >= 2 writes a full base every
        N-th periodic snapshot (``ckpt-*.base.snap``) and incremental
        format-v3 deltas (``ckpt-*.delta.snap``) in between.  Live,
        failure and initial snapshots are always standalone fulls
        regardless of this knob.
    ``max_chain_depth``
        Hard ceiling on delta chain length: a delta whose chain depth
        would exceed this is promoted to a full base (rebased) even if
        ``delta_every`` has not come around yet.
    """

    directory: Union[str, Path]
    interval: int = 10_000
    retain: int = 3
    record: bool = False
    delta_every: int = 0
    max_chain_depth: int = 64

    def __post_init__(self) -> None:
        if self.interval < 0:
            raise SnapshotError(
                f"checkpoint interval must be >= 0, got {self.interval}"
            )
        if self.retain < 0:
            raise SnapshotError(
                f"checkpoint retention must be >= 0, got {self.retain}"
            )
        if self.delta_every < 0:
            raise SnapshotError(
                f"checkpoint delta_every must be >= 0, got {self.delta_every}"
            )
        if self.delta_every == 1:
            raise SnapshotError(
                "checkpoint delta_every=1 would write a base every time; "
                "use 0 to disable delta chains"
            )
        if self.max_chain_depth < 1:
            raise SnapshotError(
                f"checkpoint max_chain_depth must be >= 1, "
                f"got {self.max_chain_depth}"
            )
        self.directory = str(self.directory)


class CheckpointManager:
    """On-disk checkpoint state for one (possibly resumed) run."""

    def __init__(self, config: CheckpointConfig) -> None:
        self.config = config
        from ..machine.stats import CheckpointStats

        self.stats = CheckpointStats()
        #: periodic snapshot file names in write order, for retention
        self._periodic: list[str] = []
        #: record mode: one entry per snapshot ever taken -- name, cycle
        #: and the chained event-trace digest at that point.  Entries
        #: survive retention pruning (the digest matters even after the
        #: file is gone); replay bisection walks this ledger.
        self._ledger: list[dict[str, Any]] = []

    @property
    def directory(self) -> Path:
        return Path(self.config.directory)

    # ------------------------------------------------------------------
    # lifecycle hooks called by the machine
    # ------------------------------------------------------------------
    def on_start(self, machine: Any) -> None:
        self.directory.mkdir(parents=True, exist_ok=True)
        if self.config.record:
            self._save(machine, "initial.snap", "initial")
            self._ledger = [self._ledger_entry(machine, "initial.snap")]
            self._write_manifest(
                {
                    "schema": MANIFEST_SCHEMA,
                    "status": "running",
                    "initial_snapshot": "initial.snap",
                    "interval": self.config.interval,
                    "checkpoints": [],
                    "ledger": list(self._ledger),
                }
            )

    def _next_kind(self, machine: Any) -> str:
        """Decide what the next periodic snapshot should be.

        ``"full"`` is the classic standalone v2 snapshot (delta chains
        disabled); ``"base"`` starts a chain and ``"delta"`` extends
        the one the machine's in-memory tip points at.  A machine with
        no tip (fresh run, resumed run, post-rollback clone) always
        starts with a base -- its previous chain, if any, belongs to a
        state we can no longer extend.
        """
        every = self.config.delta_every
        if not every:
            return "full"
        tip = getattr(machine, "_snap_chain", None)
        if tip is None:
            return "base"
        depth = tip["depth"] + 1
        if depth >= every or depth > self.config.max_chain_depth:
            return "base"
        return "delta"

    def save_periodic(self, machine: Any) -> Path:
        kind = self._next_kind(machine)
        if kind == "full":
            name = f"ckpt-{machine.now:012d}.snap"
        else:
            name = f"ckpt-{machine.now:012d}.{kind}.snap"
        # register before serializing so the snapshot's own manager
        # state already owns the file it lives in (and, in record mode,
        # already carries its own ledger entry)
        self._periodic.append(name)
        if self.config.record:
            self._ledger.append(self._ledger_entry(machine, name))
        path = self._save(machine, name, "periodic", kind=kind)
        self._prune()
        if self.config.record:
            self._update_manifest(
                checkpoints=list(self._periodic), ledger=list(self._ledger)
            )
        return path

    def save_live(self, machine: Any, reason: str = "live") -> Path:
        """Snapshot a live run at an out-of-band request point.

        Written as ``live-<cycle>.snap`` when the event loop drains a
        :meth:`repro.machine.Machine.request_snapshot` (e.g. from the
        SIGUSR1 handler or a supervising process).  Live snapshots are
        full resume points but are neither retention-pruned nor added
        to the record ledger -- they are taken between events rather
        than at a ``checkpoint_tick``, so a replay probe could not
        pause at their capture point to compare digests.

        Live snapshots always bypass the delta-chain policy: being
        outside the retention ledger they can outlive the chain that
        was current when they were taken, so chaining one would leave
        a resume point whose ancestors are legally prunable.  They are
        written as standalone full snapshots and do not advance the
        machine's chain tip.
        """
        name = f"live-{machine.now:012d}.snap"
        self.stats.live_snapshots += 1
        return self._save(machine, name, reason)

    def save_failure(self, machine: Any, error: Exception) -> Path:
        """Snapshot the wedged machine and write a diagnosis bundle,
        then attach the snapshot path to the error.

        A timed-out machine was still making progress and stays
        resumable, so its snapshot is named ``timeout-*``;
        ``failure-*`` pins a wedged machine for forensics only.

        Both are always standalone full snapshots even in delta mode:
        failure forensics must never depend on a chain whose other
        links are subject to retention pruning or quarantine.
        """
        prefix = "timeout" if isinstance(error, SimulationTimeout) else "failure"
        name = f"{prefix}-{machine.now:012d}.snap"
        self.stats.failure_snapshots += 1
        path = self._save(machine, name, prefix)
        bundle: dict[str, Any] = {
            "schema": MANIFEST_SCHEMA,
            "snapshot": name,
            **_outcome(machine, error),
        }
        diagnosis = getattr(error, "diagnosis", None)
        if diagnosis is not None:
            bundle["diagnosis"] = diagnosis.summary()
        if machine.fault_plan is not None:
            bundle["fault_plan"] = machine.fault_plan.to_dict()
        _atomic_write(
            self.directory / f"{prefix}-{machine.now:012d}.json",
            (json.dumps(bundle, indent=2, default=repr) + "\n").encode(),
        )
        if self.config.record:
            try:
                self._update_manifest(**_outcome(machine, error))
            except ManifestError as exc:
                # the run is already failing; surface the bundle damage
                # as a warning instead of masking the original error
                warnings.warn(str(exc), RuntimeWarning, stacklevel=2)
        error.snapshot_path = str(path)
        return path

    @staticmethod
    def _ledger_entry(machine: Any, name: str) -> dict[str, Any]:
        return {
            "snapshot": name,
            "cycle": machine.now,
            "trace_sha256": machine.trace.hexdigest(),
            "trace_events": machine.trace.count,
        }

    def on_complete(self, machine: Any) -> None:
        if self.config.record:
            self._update_manifest(**_outcome(machine, None))

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------
    def _save(
        self, machine: Any, name: str, reason: str, kind: str = "full"
    ) -> Path:
        # count the write *before* serializing, so the snapshot's own
        # embedded stats already include itself -- a resumed run then
        # ends with the same cumulative counters as an uninterrupted one
        self.stats.snapshots_written += 1
        self.stats.last_snapshot_cycle = machine.now
        if kind == "delta":
            self.stats.delta_snapshots += 1
        t0 = time.perf_counter()
        if kind == "full":
            path = save_snapshot(machine, self.directory / name, reason)
        else:
            path = write_chain_snapshot(
                machine, self.directory / name, reason, kind=kind
            )
        elapsed = time.perf_counter() - t0
        self.stats.seconds_spent += elapsed
        # per-snapshot latency samples for p50/p99 reporting; bounded
        # so a service-length run cannot grow its own snapshots
        self.stats.latencies.append(elapsed)
        if len(self.stats.latencies) > 8192:
            del self.stats.latencies[:4096]
        size = path.stat().st_size
        self.stats.bytes_written += size
        if kind == "delta":
            self.stats.delta_bytes_written += size
        return path

    def _chain_groups(self) -> list[list[str]]:
        """Split ``_periodic`` into prune units.

        A standalone full snapshot is its own unit; a base plus the
        deltas chained on it form one unit that must live or die
        together (unlinking the base would orphan every descendant).
        ``save_periodic`` is the only chain writer and always chains
        from its own previous write, so a base and its deltas are
        adjacent in the ledger.
        """
        groups: list[list[str]] = []
        for name in self._periodic:
            if name.endswith(".delta.snap") and groups:
                groups[-1].append(name)
            else:
                groups.append([name])
        return groups

    def _has_external_children(self, doomed: list[str]) -> bool:
        """True when an on-disk delta *outside* the doomed set lists a
        doomed file as its parent.

        A resumed run restarts its in-memory retention ledger, so the
        directory can hold stale descendants of a base this manager is
        about to prune (written before the crash).  Unlinking the base
        would silently orphan them; keep the whole chain instead.
        """
        doomed_set = set(doomed)
        try:
            on_disk = list(self.directory.glob("*.delta.snap"))
        except OSError:
            return False
        for path in on_disk:
            if path.name in doomed_set:
                continue
            try:
                parent = read_metadata(path).get("parent")
            except SnapshotError:
                continue
            if parent in doomed_set:
                return True
        return False

    def _prune(self) -> None:
        """Chain-aware retention: whole chains prune all-or-none.

        The retention floor counts snapshot *files* (as before), but
        the prune unit is a chain: the oldest unit goes only when the
        survivors still satisfy ``retain``.  Names leave ``_periodic``
        before any unlink and files are removed newest-first, so a
        crash mid-prune leaves an intact chain prefix, never an
        orphaned delta.
        """
        keep = self.config.retain
        if not keep:
            return
        while len(self._periodic) > keep:
            groups = self._chain_groups()
            doomed = groups[0]
            if len(self._periodic) - len(doomed) < keep:
                break  # pruning the whole chain would dip below retain
            if len(doomed) > 1 or doomed[0].endswith(".base.snap"):
                if self._has_external_children(doomed):
                    break
            del self._periodic[: len(doomed)]
            for old in reversed(doomed):
                (self.directory / old).unlink(missing_ok=True)
                self.stats.snapshots_pruned += 1

    def _write_manifest(self, manifest: dict[str, Any]) -> None:
        _atomic_write(
            self.directory / MANIFEST_NAME,
            (json.dumps(manifest, indent=2, default=repr) + "\n").encode(),
        )

    def _update_manifest(self, **fields: Any) -> None:
        """Merge ``fields`` into the on-disk manifest.

        The manifest was written at :meth:`on_start`, before the first
        event; finding it missing or unparseable mid-run means the
        bundle has been damaged.  Fabricating a fresh default manifest
        here would silently resurrect the bundle and mask that damage,
        so a typed :class:`ManifestError` is raised instead.
        """
        path = self.directory / MANIFEST_NAME
        try:
            manifest = json.loads(path.read_text(encoding="utf-8"))
        except FileNotFoundError:
            raise ManifestError(
                f"record manifest {path} disappeared mid-run; the bundle "
                f"is damaged and will not be silently recreated"
            ) from None
        except (OSError, json.JSONDecodeError) as exc:
            raise ManifestError(
                f"record manifest {path} is damaged mid-run ({exc}); "
                f"refusing to overwrite the evidence with a fresh default"
            ) from exc
        if not isinstance(manifest, dict):
            raise ManifestError(
                f"record manifest {path} is damaged mid-run: expected a "
                f"JSON object, found {type(manifest).__name__}"
            )
        manifest.update(fields)
        self._write_manifest(manifest)

    def latest(self) -> Optional[Path]:
        from .snapshot import latest_snapshot

        return latest_snapshot(self.directory)
