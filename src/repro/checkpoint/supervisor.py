"""Crash supervision: keep a checkpointed workload running unattended.

``repro supervise <workload>`` (backed by :class:`Supervisor`) runs the
workload in a child process and turns the checkpoint layer's manual
``repro resume`` step into an always-on recovery loop -- the task-level
analogue of the paper's acknowledge-arc protocol, which keeps the
instruction pipeline full under component failure:

* the child is started fresh (or resumed, if the checkpoint directory
  already holds snapshots) and watched to completion;
* on any crash -- SIGKILL, a simulated ``--crash-at`` kill, a
  :class:`~repro.errors.SimulationTimeout`, a diagnosed deadlock --
  the supervisor resumes from the latest good snapshot after an
  exponential backoff with seeded jitter, up to a max-restart budget;
* a **poisoned snapshot** is stepped around: when a resume from
  snapshot *N* fails to load outright, or re-crashes twice without
  ever writing a newer snapshot (two strikes inside the same
  checkpoint window), *N* is quarantined -- renamed to
  ``<name>.snap.poisoned`` so :func:`~repro.checkpoint.snapshot.
  latest_snapshot` skips it -- and recorded under ``"quarantined"``
  in the directory's ``manifest.json``; the next resume steps back to
  *N−1*.

The supervised run's final stdout (the outputs JSON) is captured per
attempt and republished by the CLI only for the successful attempt, so
``repro supervise ... > out.json`` is byte-identical to the stdout of
an uninterrupted ``repro checkpoint`` run of the same workload.

Determinism: the backoff jitter RNG is seeded (``SupervisorConfig.
seed``) and the sleep function is injectable, so the restart schedule
itself is reproducible in tests.

Division of labour with in-process self-healing: sharded runs heal
*worker* failures themselves (:mod:`repro.machine.sharded` rolls back
to the latest coordinated set and respawns only the dead shard, see
DESIGN.md section 10) and surface exit 137 only when that gives up
(:class:`~repro.machine.ShardRecoveryExhausted`), so this supervisor
is the outer loop of last resort -- it handles whole-process death,
which no amount of in-process recovery can.  The escalation policy
here (restart budget, seeded exponential backoff, two-strike
step-back past a poisoned resume point) is deliberately mirrored by
:class:`~repro.machine.ShardRecoveryPolicy` one level down.
"""

from __future__ import annotations

import json
import os
import random
import subprocess
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Optional, Union

from ..errors import EXIT_SNAPSHOT_UNLOADABLE, SupervisorError
from .coordinator import (
    is_sharded_dir,
    latest_coordinated,
    quarantine_coordinated,
)
from .replay import MANIFEST_NAME, MANIFEST_SCHEMA
from .snapshot import _atomic_write, latest_snapshot

__all__ = [
    "EXIT_SNAPSHOT_UNLOADABLE",  # canonical home: repro.errors
    "BackoffPolicy",
    "SupervisorConfig",
    "AttemptRecord",
    "SupervisorReport",
    "Supervisor",
]

#: pseudo snapshot-name prefix for a sharded run's coordinated set;
#: the supervisor's strike/quarantine bookkeeping works on names, and
#: a coordinated set has no single file, so it gets a synthetic one
COORDINATED_SET_PREFIX = "coordinated-set-"


@dataclass(frozen=True)
class _CoordinatedResumePoint:
    """Stand-in for a :class:`~pathlib.Path` snapshot: the newest
    complete coordinated set of a sharded checkpoint directory."""

    cycle: int

    @property
    def name(self) -> str:
        return f"{COORDINATED_SET_PREFIX}{self.cycle:012d}"


@dataclass(frozen=True)
class BackoffPolicy:
    """Seeded-jitter exponential backoff, shared by every retry loop.

    Delay before retry *i* (1-based) is
    ``min(max_delay, base * factor**(i-1))`` scaled by a uniform draw
    from ``[1-jitter, 1+jitter]``.  The draw comes from a caller-owned
    :class:`random.Random` so each loop's schedule is reproducible and
    independent -- a fleet of supervisors (or a serve worker pool)
    seeded differently never thunders back in lockstep.
    """

    base: float = 0.5
    factor: float = 2.0
    max_delay: float = 30.0
    jitter: float = 0.1

    def delay(self, retry_index: int, rng: random.Random) -> float:
        if retry_index < 1:
            return 0.0
        delay = min(self.max_delay, self.base * self.factor ** (retry_index - 1))
        if self.jitter:
            delay *= rng.uniform(1 - self.jitter, 1 + self.jitter)
        return delay


@dataclass
class SupervisorConfig:
    """Restart policy for one supervised workload.

    ``max_restarts``
        Restart budget; the initial start is free, so ``max_restarts=5``
        allows up to six child processes in total.
    ``backoff_base`` / ``backoff_factor`` / ``backoff_max``
        Exponential backoff in seconds before restart *i*:
        ``min(backoff_max, backoff_base * backoff_factor**(i-1))``.
    ``jitter``
        Fractional jitter: each delay is scaled by a seeded uniform
        draw from ``[1-jitter, 1+jitter]`` so a fleet of supervisors
        never thunders back in lockstep.
    ``seed``
        Seed for the jitter RNG (the schedule is reproducible).
    ``strikes``
        Crashes tolerated from the same resume snapshot without
        forward progress before it is quarantined.
    """

    directory: Union[str, Path]
    max_restarts: int = 8
    backoff_base: float = 0.5
    backoff_factor: float = 2.0
    backoff_max: float = 30.0
    jitter: float = 0.1
    seed: int = 0
    strikes: int = 2

    def __post_init__(self) -> None:
        if self.max_restarts < 0:
            raise SupervisorError(
                f"max_restarts must be >= 0, got {self.max_restarts}"
            )
        if self.strikes < 1:
            raise SupervisorError(f"strikes must be >= 1, got {self.strikes}")
        self.directory = str(self.directory)


@dataclass
class AttemptRecord:
    """One child process the supervisor ran."""

    index: int
    mode: str                       # "start" or "resume"
    resume_snapshot: Optional[str]  # snapshot name a resume loaded from
    returncode: int
    backoff: float                  # seconds slept before this attempt

    def to_dict(self) -> dict[str, Any]:
        return {
            "index": self.index,
            "mode": self.mode,
            "resume_snapshot": self.resume_snapshot,
            "returncode": self.returncode,
            "backoff": round(self.backoff, 6),
        }


@dataclass
class SupervisorReport:
    """How a supervised run ended."""

    directory: str
    completed: bool
    attempts: list[AttemptRecord] = field(default_factory=list)
    quarantined: list[str] = field(default_factory=list)
    #: captured stdout of the successful attempt (None if none succeeded)
    stdout: Optional[bytes] = None
    #: captured stderr of the successful attempt (None if none succeeded
    #: or the runner does not capture stderr); failed attempts' stderr is
    #: re-emitted to the supervisor's own stderr as it happens
    stderr: Optional[bytes] = None
    gave_up: Optional[str] = None

    @property
    def restarts(self) -> int:
        return max(0, len(self.attempts) - 1)

    def to_dict(self) -> dict[str, Any]:
        return {
            "directory": self.directory,
            "completed": self.completed,
            "restarts": self.restarts,
            "attempts": [a.to_dict() for a in self.attempts],
            "quarantined": list(self.quarantined),
            "gave_up": self.gave_up,
        }

    def summary(self) -> str:
        if self.completed:
            text = (
                f"supervise {self.directory}: completed after "
                f"{self.restarts} restart{'s' if self.restarts != 1 else ''}"
            )
        else:
            text = (
                f"supervise {self.directory}: GAVE UP after "
                f"{len(self.attempts)} attempts ({self.gave_up})"
            )
        if self.quarantined:
            text += f"; quarantined {', '.join(self.quarantined)}"
        return text


def _record_quarantine(directory: Path, name: str, reason: str) -> None:
    """Append a quarantined snapshot to the directory's manifest.

    A record-mode bundle already has ``manifest.json``; a plain
    checkpoint directory gets a minimal one (schema + quarantine list
    only) so the forensic trail survives either way.  An unreadable
    manifest is left untouched -- quarantining must never destroy
    evidence.
    """
    path = directory / MANIFEST_NAME
    try:
        manifest = json.loads(path.read_text(encoding="utf-8"))
        if not isinstance(manifest, dict):
            return
    except FileNotFoundError:
        manifest = {"schema": MANIFEST_SCHEMA}
    except (OSError, json.JSONDecodeError):
        return
    entries = manifest.setdefault("quarantined", [])
    entries.append({"snapshot": name, "reason": reason})
    _atomic_write(
        path, (json.dumps(manifest, indent=2) + "\n").encode("utf-8")
    )


class Supervisor:
    """Run ``start_argv`` (and ``resume_argv`` after crashes) until the
    workload completes or the restart budget runs out.

    ``start_argv``
        Command that starts the workload from scratch, checkpointing
        into ``config.directory``.
    ``resume_argv``
        Callable mapping the checkpoint directory to the command that
        resumes it (defaults to ``repro resume <dir>`` via the current
        interpreter).  A custom resume command should exit
        :data:`EXIT_SNAPSHOT_UNLOADABLE` when the snapshot itself
        cannot be loaded -- that is the only exit code that
        quarantines the snapshot immediately; every other nonzero
        exit counts as an ordinary crash strike.
    ``extra_args``
        Per-attempt extra argv lists consumed in order (attempt 1 gets
        ``extra_args[0]``, ...); the CLI's ``--inject-crash`` test hook
        feeds ``["--crash-at", N]`` pairs through this.
    ``runner`` / ``sleep``
        Injectable process launcher (``argv -> CompletedProcess``-like
        with ``returncode`` and ``stdout``) and sleep function, so
        tests can script crash sequences and assert the backoff
        schedule without wall-clock waits.
    """

    def __init__(
        self,
        start_argv: list[str],
        config: SupervisorConfig,
        resume_argv: Optional[Callable[[Path], list[str]]] = None,
        extra_args: Optional[list[list[str]]] = None,
        runner: Optional[Callable[[list[str]], Any]] = None,
        sleep: Callable[[float], None] = time.sleep,
        log: Callable[[str], None] = lambda line: print(
            line, file=sys.stderr
        ),
    ) -> None:
        if not start_argv:
            raise SupervisorError("start_argv must not be empty")
        self.start_argv = list(start_argv)
        self.config = config
        self.resume_argv = resume_argv or self._default_resume_argv
        self.extra_args = [list(a) for a in (extra_args or [])]
        self.runner = runner or self._run_child
        self.sleep = sleep
        self.log = log
        self._rng = random.Random(config.seed)

    @property
    def directory(self) -> Path:
        return Path(self.config.directory)

    @staticmethod
    def _default_resume_argv(directory: Path) -> list[str]:
        return [sys.executable, "-m", "repro", "resume", str(directory)]

    @staticmethod
    def _run_child(argv: list[str]) -> Any:
        # children must import repro even when the supervisor itself
        # was launched with an ad-hoc PYTHONPATH
        import repro

        env = dict(os.environ)
        pkg_root = str(Path(repro.__file__).resolve().parent.parent)
        parts = env.get("PYTHONPATH", "").split(os.pathsep)
        if pkg_root not in parts:
            env["PYTHONPATH"] = os.pathsep.join(
                [pkg_root] + [p for p in parts if p]
            )
        return subprocess.run(
            argv, stdout=subprocess.PIPE, stderr=subprocess.PIPE, env=env
        )

    def _backoff(self, restart_index: int) -> float:
        cfg = self.config
        policy = BackoffPolicy(
            base=cfg.backoff_base,
            factor=cfg.backoff_factor,
            max_delay=cfg.backoff_max,
            jitter=cfg.jitter,
        )
        return policy.delay(restart_index, self._rng)

    def _latest(self) -> Optional[Any]:
        """Newest resumable point: a snapshot path, a coordinated set
        of a sharded directory, or None."""
        if is_sharded_dir(self.directory):
            entry = latest_coordinated(self.directory)
            if entry is None:
                return None
            return _CoordinatedResumePoint(int(entry["cycle"]))
        return latest_snapshot(self.directory)

    def _quarantine(self, report: SupervisorReport, snap_name: str,
                    reason: str) -> None:
        if snap_name.startswith(COORDINATED_SET_PREFIX):
            # a sharded run's set: all K shard files go together
            # (quarantine_coordinated also takes chained delta sets)
            cycle = int(snap_name[len(COORDINATED_SET_PREFIX):])
            quarantine_coordinated(self.directory, cycle, reason)
        else:
            # a chain goes as a unit: deltas chained (transitively) on
            # this snapshot can no longer reach a trusted base, so
            # quarantining only the bad link would leave resume points
            # that are guaranteed to fail the chain verification
            from .snapshot import chain_descendants

            doomed = [snap_name] + chain_descendants(
                self.directory, snap_name
            )
            for name in doomed:
                path = self.directory / name
                if path.exists():
                    path.rename(path.with_name(path.name + ".poisoned"))
                why = (
                    reason
                    if name == snap_name
                    else f"delta chained on quarantined {snap_name}"
                )
                _record_quarantine(self.directory, name, why)
        report.quarantined.append(snap_name)
        self.log(f"# supervise: quarantined {snap_name} ({reason})")

    def run(self) -> SupervisorReport:
        """The supervision loop; returns the full attempt history."""
        report = SupervisorReport(
            directory=str(self.directory), completed=False
        )
        #: crash strikes per resume-snapshot name (None = cold start)
        strikes: dict[Optional[str], int] = {}
        restarts = 0
        while True:
            resume_from = self._latest()
            mode = "resume" if resume_from is not None else "start"
            if mode == "resume":
                argv = self.resume_argv(self.directory)
            else:
                argv = list(self.start_argv)
            if self.extra_args:
                argv = argv + self.extra_args.pop(0)
            backoff = 0.0
            if report.attempts:
                restarts += 1
                backoff = self._backoff(restarts)
                self.log(
                    f"# supervise: restart {restarts}/"
                    f"{self.config.max_restarts} ({mode}"
                    f"{f' from {resume_from.name}' if resume_from else ''}) "
                    f"after {backoff:.2f}s backoff"
                )
                if backoff > 0:
                    self.sleep(backoff)
            proc = self.runner(argv)
            attempt = AttemptRecord(
                index=len(report.attempts) + 1,
                mode=mode,
                resume_snapshot=(
                    resume_from.name if resume_from is not None else None
                ),
                returncode=proc.returncode,
                backoff=backoff,
            )
            report.attempts.append(attempt)
            if proc.returncode == 0:
                report.completed = True
                report.stdout = proc.stdout
                report.stderr = getattr(proc, "stderr", None)
                return report
            # a failed attempt's diagnostics (deadlock reports, failure
            # snapshot paths, ...) must not vanish with the child:
            # re-emit its captured stderr right away, unmodified
            failed_stderr = getattr(proc, "stderr", None)
            if failed_stderr:
                sys.stderr.buffer.write(failed_stderr)
                sys.stderr.buffer.flush()
            self.log(
                f"# supervise: attempt {attempt.index} ({mode}) exited "
                f"{proc.returncode}"
            )
            if (mode == "resume"
                    and proc.returncode == EXIT_SNAPSHOT_UNLOADABLE):
                # the child could not even load the snapshot (typed
                # SnapshotError path, dedicated exit code): poisoned
                # beyond doubt, step back to N-1 immediately.  Generic
                # exit 1 (any other ReproError after a clean load)
                # falls through to the strike counter below.
                self._quarantine(
                    report, resume_from.name,
                    f"failed to load (exit {proc.returncode}, "
                    f"attempt {attempt.index})",
                )
                strikes.pop(resume_from.name, None)
            else:
                key = resume_from.name if resume_from is not None else None
                newest = self._latest()
                progressed = (
                    newest is not None
                    and (resume_from is None or newest.name != key)
                )
                if progressed:
                    # the crash happened past a fresh snapshot, so only
                    # the resumed-from snapshot's slate is wiped; other
                    # snapshots keep their accumulated strikes
                    strikes.pop(key, None)
                else:
                    strikes[key] = strikes.get(key, 0) + 1
                    if key is not None and strikes[key] >= self.config.strikes:
                        self._quarantine(
                            report, key,
                            f"{strikes[key]} crashes inside its "
                            f"checkpoint window",
                        )
                        strikes.pop(key, None)
            if restarts >= self.config.max_restarts:
                report.gave_up = (
                    f"restart budget of {self.config.max_restarts} exhausted"
                )
                self.log(f"# supervise: {report.gave_up}")
                return report
            if (
                self._latest() is None
                and mode == "resume"
            ):
                # every snapshot has been quarantined and there is no
                # initial one left: restarting from scratch is the only
                # option, which the next iteration's mode pick handles
                self.log(
                    "# supervise: no resumable snapshot left; restarting "
                    "from scratch"
                )
