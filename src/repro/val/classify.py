"""Classification of Val constructs per the paper's definitions.

Section 5 defines *primitive expressions* (PEs) on an index variable i
by six formation rules; Sections 6 and 7 define *primitive forall*
expressions and *primitive for-iter* constructs on top of them.  The
compiler's mapping schemes apply exactly to these classes, so the
classifier both gates compilation and extracts the structural facts
(array-access offsets, loop ranges, the recurrence element expression)
the schemes need.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional

from ..errors import ClassificationError
from . import ast_nodes as A
from .interpreter import const_eval

_ARITH_REL_BOOL = {"+", "-", "*", "/", "<", "<=", ">", ">=", "=", "~=", "&", "|"}


@dataclass(frozen=True)
class ArrayAccess:
    """One ``A[i+offset]`` occurrence inside a primitive expression."""

    array: str
    offset: int


@dataclass
class PEInfo:
    """Facts about a verified primitive expression."""

    accesses: list[ArrayAccess] = field(default_factory=list)

    @property
    def is_scalar(self) -> bool:
        """Rule (4) unused: a *scalar* primitive expression."""
        return not self.accesses

    def arrays(self) -> set[str]:
        return {a.array for a in self.accesses}


def index_offset(
    expr: A.Expr, index_var: str, params: Mapping[str, int]
) -> Optional[int]:
    """Offset ``m`` when ``expr`` is ``i``, ``i + m`` or ``i - m`` with a
    compile-time constant ``m``; None otherwise."""
    if isinstance(expr, A.Ident) and expr.name == index_var:
        return 0
    if isinstance(expr, A.BinOp) and expr.op in ("+", "-"):
        left, right = expr.left, expr.right
        sign = 1 if expr.op == "+" else -1
        if isinstance(left, A.Ident) and left.name == index_var:
            try:
                return sign * const_eval(right, params)
            except Exception:
                return None
        if (
            expr.op == "+"
            and isinstance(right, A.Ident)
            and right.name == index_var
        ):
            try:
                return const_eval(left, params)
            except Exception:
                return None
    return None


def classify_primitive(
    expr: A.Expr,
    index_var: Optional[str],
    array_names: set[str],
    params: Mapping[str, int],
    scalar_locals: frozenset[str] = frozenset(),
) -> PEInfo:
    """Verify ``expr`` is a primitive expression on ``index_var``.

    ``array_names`` are the identifiers denoting arrays in scope (their
    appearance is only legal under rule 4); everything else identifiers
    may denote scalars (rule 2).  Raises :class:`ClassificationError`
    with the violated rule otherwise.
    """
    info = PEInfo()

    def visit(node: A.Expr, locals_: frozenset[str]) -> None:
        # rule (1): scalar literal
        if isinstance(node, A.Literal):
            return
        # rule (2): identifier of a scalar value
        if isinstance(node, A.Ident):
            if node.name in array_names and node.name not in locals_:
                raise ClassificationError(
                    f"array {node.name!r} used without selection at line "
                    f"{node.line} (rule 4 requires A[i+m])"
                )
            return
        # rule (3): (E1 op E2)
        if isinstance(node, A.BinOp):
            if node.op not in _ARITH_REL_BOOL:
                raise ClassificationError(
                    f"operator {node.op!r} not allowed in a primitive "
                    f"expression (line {node.line})"
                )
            visit(node.left, locals_)
            visit(node.right, locals_)
            return
        if isinstance(node, A.UnOp):
            visit(node.operand, locals_)
            return
        # max/min count as arithmetic operators (rule 3)
        if isinstance(node, A.Builtin):
            for arg in node.args:
                visit(arg, locals_)
            return
        # rule (4): A[i+m]
        if isinstance(node, A.Index):
            if not isinstance(node.base, A.Ident):
                raise ClassificationError(
                    f"array selection on a computed array at line {node.line}"
                )
            name = node.base.name
            if name in locals_:
                raise ClassificationError(
                    f"indexing let-bound scalar {name!r} at line {node.line}"
                )
            if index_var is None:
                raise ClassificationError(
                    f"array selection {name}[...] in a scalar-only context "
                    f"(line {node.line})"
                )
            offset = index_offset(node.index, index_var, params)
            if offset is None:
                raise ClassificationError(
                    f"selection index at line {node.line} is not of the form "
                    f"{index_var}+m with constant m (rule 4)"
                )
            info.accesses.append(ArrayAccess(name, offset))
            return
        # rule (5): let-in of PEs
        if isinstance(node, A.Let):
            inner = locals_
            for d in node.defs:
                if isinstance(d.type, A.ArrayType):
                    raise ClassificationError(
                        f"let binds array {d.name!r} at line {d.line}; "
                        f"primitive expressions bind scalars only"
                    )
                visit(d.expr, inner)
                inner = inner | {d.name}
            visit(node.body, inner)
            return
        # rule (6): if-then-else of PEs
        if isinstance(node, A.If):
            visit(node.cond, locals_)
            visit(node.then, locals_)
            visit(node.els, locals_)
            return
        raise ClassificationError(
            f"{type(node).__name__} at line {node.line} is not allowed in a "
            f"primitive expression (no nested forall/for-iter or array "
            f"constructors)"
        )

    visit(expr, scalar_locals)
    return info


def is_primitive_expr(
    expr: A.Expr,
    index_var: Optional[str],
    array_names: set[str],
    params: Mapping[str, int],
) -> bool:
    try:
        classify_primitive(expr, index_var, array_names, params)
        return True
    except ClassificationError:
        return False


def is_scalar_primitive_expr(
    expr: A.Expr, array_names: set[str], params: Mapping[str, int]
) -> bool:
    """Rules 1,2,3,5 only (no array selection)."""
    try:
        info = classify_primitive(expr, None, array_names, params)
        return info.is_scalar
    except ClassificationError:
        return False


# ---------------------------------------------------------------------------
# primitive forall (Section 6)
# ---------------------------------------------------------------------------


@dataclass
class ForallInfo:
    """A verified primitive forall expression."""

    var: str
    lo: int
    hi: int
    defs: list[A.Definition]
    accum: A.Expr
    accesses: list[ArrayAccess]

    @property
    def length(self) -> int:
        return self.hi - self.lo + 1


def classify_forall(
    node: A.Forall, array_names: set[str], params: Mapping[str, int]
) -> ForallInfo:
    """Check the Section 6 definition: constant index range; definition
    right-hand sides and the accumulation part all PEs on the index
    variable."""
    try:
        lo = const_eval(node.lo, params)
        hi = const_eval(node.hi, params)
    except Exception as exc:
        raise ClassificationError(
            f"forall range at line {node.line} is not compile-time constant: "
            f"{exc}"
        ) from None
    if lo > hi:
        raise ClassificationError(
            f"empty forall range [{lo},{hi}] at line {node.line}"
        )
    accesses: list[ArrayAccess] = []
    locals_: frozenset[str] = frozenset()
    for d in node.defs:
        if isinstance(d.type, A.ArrayType):
            raise ClassificationError(
                f"forall definition {d.name!r} binds an array at line {d.line}"
            )
        info = classify_primitive(d.expr, node.var, array_names, params, locals_)
        accesses.extend(info.accesses)
        locals_ = locals_ | {d.name}
    info = classify_primitive(node.accum, node.var, array_names, params, locals_)
    accesses.extend(info.accesses)
    return ForallInfo(node.var, lo, hi, list(node.defs), node.accum, accesses)


# ---------------------------------------------------------------------------
# primitive for-iter (Section 7)
# ---------------------------------------------------------------------------


@dataclass
class ForIterInfo:
    """A verified primitive for-iter construct.

    The construct denotes: ``X[r] = init``, and for ``i = lo .. hi``:
    ``X[i] = element_expr`` (which may reference ``X[i-1]`` and input
    arrays at offsets of ``i``).  ``final_append`` records whether the
    terminating arm also appends (paper Example 2 as written returns
    ``T`` without the last element; both forms are accepted).
    """

    counter: str
    counter_lo: int
    acc: str
    init_index: int
    init_expr: A.Expr
    element_expr: A.Expr
    elem_lo: int
    elem_hi: int
    final_append: bool
    let_defs: list[A.Definition]
    accesses: list[ArrayAccess]
    #: last counter value for which the loop *body* (and hence the
    #: definition part) is evaluated; equals elem_hi when the final arm
    #: appends, elem_hi + 1 for the paper-literal form whose last body
    #: evaluation computes definitions it never uses
    body_hi: int = 0

    @property
    def result_lo(self) -> int:
        return self.init_index

    @property
    def result_hi(self) -> int:
        return self.elem_hi

    @property
    def n_elements(self) -> int:
        """Computed (non-initial) elements."""
        return self.elem_hi - self.elem_lo + 1


def _ast_equal(a: A.Node, b: A.Node) -> bool:
    """Structural AST equality ignoring source positions."""
    if type(a) is not type(b):
        return False
    if isinstance(a, A.Literal):
        return a.value == b.value and a.type == b.type  # type: ignore[union-attr]
    if isinstance(a, A.Ident):
        return a.name == b.name  # type: ignore[union-attr]
    if isinstance(a, A.BinOp):
        return a.op == b.op and _ast_equal(a.left, b.left) and _ast_equal(
            a.right, b.right
        )  # type: ignore[union-attr]
    if isinstance(a, A.UnOp):
        return a.op == b.op and _ast_equal(a.operand, b.operand)  # type: ignore[union-attr]
    ca, cb = A.children(a), A.children(b)
    if len(ca) != len(cb):
        return False
    if isinstance(a, A.Definition) and (
        a.name != b.name or a.type != b.type  # type: ignore[union-attr]
    ):
        return False
    if isinstance(a, (A.Assign, A.Builtin)) and a.name != b.name:  # type: ignore[union-attr]
        return False
    return all(_ast_equal(x, y) for x, y in zip(ca, cb))


def classify_foriter(
    node: A.ForIter, array_names: set[str], params: Mapping[str, int]
) -> ForIterInfo:
    """Check the Section 7 definition of a *primitive for-iter*.

    Required shape (Example 2)::

        for i : integer := p;  X : array[real] := [r: E0]
        do  [ let <scalar PE defs> in ]
            if i < q  then iter X := X[i: E]; i := i + 1 enditer
            else  X  |  X[i: E]
            endif
        [ endlet ]
        endfor

    with E0 a scalar PE and E a PE on i (it may reference X[i-1]).
    """
    # -- loop initialization -------------------------------------------------
    if len(node.inits) != 2:
        raise ClassificationError(
            f"primitive for-iter needs exactly two loop names (index and "
            f"accumulator), found {len(node.inits)} at line {node.line}"
        )
    counter_def = acc_def = None
    for d in node.inits:
        if isinstance(d.type, A.ArrayType):
            acc_def = d
        else:
            counter_def = d
    if counter_def is None or acc_def is None:
        raise ClassificationError(
            f"for-iter at line {node.line} must bind one integer index and "
            f"one array accumulator"
        )
    try:
        counter_lo = const_eval(counter_def.expr, params)
    except Exception:
        raise ClassificationError(
            f"loop index initial value at line {counter_def.line} is not a "
            f"compile-time constant"
        ) from None
    if not isinstance(acc_def.expr, A.ArrayLit):
        raise ClassificationError(
            f"accumulator {acc_def.name!r} must be initialized with [r: E] "
            f"at line {acc_def.line}"
        )
    try:
        init_index = const_eval(acc_def.expr.index, params)
    except Exception:
        raise ClassificationError(
            f"accumulator initial index at line {acc_def.line} is not a "
            f"compile-time constant"
        ) from None
    init_expr = acc_def.expr.value
    init_info = classify_primitive(init_expr, None, array_names, params)
    if not init_info.is_scalar:
        raise ClassificationError(
            f"accumulator initial value at line {acc_def.line} must be a "
            f"scalar primitive expression"
        )
    counter = counter_def.name
    acc = acc_def.name

    # -- body ---------------------------------------------------------------
    body = node.body
    let_defs: list[A.Definition] = []
    if isinstance(body, A.Let):
        let_defs = list(body.defs)
        body = body.body
    if not isinstance(body, A.If):
        raise ClassificationError(
            f"for-iter body at line {node.line} must be a conditional"
        )
    cond, then, els = body.cond, body.then, body.els

    # termination condition: counter < q or counter <= q
    if not (
        isinstance(cond, A.BinOp)
        and cond.op in ("<", "<=")
        and isinstance(cond.left, A.Ident)
        and cond.left.name == counter
    ):
        raise ClassificationError(
            f"loop condition at line {cond.line} must be "
            f"'{counter} < q' or '{counter} <= q' with constant q"
        )
    try:
        bound = const_eval(cond.right, params)
    except Exception:
        raise ClassificationError(
            f"loop bound at line {cond.line} is not a compile-time constant"
        ) from None
    # first counter value for which the condition is false:
    last = bound if cond.op == "<" else bound + 1

    if not isinstance(then, A.Iter):
        raise ClassificationError(
            f"the true arm of the loop conditional at line {body.line} must "
            f"be an iter clause"
        )
    # iter assigns: acc := acc[counter: E]; counter := counter + 1
    elem_expr: Optional[A.Expr] = None
    counter_ok = False
    for assign in then.assigns:
        if assign.name == acc:
            e = assign.expr
            if not (
                isinstance(e, A.ArrayAppend)
                and isinstance(e.base, A.Ident)
                and e.base.name == acc
                and index_offset(e.index, counter, params) == 0
            ):
                raise ClassificationError(
                    f"iter must append with {acc} := {acc}[{counter}: E] "
                    f"at line {assign.line}"
                )
            elem_expr = e.value
        elif assign.name == counter:
            e = assign.expr
            if index_offset(e, counter, params) != 1:
                raise ClassificationError(
                    f"iter must advance with {counter} := {counter} + 1 "
                    f"at line {assign.line}"
                )
            counter_ok = True
        else:
            raise ClassificationError(
                f"iter rebinds unknown name {assign.name!r} at line "
                f"{assign.line}"
            )
    if elem_expr is None or not counter_ok:
        raise ClassificationError(
            f"iter clause at line {then.line} must rebind both {acc!r} "
            f"and {counter!r}"
        )

    # terminating arm: X (no final append) or X[counter: E] (final append)
    if isinstance(els, A.Ident) and els.name == acc:
        final_append = False
    elif (
        isinstance(els, A.ArrayAppend)
        and isinstance(els.base, A.Ident)
        and els.base.name == acc
        and index_offset(els.index, counter, params) == 0
        and _ast_equal(els.value, elem_expr)
    ):
        final_append = True
    else:
        raise ClassificationError(
            f"terminating arm at line {els.line} must be {acc} or "
            f"{acc}[{counter}: E] with the same E as the iter arm"
        )

    elem_lo = counter_lo
    elem_hi = last if final_append else last - 1
    if elem_hi < elem_lo:
        raise ClassificationError(
            f"for-iter at line {node.line} computes no elements "
            f"(range [{elem_lo},{elem_hi}])"
        )
    if init_index != counter_lo - 1:
        raise ClassificationError(
            f"accumulator initial index {init_index} must be {counter_lo - 1} "
            f"so the result array is contiguous (line {acc_def.line})"
        )

    # The element expression must be a PE on the counter; the accumulator
    # X counts as an array name there (X[i-1] is a rule-4 access).
    locals_ = frozenset()
    accesses: list[ArrayAccess] = []
    for d in let_defs:
        if isinstance(d.type, A.ArrayType):
            raise ClassificationError(
                f"for-iter definition {d.name!r} binds an array at line {d.line}"
            )
        info = classify_primitive(
            d.expr, counter, array_names | {acc}, params, locals_
        )
        accesses.extend(info.accesses)
        locals_ = locals_ | {d.name}
    info = classify_primitive(
        elem_expr, counter, array_names | {acc}, params, locals_
    )
    accesses.extend(info.accesses)
    for access in accesses:
        if access.array == acc and access.offset != -1:
            raise ClassificationError(
                f"accumulator access {acc}[{counter}{access.offset:+d}] is "
                f"not first-order; only {acc}[{counter}-1] is allowed"
            )

    return ForIterInfo(
        counter=counter,
        counter_lo=counter_lo,
        acc=acc,
        init_index=init_index,
        init_expr=init_expr,
        element_expr=elem_expr,
        elem_lo=elem_lo,
        elem_hi=elem_hi,
        final_append=final_append,
        let_defs=let_defs,
        accesses=accesses,
        body_hi=last,
    )
