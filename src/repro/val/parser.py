"""Recursive-descent parser for the Val subset.

Grammar (see :mod:`repro.val.ast_nodes` for the AST it builds)::

    program    := { blockdef }
    blockdef   := IDENT ':' type ':=' expr [';']
    type       := 'real' | 'integer' | 'boolean' | 'array' '[' type ']'
    expr       := orexpr
    orexpr     := andexpr { '|' andexpr }
    andexpr    := relexpr { '&' relexpr }
    relexpr    := addexpr [ ('<'|'<='|'>'|'>='|'='|'~=') addexpr ]
    addexpr    := mulexpr { ('+'|'-') mulexpr }
    mulexpr    := unary { ('*'|'/') unary }
    unary      := ('-'|'~') unary | postfix
    postfix    := primary { '[' expr [':' expr] ']' }
    primary    := INT | REAL | 'true' | 'false' | IDENT | '(' expr ')'
                | letexpr | ifexpr | forallexpr | foriterexpr | iterexpr
                | '[' expr ':' expr ']'
    letexpr    := 'let' defs 'in' expr 'endlet'
    defs       := def { ';' def } [';']
    def        := IDENT ':' type ':=' expr
    ifexpr     := 'if' expr 'then' expr { 'elseif' expr 'then' expr }
                  'else' expr 'endif'
    forallexpr := 'forall' IDENT 'in' '[' expr ',' expr ']'
                  [defs] 'construct' expr 'endall'
    foriterexpr:= 'for' defs 'do' expr 'endfor'
    iterexpr   := 'iter' IDENT ':=' expr { ';' IDENT ':=' expr } [';'] 'enditer'

``A[i]`` parses as :class:`Index`; ``A[i: e]`` as :class:`ArrayAppend`;
a bare ``[r: e]`` as :class:`ArrayLit`.
"""

from __future__ import annotations

from ..errors import ValSyntaxError
from . import ast_nodes as A
from .lexer import Token, tokenize

_REL_OPS = {"<", "<=", ">", ">=", "=", "~="}
_SCALAR_TYPES = {"real": A.REAL, "integer": A.INTEGER, "boolean": A.BOOLEAN}

#: Tokens that may begin an expression (used to decide whether a
#: definition list has ended).
_EXPR_STARTERS = {
    "INT",
    "REAL",
    "IDENT",
    "true",
    "false",
    "LPAREN",
    "LBRACK",
    "let",
    "if",
    "forall",
    "for",
    "iter",
}


class Parser:
    def __init__(self, source: str) -> None:
        self.tokens = tokenize(source)
        self.pos = 0

    # -- token plumbing ---------------------------------------------------
    @property
    def cur(self) -> Token:
        return self.tokens[self.pos]

    def peek(self, offset: int = 1) -> Token:
        idx = min(self.pos + offset, len(self.tokens) - 1)
        return self.tokens[idx]

    def advance(self) -> Token:
        tok = self.cur
        if tok.kind != "EOF":
            self.pos += 1
        return tok

    def expect(self, kind: str, what: str = "") -> Token:
        if self.cur.kind != kind:
            expected = what or kind
            raise ValSyntaxError(
                f"expected {expected}, found {self.cur.text or self.cur.kind!r}",
                self.cur.line,
                self.cur.column,
            )
        return self.advance()

    def accept(self, kind: str) -> bool:
        if self.cur.kind == kind:
            self.advance()
            return True
        return False

    def accept_op(self, text: str) -> bool:
        if self.cur.kind == "OP" and self.cur.text == text:
            self.advance()
            return True
        return False

    def expect_op(self, text: str) -> Token:
        if not (self.cur.kind == "OP" and self.cur.text == text):
            raise ValSyntaxError(
                f"expected {text!r}, found {self.cur.text or self.cur.kind!r}",
                self.cur.line,
                self.cur.column,
            )
        return self.advance()

    def _pos_of(self, tok: Token) -> dict:
        return {"line": tok.line, "column": tok.column}

    # -- entry points -------------------------------------------------------
    def parse_program(self) -> A.Program:
        first = self.cur
        blocks = []
        while self.cur.kind != "EOF":
            blocks.append(self.parse_blockdef())
            self.accept("SEMI")
        if not blocks:
            raise ValSyntaxError("empty program", first.line, first.column)
        return A.Program(blocks, **self._pos_of(first))

    def parse_blockdef(self) -> A.BlockDef:
        name_tok = self.expect("IDENT", "block name")
        self.expect("COLON")
        btype = self.parse_type()
        self._expect_assign()
        expr = self.parse_expr()
        return A.BlockDef(name_tok.text, btype, expr, **self._pos_of(name_tok))

    def _expect_assign(self) -> None:
        if not self.accept_op(":="):
            raise ValSyntaxError(
                f"expected ':=', found {self.cur.text or self.cur.kind!r}",
                self.cur.line,
                self.cur.column,
            )

    def parse_type(self) -> A.ValType:
        tok = self.cur
        if tok.kind in _SCALAR_TYPES:
            self.advance()
            return _SCALAR_TYPES[tok.kind]
        if tok.kind == "array":
            self.advance()
            self.expect("LBRACK")
            elem = self.parse_type()
            self.expect("RBRACK")
            if not isinstance(elem, A.ScalarType):
                raise ValSyntaxError(
                    "nested array types are outside the paper's class",
                    tok.line,
                    tok.column,
                )
            return A.ArrayType(elem)
        raise ValSyntaxError(
            f"expected a type, found {tok.text or tok.kind!r}", tok.line, tok.column
        )

    # -- expression levels ----------------------------------------------------
    def parse_expr(self) -> A.Expr:
        return self.parse_or()

    def _binop_level(self, sub, ops: set[str]) -> A.Expr:
        left = sub()
        while self.cur.kind == "OP" and self.cur.text in ops:
            op_tok = self.advance()
            right = sub()
            left = A.BinOp(op_tok.text, left, right, **self._pos_of(op_tok))
        return left

    def parse_or(self) -> A.Expr:
        return self._binop_level(self.parse_and, {"|"})

    def parse_and(self) -> A.Expr:
        return self._binop_level(self.parse_rel, {"&"})

    def parse_rel(self) -> A.Expr:
        left = self.parse_add()
        if self.cur.kind == "OP" and self.cur.text in _REL_OPS:
            op_tok = self.advance()
            right = self.parse_add()
            return A.BinOp(op_tok.text, left, right, **self._pos_of(op_tok))
        return left

    def parse_add(self) -> A.Expr:
        return self._binop_level(self.parse_mul, {"+", "-"})

    def parse_mul(self) -> A.Expr:
        return self._binop_level(self.parse_unary, {"*", "/"})

    def parse_unary(self) -> A.Expr:
        if self.cur.kind == "OP" and self.cur.text in ("-", "~"):
            op_tok = self.advance()
            operand = self.parse_unary()
            return A.UnOp(op_tok.text, operand, **self._pos_of(op_tok))
        return self.parse_postfix()

    def parse_postfix(self) -> A.Expr:
        expr = self.parse_primary()
        while self.cur.kind == "LBRACK":
            lb = self.advance()
            index = self.parse_expr()
            if self.accept("COLON"):
                value = self.parse_expr()
                self.expect("RBRACK")
                expr = A.ArrayAppend(expr, index, value, **self._pos_of(lb))
            elif self.cur.kind == "COMMA":
                indices = [index]
                while self.accept("COMMA"):
                    indices.append(self.parse_expr())
                self.expect("RBRACK")
                expr = A.IndexND(expr, indices, **self._pos_of(lb))
            else:
                self.expect("RBRACK")
                expr = A.Index(expr, index, **self._pos_of(lb))
        return expr

    def parse_primary(self) -> A.Expr:
        tok = self.cur
        if tok.kind == "INT":
            self.advance()
            return A.Literal(int(tok.text), A.INTEGER, **self._pos_of(tok))
        if tok.kind == "REAL":
            text = tok.text
            self.advance()
            return A.Literal(float(text), A.REAL, **self._pos_of(tok))
        if tok.kind in ("true", "false"):
            self.advance()
            return A.Literal(tok.kind == "true", A.BOOLEAN, **self._pos_of(tok))
        if tok.kind == "IDENT":
            self.advance()
            if tok.text in ("max", "min") and self.cur.kind == "LPAREN":
                self.advance()
                args = [self.parse_expr()]
                while self.accept("COMMA"):
                    args.append(self.parse_expr())
                self.expect("RPAREN")
                if len(args) < 2:
                    raise ValSyntaxError(
                        f"{tok.text} needs at least two arguments",
                        tok.line,
                        tok.column,
                    )
                # n-ary max/min folds to nested binary applications
                expr: A.Expr = args[0]
                for arg in args[1:]:
                    expr = A.Builtin(tok.text, [expr, arg], **self._pos_of(tok))
                return expr
            return A.Ident(tok.text, **self._pos_of(tok))
        if tok.kind == "LPAREN":
            self.advance()
            expr = self.parse_expr()
            self.expect("RPAREN")
            return expr
        if tok.kind == "LBRACK":
            # array literal [index: value]
            self.advance()
            index = self.parse_expr()
            self.expect("COLON", "':' of an array constructor")
            value = self.parse_expr()
            self.expect("RBRACK")
            return A.ArrayLit(index, value, **self._pos_of(tok))
        if tok.kind == "let":
            return self.parse_let()
        if tok.kind == "if":
            return self.parse_if()
        if tok.kind == "forall":
            return self.parse_forall()
        if tok.kind == "for":
            return self.parse_foriter()
        if tok.kind == "iter":
            return self.parse_iter()
        raise ValSyntaxError(
            f"expected an expression, found {tok.text or tok.kind!r}",
            tok.line,
            tok.column,
        )

    # -- structured constructs ----------------------------------------------
    def parse_definitions(self) -> list[A.Definition]:
        """``IDENT ':' type ':=' expr`` list separated by ';'."""
        defs = [self.parse_definition()]
        while True:
            if self.cur.kind == "SEMI":
                nxt = self.peek()
                nxt2 = self.peek(2)
                # A following definition looks like "IDENT : type".
                if nxt.kind == "IDENT" and nxt2.kind == "COLON":
                    self.advance()
                    defs.append(self.parse_definition())
                    continue
                # trailing semicolon before in/do/construct
                self.advance()
            break
        return defs

    def parse_definition(self) -> A.Definition:
        name_tok = self.expect("IDENT", "definition name")
        self.expect("COLON")
        dtype = self.parse_type()
        self._expect_assign()
        expr = self.parse_expr()
        return A.Definition(name_tok.text, dtype, expr, **self._pos_of(name_tok))

    def parse_let(self) -> A.Let:
        let_tok = self.expect("let")
        defs = self.parse_definitions()
        self.expect("in")
        body = self.parse_expr()
        self.expect("endlet")
        return A.Let(defs, body, **self._pos_of(let_tok))

    def parse_if(self) -> A.If:
        if_tok = self.expect("if")
        cond = self.parse_expr()
        self.expect("then")
        then = self.parse_expr()
        arms = [(cond, then)]
        while self.accept("elseif"):
            c2 = self.parse_expr()
            self.expect("then")
            t2 = self.parse_expr()
            arms.append((c2, t2))
        self.expect("else")
        els = self.parse_expr()
        self.expect("endif")
        for c, t in reversed(arms):
            els = A.If(c, t, els, **self._pos_of(if_tok))
        return els  # type: ignore[return-value]

    def parse_forall(self) -> A.Expr:
        fa_tok = self.expect("forall")
        ranges = [self._parse_range_spec()]
        # further ranges make a multidimensional forall (Section 9)
        while (
            self.cur.kind == "SEMI"
            and self.peek().kind == "IDENT"
            and self.peek(2).kind == "in"
        ):
            self.advance()
            ranges.append(self._parse_range_spec())
        defs: list[A.Definition] = []
        if self.cur.kind == "IDENT" and self.peek().kind == "COLON":
            defs = self.parse_definitions()
        self.expect("construct")
        accum = self.parse_expr()
        self.expect("endall")
        if len(ranges) == 1:
            r = ranges[0]
            return A.Forall(r.var, r.lo, r.hi, defs, accum, **self._pos_of(fa_tok))
        return A.ForallND(ranges, defs, accum, **self._pos_of(fa_tok))

    def _parse_range_spec(self) -> A.RangeSpec:
        var_tok = self.expect("IDENT", "forall index variable")
        self.expect("in")
        self.expect("LBRACK")
        lo = self.parse_expr()
        self.expect("COMMA")
        hi = self.parse_expr()
        self.expect("RBRACK")
        return A.RangeSpec(var_tok.text, lo, hi, **self._pos_of(var_tok))

    def parse_foriter(self) -> A.ForIter:
        for_tok = self.expect("for")
        inits = self.parse_definitions()
        self.expect("do")
        body = self.parse_expr()
        self.expect("endfor")
        return A.ForIter(inits, body, **self._pos_of(for_tok))

    def parse_iter(self) -> A.Iter:
        iter_tok = self.expect("iter")
        assigns = []
        while True:
            name_tok = self.expect("IDENT", "loop name")
            self._expect_assign()
            expr = self.parse_expr()
            assigns.append(A.Assign(name_tok.text, expr, **self._pos_of(name_tok)))
            if self.accept("SEMI"):
                if self.cur.kind == "enditer":
                    break
                continue
            break
        self.expect("enditer")
        return A.Iter(assigns, **self._pos_of(iter_tok))


def parse_program(source: str) -> A.Program:
    """Parse a multi-block Val program."""
    return Parser(source).parse_program()


def parse_expression(source: str) -> A.Expr:
    """Parse a single Val expression (tests and the REPL-style API)."""
    p = Parser(source)
    expr = p.parse_expr()
    p.expect("EOF")
    return expr
