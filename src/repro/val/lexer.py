"""Lexer for the Val subset.

Tokenizes the concrete syntax used in the paper's examples: keywords,
identifiers, integer/real literals, the operator set, brackets, and
``%``-to-end-of-line comments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from ..errors import ValSyntaxError

KEYWORDS = frozenset(
    {
        "let",
        "in",
        "endlet",
        "if",
        "then",
        "elseif",
        "else",
        "endif",
        "forall",
        "construct",
        "endall",
        "for",
        "do",
        "iter",
        "enditer",
        "endfor",
        "array",
        "real",
        "integer",
        "boolean",
        "true",
        "false",
    }
)

#: Multi-character operators, longest first.
_OPERATORS = [":=", "<=", ">=", "~=", "<", ">", "=", "+", "-", "*", "/", "&", "|", "~"]

_PUNCT = {"(": "LPAREN", ")": "RPAREN", "[": "LBRACK", "]": "RBRACK",
          ",": "COMMA", ";": "SEMI", ":": "COLON"}


@dataclass(frozen=True)
class Token:
    kind: str          # 'IDENT', 'INT', 'REAL', 'OP', keyword name, punct name, 'EOF'
    text: str
    line: int
    column: int

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.kind},{self.text!r}@{self.line}:{self.column})"


def tokenize(source: str) -> list[Token]:
    """Turn Val source text into a token list ending with an EOF token."""
    return list(_scan(source))


def _scan(source: str) -> Iterator[Token]:
    i = 0
    line = 1
    col = 1
    n = len(source)

    def tok(kind: str, text: str) -> Token:
        return Token(kind, text, line, col)

    while i < n:
        ch = source[i]
        # whitespace ------------------------------------------------------
        if ch == "\n":
            i += 1
            line += 1
            col = 1
            continue
        if ch in " \t\r":
            i += 1
            col += 1
            continue
        # comments ---------------------------------------------------------
        if ch == "%":
            while i < n and source[i] != "\n":
                i += 1
            continue
        # numbers -----------------------------------------------------------
        if ch.isdigit() or (ch == "." and i + 1 < n and source[i + 1].isdigit()):
            start = i
            seen_dot = False
            seen_exp = False
            while i < n:
                c = source[i]
                if c.isdigit():
                    i += 1
                elif c == "." and not seen_dot and not seen_exp:
                    # A trailing '.' (as in "2.") is part of the literal.
                    seen_dot = True
                    i += 1
                elif c in "eE" and not seen_exp and i > start:
                    nxt = source[i + 1] if i + 1 < n else ""
                    if nxt.isdigit() or (
                        nxt in "+-" and i + 2 < n and source[i + 2].isdigit()
                    ):
                        seen_exp = True
                        i += 2 if nxt in "+-" else 1
                    else:
                        break
                else:
                    break
            text = source[start:i]
            kind = "REAL" if (seen_dot or seen_exp) else "INT"
            yield tok(kind, text)
            col += i - start
            continue
        # identifiers / keywords ---------------------------------------------
        if ch.isalpha() or ch == "_":
            start = i
            while i < n and (source[i].isalnum() or source[i] == "_"):
                i += 1
            text = source[start:i]
            kind = text if text in KEYWORDS else "IDENT"
            yield tok(kind, text)
            col += i - start
            continue
        # operators (':=' before ':') ----------------------------------------
        matched = False
        for op in _OPERATORS:
            if source.startswith(op, i):
                yield tok("OP", op)
                i += len(op)
                col += len(op)
                matched = True
                break
        if matched:
            continue
        # punctuation ----------------------------------------------------------
        if ch in _PUNCT:
            yield tok(_PUNCT[ch], ch)
            i += 1
            col += 1
            continue
        raise ValSyntaxError(f"unexpected character {ch!r}", line, col)
    yield Token("EOF", "", line, col)
