"""Runtime values for the Val reference interpreter.

Val arrays have an explicit lower index bound; :class:`ValArray` keeps
``lo`` plus a dense element list, supports the applicative constructor
operations the paper uses (``[r: E]`` and ``X[i: E]``), and converts to
and from the plain Python lists the simulators stream.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator, Sequence

from ..errors import SimulationError


@dataclass(frozen=True)
class ValArray:
    """An immutable Val array value with index range ``[lo, hi]``."""

    lo: int
    elements: tuple[Any, ...] = field(default_factory=tuple)

    # -- construction ----------------------------------------------------
    @staticmethod
    def singleton(index: int, value: Any) -> "ValArray":
        """The ``[index: value]`` array constructor."""
        return ValArray(index, (value,))

    @staticmethod
    def from_list(values: Sequence[Any], lo: int = 0) -> "ValArray":
        return ValArray(lo, tuple(values))

    # -- bounds ------------------------------------------------------------
    @property
    def hi(self) -> int:
        return self.lo + len(self.elements) - 1

    @property
    def bounds(self) -> tuple[int, int]:
        return (self.lo, self.hi)

    def __len__(self) -> int:
        return len(self.elements)

    # -- access --------------------------------------------------------------
    def get(self, index: int) -> Any:
        if not self.lo <= index <= self.hi:
            raise SimulationError(
                f"array index {index} outside bounds [{self.lo},{self.hi}]"
            )
        return self.elements[index - self.lo]

    def __iter__(self) -> Iterator[Any]:
        return iter(self.elements)

    def to_list(self) -> list[Any]:
        return list(self.elements)

    def indices(self) -> range:
        return range(self.lo, self.hi + 1)

    # -- applicative update ----------------------------------------------------
    def append(self, index: int, value: Any) -> "ValArray":
        """The ``X[i: v]`` constructor: replace element ``i`` or extend
        the range by exactly one at either end."""
        if len(self.elements) == 0:
            return ValArray.singleton(index, value)
        if self.lo <= index <= self.hi:
            pos = index - self.lo
            elems = self.elements[:pos] + (value,) + self.elements[pos + 1:]
            return ValArray(self.lo, elems)
        if index == self.hi + 1:
            return ValArray(self.lo, self.elements + (value,))
        if index == self.lo - 1:
            return ValArray(index, (value,) + self.elements)
        raise SimulationError(
            f"array extension at {index} not adjacent to [{self.lo},{self.hi}]"
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = ", ".join(repr(e) for e in self.elements[:6])
        if len(self.elements) > 6:
            inner += ", ..."
        return f"ValArray[{self.lo}..{self.hi}]({inner})"


class IterSignal:
    """Interpreter-internal value of an ``iter`` clause: new bindings
    for the loop names (drives the for-iter loop)."""

    __slots__ = ("bindings",)

    def __init__(self, bindings: dict[str, Any]) -> None:
        self.bindings = bindings
