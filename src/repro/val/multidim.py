"""Multidimensional arrays by lowering (the paper's Section 9 remark).

    "The extension of this work to array values of multiple dimension
    is straightforward."

It is: a multidimensional array is its row-major flattened stream, and
a multidimensional forall is a 1-D forall over the flattened iteration
space.  This module performs that lowering on the AST, after which the
paper's 1-D machinery (classification, mapping schemes, balancing,
simulation, the interpreter) applies unchanged:

* ``forall i in [a,b]; j in [c,d] construct E endall`` becomes
  ``forall k in [0, R*C-1] construct E' endall`` with ``R = b-a+1``,
  ``C = d-c+1``;
* inside ``E'``, value uses of ``i``/``j`` become ``a + k/C`` and
  ``c + (k - (k/C)*C)`` (compile-time foldable, since ``k``'s values
  are known);
* a selection ``M[i+di, j+dj]`` of an input with column range exactly
  ``[c, d]`` becomes the *constant-offset* flat selection
  ``M[k + ((a+di) - rlo)*C + dj]`` -- rule 4 again, so the gating and
  skew machinery of Section 5 carries over verbatim.

Input shapes are declared as ``{'M': ((rlo, rhi), (clo, chi))}``.  The
column range of every 2-D input must equal the forall's column range
(row halo is fine; column halo would break the constant-offset form --
guard column boundaries with compile-time conditionals instead, exactly
like Example 1 guards its 1-D boundaries).

Throughput note (measured; see ``benchmarks/bench_multidim.py``):
elementwise 2-D maps run at the 1-D maximum (II = 2); single-axis
guarded stencils run close to it (II ~2.1-2.3).  The 4-neighbour
boundary-guarded stencil sustains a stable II ~3: at row transitions
the merge switches between its boundary and interior arms while the
interior arm's deep row-buffer skews keep the shared input stream
locked to a zero-slack schedule, and the resulting periodic pipeline
drains persist under every buffer-placement strategy we tried (input-
vs output-side FIFOs, uniform margins, dedicated merge controls).
Full-rate 2-D boundary stencils appear to need a different code shape
(e.g. splitting boundary rows/columns into separate blocks) -- a
genuine subtlety hiding inside the paper's "the extension ... is
straightforward" remark.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Any, Mapping, Optional, Sequence

from ..errors import CompileError
from . import ast_nodes as A
from .interpreter import const_eval

Shape2D = tuple[tuple[int, int], tuple[int, int]]


def _int_lit(value: int) -> A.Literal:
    return A.Literal(value, A.INTEGER)


def lower_expr_2d(
    expr: A.Expr,
    k: str,
    row: tuple[str, int],       # (var name, lo) of the row dimension
    col: tuple[str, int, int],  # (var name, lo, width) of the column dim
    shapes: Mapping[str, Shape2D],
    params: Mapping[str, int],
) -> A.Expr:
    """Rewrite a 2-D forall body onto the flat index variable ``k``."""
    i_name, i_lo = row
    j_name, j_lo, width = col

    def i_value() -> A.Expr:
        # i = i_lo + k / C
        quot = A.BinOp("/", A.Ident(k), _int_lit(width))
        return quot if i_lo == 0 else A.BinOp("+", _int_lit(i_lo), quot)

    def j_value() -> A.Expr:
        # j = j_lo + k - (k/C)*C
        quot = A.BinOp("/", A.Ident(k), _int_lit(width))
        rem = A.BinOp(
            "-", A.Ident(k), A.BinOp("*", quot, _int_lit(width))
        )
        return rem if j_lo == 0 else A.BinOp("+", _int_lit(j_lo), rem)

    def flat_offset(name: str, di: int, dj: int, line: int) -> int:
        if name not in shapes:
            raise CompileError(
                f"2-D selection of {name!r} at line {line} needs its shape "
                f"in array_shapes="
            )
        (rlo, _rhi), (clo, chi) = shapes[name]
        if clo != j_lo or chi - clo + 1 != width:
            raise CompileError(
                f"2-D input {name!r} has column range [{clo},{chi}] but the "
                f"forall iterates columns [{j_lo},{j_lo + width - 1}]; "
                f"column ranges must match (guard boundaries with "
                f"conditionals instead of halo columns)"
            )
        return (i_lo + di - rlo) * width + (dj + j_lo - clo)

    def offset_of(index: A.Expr, var: str, line: int) -> int:
        from .classify import index_offset

        off = index_offset(index, var, params)
        if off is None:
            raise CompileError(
                f"2-D selection index at line {line} must be {var}+const"
            )
        return off

    bound = {k}

    def walk(e: A.Expr, locals_: frozenset[str]) -> A.Expr:
        if isinstance(e, A.Ident):
            if e.name == i_name and e.name not in locals_:
                return i_value()
            if e.name == j_name and e.name not in locals_:
                return j_value()
            return e
        if isinstance(e, A.Literal):
            return e
        if isinstance(e, A.IndexND):
            if len(e.indices) != 2:
                raise CompileError(
                    f"only 2-D selections are supported (line {e.line})"
                )
            if not isinstance(e.base, A.Ident):
                raise CompileError(
                    f"computed array base at line {e.line}"
                )
            di = offset_of(e.indices[0], i_name, e.line)
            dj = offset_of(e.indices[1], j_name, e.line)
            flat = flat_offset(e.base.name, di, dj, e.line)
            if flat == 0:
                idx: A.Expr = A.Ident(k)
            else:
                op = "+" if flat > 0 else "-"
                idx = A.BinOp(op, A.Ident(k), _int_lit(abs(flat)))
            return A.Index(e.base, idx, line=e.line)
        if isinstance(e, A.Index):
            raise CompileError(
                f"1-D selection inside a 2-D forall at line {e.line}; "
                f"use M[i, j] selections"
            )
        if isinstance(e, A.BinOp):
            return A.BinOp(e.op, walk(e.left, locals_), walk(e.right, locals_))
        if isinstance(e, A.UnOp):
            return A.UnOp(e.op, walk(e.operand, locals_))
        if isinstance(e, A.Builtin):
            return A.Builtin(e.name, [walk(a, locals_) for a in e.args])
        if isinstance(e, A.If):
            return A.If(
                walk(e.cond, locals_),
                walk(e.then, locals_),
                walk(e.els, locals_),
            )
        if isinstance(e, A.Let):
            inner = locals_
            defs = []
            for d in e.defs:
                defs.append(
                    A.Definition(d.name, d.type, walk(d.expr, inner))
                )
                inner = inner | {d.name}
            return A.Let(defs, walk(e.body, inner))
        raise CompileError(
            f"{type(e).__name__} at line {getattr(e, 'line', 0)} is not "
            f"supported inside a 2-D forall"
        )

    _ = bound
    return walk(expr, frozenset())


def lower_forall_nd(
    node: A.ForallND,
    shapes: Mapping[str, Shape2D],
    params: Mapping[str, int],
    flat_var: str = "_k",
) -> A.Forall:
    """Lower a 2-D forall to the flat 1-D forall (row-major)."""
    if len(node.ranges) != 2:
        raise CompileError(
            f"only 2-D foralls are supported, got {len(node.ranges)} "
            f"dimensions at line {node.line}"
        )
    ri, rj = node.ranges
    i_lo, i_hi = const_eval(ri.lo, params), const_eval(ri.hi, params)
    j_lo, j_hi = const_eval(rj.lo, params), const_eval(rj.hi, params)
    if i_lo > i_hi or j_lo > j_hi:
        raise CompileError(f"empty 2-D range at line {node.line}")
    rows, cols = i_hi - i_lo + 1, j_hi - j_lo + 1

    row = (ri.var, i_lo)
    col = (rj.var, j_lo, cols)
    defs = []
    for d in node.defs:
        defs.append(
            A.Definition(
                d.name,
                d.type,
                lower_expr_2d(d.expr, flat_var, row, col, shapes, params),
            )
        )
    accum = lower_expr_2d(node.accum, flat_var, row, col, shapes, params)
    return A.Forall(
        flat_var,
        _int_lit(0),
        _int_lit(rows * cols - 1),
        defs,
        accum,
        line=node.line,
    )


def lower_program(
    program: A.Program,
    params: Mapping[str, int],
    array_shapes: Optional[Mapping[str, Shape2D]] = None,
) -> A.Program:
    """Lower every multidimensional forall block of a program.

    Blocks producing 2-D arrays are consumable by later 2-D blocks: a
    produced block's shape is its iteration space.
    """
    shapes: dict[str, Shape2D] = dict(array_shapes or {})
    blocks = []
    for block in program.blocks:
        expr = block.expr
        if isinstance(expr, A.ForallND):
            if len(expr.ranges) == 2:
                ri, rj = expr.ranges
                shapes[block.name] = (
                    (const_eval(ri.lo, params), const_eval(ri.hi, params)),
                    (const_eval(rj.lo, params), const_eval(rj.hi, params)),
                )
            lowered = lower_forall_nd(expr, shapes, params)
            blocks.append(replace(block, expr=lowered))
        else:
            for n in A.walk(expr):
                if isinstance(n, (A.ForallND, A.IndexND)):
                    raise CompileError(
                        f"multidimensional construct at line {n.line} outside "
                        f"a top-level 2-D forall block"
                    )
            blocks.append(block)
    return A.Program(blocks, line=program.line)


# ---------------------------------------------------------------------------
# host-side helpers
# ---------------------------------------------------------------------------


def flatten2d(rows: Sequence[Sequence[Any]]) -> list[Any]:
    """Row-major flattening of a matrix into the stream the compiled
    code consumes."""
    widths = {len(r) for r in rows}
    if len(widths) > 1:
        raise CompileError("ragged 2-D input")
    return [v for row in rows for v in row]


def unflatten2d(values: Sequence[Any], n_cols: int) -> list[list[Any]]:
    """Inverse of :func:`flatten2d`."""
    if n_cols <= 0 or len(values) % n_cols:
        raise CompileError(
            f"cannot reshape {len(values)} values into rows of {n_cols}"
        )
    return [list(values[r: r + n_cols]) for r in range(0, len(values), n_cols)]
