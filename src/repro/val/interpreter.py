"""Reference interpreter for the Val subset.

The interpreter defines the *semantics* every compiled machine-level
program is checked against: the integration tests compile each program
block with the paper's mapping schemes, simulate the instruction graph,
and require the streamed results to equal what this interpreter
computes directly from the source.
"""

from __future__ import annotations

from typing import Any, Mapping, Optional

from ..errors import SimulationError, ValTypeError
from . import ast_nodes as A
from .values import IterSignal, ValArray

#: Guard against runaway for-iter loops in malformed programs.
MAX_ITERATIONS = 10_000_000


def _binop(op: str, left: Any, right: Any, node: A.BinOp) -> Any:
    if op == "+":
        return left + right
    if op == "-":
        return left - right
    if op == "*":
        return left * right
    if op == "/":
        if right == 0:
            raise SimulationError(f"division by zero at line {node.line}")
        if isinstance(left, int) and isinstance(right, int):
            q = abs(left) // abs(right)
            return q if (left >= 0) == (right >= 0) else -q
        return left / right
    if op == "<":
        return left < right
    if op == "<=":
        return left <= right
    if op == ">":
        return left > right
    if op == ">=":
        return left >= right
    if op == "=":
        return left == right
    if op == "~=":
        return left != right
    if op == "&":
        return bool(left) and bool(right)
    if op == "|":
        return bool(left) or bool(right)
    raise ValTypeError(f"unknown operator {op!r}")


def eval_expr(node: A.Expr, env: Mapping[str, Any]) -> Any:
    """Evaluate an expression in an environment of name -> value."""
    if isinstance(node, A.Literal):
        return node.value
    if isinstance(node, A.Ident):
        try:
            return env[node.name]
        except KeyError:
            raise SimulationError(
                f"unbound identifier {node.name!r} at line {node.line}"
            ) from None
    if isinstance(node, A.BinOp):
        return _binop(
            node.op, eval_expr(node.left, env), eval_expr(node.right, env), node
        )
    if isinstance(node, A.UnOp):
        val = eval_expr(node.operand, env)
        return -val if node.op == "-" else (not bool(val))
    if isinstance(node, A.Builtin):
        args = [eval_expr(a, env) for a in node.args]
        return max(args) if node.name == "max" else min(args)
    if isinstance(node, A.Index):
        arr = eval_expr(node.base, env)
        idx = eval_expr(node.index, env)
        if not isinstance(arr, ValArray):
            raise ValTypeError(f"indexing a non-array at line {node.line}")
        return arr.get(idx)
    if isinstance(node, A.ArrayLit):
        return ValArray.singleton(
            eval_expr(node.index, env), eval_expr(node.value, env)
        )
    if isinstance(node, A.ArrayAppend):
        arr = eval_expr(node.base, env)
        if not isinstance(arr, ValArray):
            raise ValTypeError(f"appending to a non-array at line {node.line}")
        return arr.append(eval_expr(node.index, env), eval_expr(node.value, env))
    if isinstance(node, A.Let):
        inner = dict(env)
        for d in node.defs:
            inner[d.name] = eval_expr(d.expr, inner)
        return eval_expr(node.body, inner)
    if isinstance(node, A.If):
        if eval_expr(node.cond, env):
            return eval_expr(node.then, env)
        return eval_expr(node.els, env)
    if isinstance(node, A.Forall):
        return _eval_forall(node, env)
    if isinstance(node, A.ForIter):
        return _eval_foriter(node, env)
    if isinstance(node, A.Iter):
        bindings = {}
        for assign in node.assigns:
            bindings[assign.name] = eval_expr(assign.expr, env)
        return IterSignal(bindings)
    raise ValTypeError(f"cannot evaluate {type(node).__name__}")


def _eval_forall(node: A.Forall, env: Mapping[str, Any]) -> ValArray:
    lo = eval_expr(node.lo, env)
    hi = eval_expr(node.hi, env)
    if not isinstance(lo, int) or not isinstance(hi, int):
        raise ValTypeError(f"forall range bounds must be integers (line {node.line})")
    elements = []
    for i in range(lo, hi + 1):
        inner = dict(env)
        inner[node.var] = i
        for d in node.defs:
            inner[d.name] = eval_expr(d.expr, inner)
        elements.append(eval_expr(node.accum, inner))
    return ValArray(lo, tuple(elements))


def _eval_foriter(node: A.ForIter, env: Mapping[str, Any]) -> Any:
    loop_env = dict(env)
    loop_names = []
    for d in node.inits:
        loop_env[d.name] = eval_expr(d.expr, loop_env)
        loop_names.append(d.name)
    for _ in range(MAX_ITERATIONS):
        result = eval_expr(node.body, loop_env)
        if isinstance(result, IterSignal):
            unknown = set(result.bindings) - set(loop_names)
            if unknown:
                raise ValTypeError(
                    f"iter rebinds non-loop names {sorted(unknown)} "
                    f"(line {node.line})"
                )
            loop_env.update(result.bindings)
            continue
        return result
    raise SimulationError(
        f"for-iter exceeded {MAX_ITERATIONS} iterations (line {node.line})"
    )


def run_program(
    program: A.Program,
    inputs: Optional[Mapping[str, Any]] = None,
    params: Optional[Mapping[str, int]] = None,
) -> dict[str, Any]:
    """Evaluate every block of a program in order.

    ``inputs`` supplies free array (or scalar) identifiers; plain lists
    are promoted to :class:`ValArray` starting at index 0 unless given
    as ``(lo, list)`` pairs.  ``params`` supplies compile-time integer
    constants such as the ``m`` of the paper's examples.  Returns the
    value of every block by name (arrays as :class:`ValArray`).
    """
    env: dict[str, Any] = {}
    for key, value in (params or {}).items():
        env[key] = value
    for key, value in (inputs or {}).items():
        env[key] = _promote(value)
    results: dict[str, Any] = {}
    for block in program.blocks:
        if block.name in env:
            raise ValTypeError(f"block {block.name!r} shadows an input/param")
        value = eval_expr(block.expr, env)
        env[block.name] = value
        results[block.name] = value
    return results


def _promote(value: Any) -> Any:
    if isinstance(value, ValArray):
        return value
    if isinstance(value, tuple) and len(value) == 2 and isinstance(value[1], (list, tuple)):
        lo, items = value
        return ValArray(int(lo), tuple(items))
    if isinstance(value, (list,)):
        return ValArray(0, tuple(value))
    return value


def const_eval(node: A.Expr, params: Mapping[str, int]) -> int:
    """Evaluate a compile-time integer expression (range bounds, index
    offsets).  Raises :class:`ValTypeError` when not constant."""
    if isinstance(node, A.Literal):
        if isinstance(node.value, bool) or not isinstance(node.value, int):
            raise ValTypeError(f"expected integer constant at line {node.line}")
        return node.value
    if isinstance(node, A.Ident):
        if node.name in params:
            return int(params[node.name])
        raise ValTypeError(
            f"{node.name!r} is not a compile-time constant (line {node.line}); "
            f"pass it in params="
        )
    if isinstance(node, A.UnOp) and node.op == "-":
        return -const_eval(node.operand, params)
    if isinstance(node, A.BinOp) and node.op in ("+", "-", "*", "/"):
        left = const_eval(node.left, params)
        right = const_eval(node.right, params)
        if node.op == "+":
            return left + right
        if node.op == "-":
            return left - right
        if node.op == "*":
            return left * right
        if right == 0:
            raise ValTypeError(f"constant division by zero at line {node.line}")
        q = abs(left) // abs(right)
        return q if (left >= 0) == (right >= 0) else -q
    raise ValTypeError(
        f"expression at line {node.line} is not a compile-time integer constant"
    )
