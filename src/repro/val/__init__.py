"""Val language frontend: lexer, parser, AST, types, classification and
the reference interpreter.

Val is the value-oriented algorithmic language of Ackerman & Dennis
(MIT TR-218); this package implements the subset the paper's program
class uses: scalar expressions with ``let-in`` / ``if-then-else``,
array selection, and the ``forall`` / ``for-iter`` array constructors.
"""

from . import ast_nodes
from .ast_nodes import (
    ArrayType,
    BOOLEAN,
    INTEGER,
    REAL,
    BlockDef,
    Program,
    ScalarType,
    free_identifiers,
    walk,
)
from .classify import (
    ArrayAccess,
    ForallInfo,
    ForIterInfo,
    PEInfo,
    classify_forall,
    classify_foriter,
    classify_primitive,
    index_offset,
    is_primitive_expr,
    is_scalar_primitive_expr,
)
from .interpreter import const_eval, eval_expr, run_program
from .lexer import Token, tokenize
from .multidim import (
    flatten2d,
    lower_forall_nd,
    lower_program,
    unflatten2d,
)
from .parser import parse_expression, parse_program
from .typecheck import (
    check_expression,
    check_program,
    infer_input_types,
)
from .values import ValArray

__all__ = [
    "ArrayAccess",
    "ArrayType",
    "BOOLEAN",
    "BlockDef",
    "ForIterInfo",
    "ForallInfo",
    "INTEGER",
    "PEInfo",
    "Program",
    "REAL",
    "ScalarType",
    "Token",
    "ValArray",
    "ast_nodes",
    "check_expression",
    "check_program",
    "classify_forall",
    "classify_foriter",
    "classify_primitive",
    "const_eval",
    "eval_expr",
    "flatten2d",
    "free_identifiers",
    "index_offset",
    "infer_input_types",
    "is_primitive_expr",
    "lower_forall_nd",
    "lower_program",
    "is_scalar_primitive_expr",
    "parse_expression",
    "parse_program",
    "run_program",
    "tokenize",
    "unflatten2d",
    "walk",
]
