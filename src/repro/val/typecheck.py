"""Type checking for the Val subset.

Val is statically typed; the checker validates block programs against
an environment of input types and compile-time parameters, inferring
the type of every expression.  One convenience divergence from strict
Val (documented in DESIGN.md): integer values coerce to real where a
real is expected, so the paper's ``0.25 * (C[i-1] + 2.*C[i] + C[i+1])``
style mixing is accepted.
"""

from __future__ import annotations

from typing import Mapping, Optional

from ..errors import ValTypeError
from . import ast_nodes as A
from .ast_nodes import (
    ArrayType,
    BOOLEAN,
    INTEGER,
    REAL,
    ScalarType,
    ValType,
)

#: Pseudo-type of an ``iter`` clause (unified away by the enclosing if).
ITER = ScalarType("iter")

_ARITH_OPS = {"+", "-", "*", "/"}
_REL_OPS = {"<", "<=", ">", ">=", "=", "~="}
_BOOL_OPS = {"&", "|"}


def assignable(src: ValType, dst: ValType) -> bool:
    """May a value of type ``src`` bind a name declared ``dst``?"""
    if src == dst:
        return True
    if src == INTEGER and dst == REAL:
        return True
    if isinstance(src, ArrayType) and isinstance(dst, ArrayType):
        return assignable(src.elem, dst.elem)
    return False


def unify(a: ValType, b: ValType, node: A.Node) -> ValType:
    """Join of two conditional-arm types."""
    if a == ITER:
        return b
    if b == ITER:
        return a
    if a == b:
        return a
    if {a, b} == {INTEGER, REAL}:
        return REAL
    if isinstance(a, ArrayType) and isinstance(b, ArrayType):
        return ArrayType(unify(a.elem, b.elem, node))  # type: ignore[arg-type]
    raise ValTypeError(
        f"incompatible branch types {a} and {b} at line {node.line}"
    )


class TypeChecker:
    """Checks one expression tree; ``env`` maps names to types."""

    def __init__(self, env: Mapping[str, ValType]) -> None:
        self.env = dict(env)

    # ------------------------------------------------------------------
    def check(self, node: A.Expr) -> ValType:
        method = getattr(self, f"_check_{type(node).__name__.lower()}", None)
        if method is None:
            raise ValTypeError(f"cannot type {type(node).__name__}")
        return method(node)

    def _expect_scalar(self, t: ValType, node: A.Node, what: str) -> ScalarType:
        if not isinstance(t, ScalarType) or t == ITER:
            raise ValTypeError(f"{what} must be scalar, got {t} at line {node.line}")
        return t

    def _expect_numeric(self, t: ValType, node: A.Node, what: str) -> ScalarType:
        if t not in (INTEGER, REAL):
            raise ValTypeError(
                f"{what} must be numeric, got {t} at line {node.line}"
            )
        return t  # type: ignore[return-value]

    # -- leaves -----------------------------------------------------------
    def _check_literal(self, node: A.Literal) -> ValType:
        return node.type

    def _check_ident(self, node: A.Ident) -> ValType:
        try:
            return self.env[node.name]
        except KeyError:
            raise ValTypeError(
                f"unbound identifier {node.name!r} at line {node.line}"
            ) from None

    # -- operators -----------------------------------------------------------
    def _check_binop(self, node: A.BinOp) -> ValType:
        lt = self.check(node.left)
        rt = self.check(node.right)
        if node.op in _ARITH_OPS:
            l = self._expect_numeric(lt, node, f"left operand of {node.op!r}")
            r = self._expect_numeric(rt, node, f"right operand of {node.op!r}")
            return REAL if REAL in (l, r) else INTEGER
        if node.op in _REL_OPS:
            if node.op in ("=", "~="):
                if not (
                    isinstance(lt, ScalarType)
                    and isinstance(rt, ScalarType)
                    and (lt == rt or {lt, rt} == {INTEGER, REAL})
                ):
                    raise ValTypeError(
                        f"cannot compare {lt} with {rt} at line {node.line}"
                    )
            else:
                self._expect_numeric(lt, node, f"left operand of {node.op!r}")
                self._expect_numeric(rt, node, f"right operand of {node.op!r}")
            return BOOLEAN
        if node.op in _BOOL_OPS:
            for side, t in (("left", lt), ("right", rt)):
                if t != BOOLEAN:
                    raise ValTypeError(
                        f"{side} operand of {node.op!r} must be boolean, got {t} "
                        f"at line {node.line}"
                    )
            return BOOLEAN
        raise ValTypeError(f"unknown operator {node.op!r} at line {node.line}")

    def _check_builtin(self, node: A.Builtin) -> ValType:
        result = INTEGER
        for arg in node.args:
            t = self._expect_numeric(
                self.check(arg), node, f"argument of {node.name}"
            )
            if t == REAL:
                result = REAL
        return result

    def _check_unop(self, node: A.UnOp) -> ValType:
        t = self.check(node.operand)
        if node.op == "-":
            return self._expect_numeric(t, node, "operand of unary '-'")
        if t != BOOLEAN:
            raise ValTypeError(
                f"operand of '~' must be boolean, got {t} at line {node.line}"
            )
        return BOOLEAN

    # -- arrays -----------------------------------------------------------
    def _check_index(self, node: A.Index) -> ValType:
        base = self.check(node.base)
        if not isinstance(base, ArrayType):
            raise ValTypeError(f"indexing a {base} at line {node.line}")
        idx = self.check(node.index)
        if idx != INTEGER:
            raise ValTypeError(f"array index must be integer, got {idx} "
                               f"at line {node.line}")
        return base.elem

    def _check_arraylit(self, node: A.ArrayLit) -> ValType:
        idx = self.check(node.index)
        if idx != INTEGER:
            raise ValTypeError(
                f"array constructor index must be integer at line {node.line}"
            )
        elem = self._expect_scalar(
            self.check(node.value), node, "array constructor value"
        )
        return ArrayType(elem)

    def _check_arrayappend(self, node: A.ArrayAppend) -> ValType:
        base = self.check(node.base)
        if not isinstance(base, ArrayType):
            raise ValTypeError(f"appending to a {base} at line {node.line}")
        idx = self.check(node.index)
        if idx != INTEGER:
            raise ValTypeError(
                f"array update index must be integer at line {node.line}"
            )
        val = self.check(node.value)
        if not assignable(val, base.elem):
            raise ValTypeError(
                f"cannot store {val} in {base} at line {node.line}"
            )
        return base

    # -- binding constructs -------------------------------------------------
    def _check_let(self, node: A.Let) -> ValType:
        saved = dict(self.env)
        try:
            for d in node.defs:
                self._check_definition(d)
            return self.check(node.body)
        finally:
            self.env = saved

    def _check_definition(self, d: A.Definition) -> None:
        t = self.check(d.expr)
        if d.type is not None and not assignable(t, d.type):
            raise ValTypeError(
                f"definition of {d.name!r}: cannot assign {t} to {d.type} "
                f"at line {d.line}"
            )
        self.env[d.name] = d.type if d.type is not None else t

    def _check_if(self, node: A.If) -> ValType:
        cond = self.check(node.cond)
        if cond != BOOLEAN:
            raise ValTypeError(
                f"if condition must be boolean, got {cond} at line {node.line}"
            )
        return unify(self.check(node.then), self.check(node.els), node)

    def _check_forall(self, node: A.Forall) -> ValType:
        for bound in (node.lo, node.hi):
            t = self.check(bound)
            if t != INTEGER:
                raise ValTypeError(
                    f"forall range bound must be integer, got {t} "
                    f"at line {node.line}"
                )
        saved = dict(self.env)
        try:
            self.env[node.var] = INTEGER
            for d in node.defs:
                self._check_definition(d)
            elem = self._expect_scalar(
                self.check(node.accum), node, "forall accumulation"
            )
            return ArrayType(elem)
        finally:
            self.env = saved

    def _check_foriter(self, node: A.ForIter) -> ValType:
        saved = dict(self.env)
        saved_loop = getattr(self, "_loop_names", None)
        try:
            for d in node.inits:
                self._check_definition(d)
            self._loop_names = {d.name: self.env[d.name] for d in node.inits}
            body = self.check(node.body)
            if body == ITER:
                raise ValTypeError(
                    f"for-iter body never terminates (all arms iterate) "
                    f"at line {node.line}"
                )
            return body
        finally:
            self.env = saved
            self._loop_names = saved_loop

    def _check_iter(self, node: A.Iter) -> ValType:
        loop_names = getattr(self, "_loop_names", None)
        if loop_names is None:
            raise ValTypeError(
                f"iter clause outside a for-iter body at line {node.line}"
            )
        for assign in node.assigns:
            if assign.name not in loop_names:
                raise ValTypeError(
                    f"iter rebinds {assign.name!r}, not a loop name, "
                    f"at line {assign.line}"
                )
            t = self.check(assign.expr)
            if not assignable(t, loop_names[assign.name]):
                raise ValTypeError(
                    f"iter assigns {t} to {assign.name!r} of type "
                    f"{loop_names[assign.name]} at line {assign.line}"
                )
        return ITER


def check_expression(expr: A.Expr, env: Mapping[str, ValType]) -> ValType:
    """Type of ``expr`` under ``env`` (raises :class:`ValTypeError`)."""
    return TypeChecker(env).check(expr)


def infer_input_types(
    program: A.Program, params: Mapping[str, int]
) -> dict[str, ValType]:
    """Guess types for free identifiers of a block program.

    Heuristics (sufficient for the paper's program class): a free
    identifier used as an array (indexed / appended) is ``array[real]``
    unless its elements are used directly as booleans (Figure 5's
    ``if C[i]``), then ``array[boolean]``; parameters are integers.
    """
    from .ast_nodes import free_identifiers, walk

    inferred: dict[str, ValType] = {}
    array_names: set[str] = set()
    bool_arrays: set[str] = set()
    for block in program.blocks:
        for node in walk(block.expr):
            if isinstance(node, (A.Index, A.ArrayAppend)) and isinstance(
                node.base, A.Ident
            ):
                array_names.add(node.base.name)
            if isinstance(node, A.If) and isinstance(node.cond, A.Index) and \
                    isinstance(node.cond.base, A.Ident):
                bool_arrays.add(node.cond.base.name)

    block_names = {b.name for b in program.blocks}
    for block in program.blocks:
        for name in free_identifiers(block.expr):
            if name in params or name in block_names or name in inferred:
                continue
            if name in array_names:
                elem = BOOLEAN if name in bool_arrays else REAL
                inferred[name] = ArrayType(elem)
            else:
                inferred[name] = INTEGER
    return inferred


def check_program(
    program: A.Program,
    input_types: Optional[Mapping[str, ValType]] = None,
    params: Optional[Mapping[str, int]] = None,
) -> dict[str, ValType]:
    """Type-check all blocks; returns each block's type by name."""
    params = params or {}
    env: dict[str, ValType] = {name: INTEGER for name in params}
    env.update(input_types or infer_input_types(program, params))
    out: dict[str, ValType] = {}
    for block in program.blocks:
        t = check_expression(block.expr, env)
        if not assignable(t, block.type):
            raise ValTypeError(
                f"block {block.name!r} declared {block.type} but computes {t} "
                f"at line {block.line}"
            )
        env[block.name] = block.type
        out[block.name] = block.type
    return out
