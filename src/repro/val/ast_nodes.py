"""Abstract syntax tree for the Val subset of the paper.

The subset covers exactly the constructs Sections 4-7 build on:
scalar expressions with ``let-in`` and ``if-then-else``, array element
selection ``A[i+m]``, the ``forall`` construct (range specification,
definition part, accumulation part) and the ``for-iter`` construct
(loop initialization, definition part, iter/terminate conditional),
plus the array constructor forms ``[r: E]`` and ``X[i: E]`` the
for-iter accumulator uses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

# ---------------------------------------------------------------------------
# types
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ScalarType:
    kind: str  # 'real' | 'integer' | 'boolean'

    def __str__(self) -> str:
        return self.kind


@dataclass(frozen=True)
class ArrayType:
    elem: ScalarType

    def __str__(self) -> str:
        return f"array[{self.elem}]"


ValType = Union[ScalarType, ArrayType]

REAL = ScalarType("real")
INTEGER = ScalarType("integer")
BOOLEAN = ScalarType("boolean")


# ---------------------------------------------------------------------------
# expressions
# ---------------------------------------------------------------------------


@dataclass
class Node:
    """Base class; ``line``/``column`` point at the defining token."""

    line: int = field(default=0, kw_only=True)
    column: int = field(default=0, kw_only=True)


@dataclass
class Literal(Node):
    """Numeric or boolean literal; ``type`` is REAL, INTEGER or BOOLEAN."""

    value: Union[int, float, bool]
    type: ScalarType


@dataclass
class Ident(Node):
    name: str


@dataclass
class BinOp(Node):
    """op in { +, -, *, /, <, <=, >, >=, =, ~=, &, | }."""

    op: str
    left: "Expr"
    right: "Expr"


@dataclass
class UnOp(Node):
    """op in { -, ~ }."""

    op: str
    operand: "Expr"


@dataclass
class Builtin(Node):
    """Builtin function application: ``max(e1, e2)`` / ``min(e1, e2)``.

    Val's standard library has more, but the paper's program class only
    motivates the lattice pair (they extend the recurrence machinery to
    the max-plus / min-plus semirings -- Kogge's general class).
    """

    name: str  # 'max' | 'min'
    args: list["Expr"]


@dataclass
class Index(Node):
    """Array element selection ``base[index]``."""

    base: "Expr"
    index: "Expr"


@dataclass
class ArrayAppend(Node):
    """Functional array update/extension ``base[index: value]``."""

    base: "Expr"
    index: "Expr"
    value: "Expr"


@dataclass
class ArrayLit(Node):
    """Singleton array constructor ``[index: value]``."""

    index: "Expr"
    value: "Expr"


@dataclass
class Definition(Node):
    """``name : type := expr`` in a let/forall definition part or a
    for-iter initialization."""

    name: str
    type: Optional[ValType]
    expr: "Expr"


@dataclass
class Let(Node):
    defs: list[Definition]
    body: "Expr"


@dataclass
class If(Node):
    cond: "Expr"
    then: "Expr"
    els: "Expr"


@dataclass
class Forall(Node):
    """``forall var in [lo, hi] defs construct accum endall``."""

    var: str
    lo: "Expr"
    hi: "Expr"
    defs: list[Definition]
    accum: "Expr"


@dataclass
class RangeSpec(Node):
    """One ``var in [lo, hi]`` of a multidimensional range."""

    var: str
    lo: "Expr"
    hi: "Expr"


@dataclass
class ForallND(Node):
    """Multidimensional forall (the paper's Section 9 extension):
    ``forall i in [a,b]; j in [c,d] defs construct accum endall``.

    Lowered to a 1-D :class:`Forall` over the row-major flattened
    iteration space by :mod:`repro.val.multidim` before type checking,
    interpretation or compilation.
    """

    ranges: list[RangeSpec]
    defs: list[Definition]
    accum: "Expr"


@dataclass
class IndexND(Node):
    """Multidimensional selection ``base[e1, e2, ...]`` (lowered to a
    flat :class:`Index` by :mod:`repro.val.multidim`)."""

    base: "Expr"
    indices: list["Expr"]


@dataclass
class Assign(Node):
    """``name := expr`` inside an iter clause."""

    name: str
    expr: "Expr"


@dataclass
class Iter(Node):
    """``iter assigns enditer`` -- rebind loop names and repeat."""

    assigns: list[Assign]


@dataclass
class ForIter(Node):
    """``for inits do body endfor``."""

    inits: list[Definition]
    body: "Expr"


Expr = Union[
    Literal,
    Ident,
    BinOp,
    UnOp,
    Builtin,
    Index,
    IndexND,
    ArrayAppend,
    ArrayLit,
    Let,
    If,
    Forall,
    ForallND,
    Iter,
    ForIter,
]


# ---------------------------------------------------------------------------
# programs
# ---------------------------------------------------------------------------


@dataclass
class BlockDef(Node):
    """One top-level block: ``name : type := expr``.

    In a pipe-structured program every block is a forall or for-iter
    expression producing an array value (paper, Section 4).
    """

    name: str
    type: ValType
    expr: Expr


@dataclass
class Program(Node):
    blocks: list[BlockDef]

    def block(self, name: str) -> BlockDef:
        for b in self.blocks:
            if b.name == name:
                return b
        raise KeyError(name)


# ---------------------------------------------------------------------------
# traversal helpers
# ---------------------------------------------------------------------------


def children(node: Node) -> list[Node]:
    """Direct child nodes, in source order."""
    if isinstance(node, (Literal, Ident)):
        return []
    if isinstance(node, BinOp):
        return [node.left, node.right]
    if isinstance(node, UnOp):
        return [node.operand]
    if isinstance(node, Builtin):
        return list(node.args)
    if isinstance(node, Index):
        return [node.base, node.index]
    if isinstance(node, IndexND):
        return [node.base, *node.indices]
    if isinstance(node, RangeSpec):
        return [node.lo, node.hi]
    if isinstance(node, ForallND):
        return [*node.ranges, *node.defs, node.accum]
    if isinstance(node, ArrayAppend):
        return [node.base, node.index, node.value]
    if isinstance(node, ArrayLit):
        return [node.index, node.value]
    if isinstance(node, Definition):
        return [node.expr]
    if isinstance(node, Let):
        return [*node.defs, node.body]
    if isinstance(node, If):
        return [node.cond, node.then, node.els]
    if isinstance(node, Forall):
        return [node.lo, node.hi, *node.defs, node.accum]
    if isinstance(node, Assign):
        return [node.expr]
    if isinstance(node, Iter):
        return list(node.assigns)
    if isinstance(node, ForIter):
        return [*node.inits, node.body]
    if isinstance(node, BlockDef):
        return [node.expr]
    if isinstance(node, Program):
        return list(node.blocks)
    raise TypeError(f"unknown node {type(node).__name__}")


def walk(node: Node):
    """Yield ``node`` and all descendants, depth-first preorder."""
    yield node
    for child in children(node):
        yield from walk(child)


def free_identifiers(node: Node, bound: frozenset[str] = frozenset()) -> set[str]:
    """Names referenced but not bound within ``node``.

    Binding constructs: let definitions (scoped over later definitions
    and the body), forall index variable and definitions, for-iter loop
    names.
    """
    free: set[str] = set()

    def visit(n: Node, env: frozenset[str]) -> None:
        if isinstance(n, Ident):
            if n.name not in env:
                free.add(n.name)
            return
        if isinstance(n, Let):
            inner = env
            for d in n.defs:
                visit(d.expr, inner)
                inner = inner | {d.name}
            visit(n.body, inner)
            return
        if isinstance(n, Forall):
            visit(n.lo, env)
            visit(n.hi, env)
            inner = env | {n.var}
            for d in n.defs:
                visit(d.expr, inner)
                inner = inner | {d.name}
            visit(n.accum, inner)
            return
        if isinstance(n, ForallND):
            inner = env
            for r in n.ranges:
                visit(r.lo, env)
                visit(r.hi, env)
                inner = inner | {r.var}
            for d in n.defs:
                visit(d.expr, inner)
                inner = inner | {d.name}
            visit(n.accum, inner)
            return
        if isinstance(n, ForIter):
            inner = env
            for d in n.inits:
                visit(d.expr, env)
                inner = inner | {d.name}
            visit(n.body, inner)
            return
        for child in children(n):
            visit(child, env)

    visit(node, bound)
    return free
