"""Exception hierarchy for the repro package.

Every error raised by the Val frontend, the compiler, the simulators and the
analysis passes derives from :class:`ReproError`, so callers can catch one
type at the API boundary.
"""

from __future__ import annotations

# ---------------------------------------------------------------------------
# Process exit codes
#
# Every repro entry point that can die for a *typed* reason exits with one
# of these, so shell scripts, CI jobs and the supervision loop can branch
# on the cause without parsing stderr.  0 is success and 1 the generic
# untyped failure, as usual.
# ---------------------------------------------------------------------------

#: a run failed outright (deadlock, timeout, fault not recovered) or the
#: supervisor exhausted its restart budget without a completed child
EXIT_RUN_FAILED = 2

#: replay/bisect found a divergence from the recorded run (or a faults
#: comparison found outputs that differ from the clean reference)
EXIT_DIVERGED = 3

#: ``repro resume`` could not load the snapshot itself -- a typed
#: :class:`SnapshotError` before the run even starts.  Distinct from the
#: generic exit so the supervisor can tell "this snapshot is poison"
#: (quarantine it immediately) from "the child resumed fine but hit an
#: unrelated error" (which goes through the two-strike counter instead).
EXIT_SNAPSHOT_UNLOADABLE = 4

#: a sharded worker died and in-process recovery gave up (mirrors the
#: 128+SIGKILL=137 a real OOM-killed process reports); also the code a
#: worker uses for a simulated SIGKILL under fault injection
EXIT_SHARD_CRASH = 137


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class ValSyntaxError(ReproError):
    """Raised by the Val lexer/parser on malformed source text.

    Carries the 1-based source position of the offending token.
    """

    def __init__(self, message: str, line: int = 0, column: int = 0) -> None:
        self.line = line
        self.column = column
        if line:
            message = f"{line}:{column}: {message}"
        super().__init__(message)


class ValTypeError(ReproError):
    """Raised by the type checker on ill-typed Val programs."""


class ClassificationError(ReproError):
    """Raised when a Val construct falls outside the paper's restricted class.

    The paper's theorems only cover *primitive expressions*, *primitive
    forall* expressions and *simple for-iter* expressions; anything else is
    rejected with this error (mirroring what the proposed compiler would do).
    """


class GraphError(ReproError):
    """Raised on malformed dataflow instruction graphs."""


class CompileError(ReproError):
    """Raised by the compiler when a construct cannot be mapped."""


class SimulationError(ReproError):
    """Raised by the simulators (deadlock with pending work, bad input...)."""


class SimulationTimeout(SimulationError):
    """Raised when a simulation exceeds its cycle budget (``max_cycles``).

    Unlike :class:`DeadlockError` the machine was still making progress --
    the run may be a genuine long computation or a livelock.  The partial
    statistics collected up to the overrun are attached so callers can
    tell the two apart:

    ``cycles``
        The cycle count at which the budget was exhausted.
    ``stats``
        The partial :class:`repro.machine.stats.MachineStats` (or ``None``
        when raised by a simulator that does not collect them).
    ``sink_progress``
        Mapping of output stream name to ``(received, expected)`` token
        counts; ``expected`` is ``None`` for unbounded sinks.
    ``cycle``
        Alias of ``cycles`` (the uniform name shared with
        :class:`DeadlockError`).
    ``snapshot_path``
        Path of the final crash-consistent snapshot written by the
        checkpointing layer, or ``None`` when checkpointing was off.
    """

    def __init__(
        self,
        message: str,
        cycles: int = 0,
        stats=None,
        sink_progress=None,
        snapshot_path=None,
    ) -> None:
        self.cycles = cycles
        self.stats = stats
        self.sink_progress = dict(sink_progress or {})
        self.snapshot_path = snapshot_path
        super().__init__(message)

    @property
    def cycle(self) -> int:
        return self.cycles


class DeadlockError(SimulationError):
    """Raised when a simulation quiesces before the expected outputs arrive.

    This is the machine-level symptom of the "jams" the paper warns about
    when unused array elements are not discarded or skew buffers are missing.
    The machine-level simulator attaches a structured
    :class:`repro.machine.diagnose.DeadlockDiagnosis` as ``diagnosis``
    (``None`` when raised by the unit-delay simulator).  ``cycle``
    aliases ``step`` (the cycle/step the simulation wedged at), and
    ``snapshot_path`` names the final crash-consistent snapshot written
    by the checkpointing layer (``None`` when checkpointing was off).
    """

    def __init__(
        self,
        message: str,
        step: int = 0,
        pending: int = 0,
        diagnosis=None,
        snapshot_path=None,
    ) -> None:
        self.step = step
        self.pending = pending
        self.diagnosis = diagnosis
        self.snapshot_path = snapshot_path
        super().__init__(message)

    @property
    def cycle(self) -> int:
        return self.step


class SnapshotError(ReproError):
    """Raised on unusable checkpoint snapshots or replay bundles.

    Covers every way an on-disk snapshot can be unusable -- missing
    file, foreign/garbage content, truncation, checksum mismatch, or a
    format version this build cannot read -- so callers never see a raw
    ``pickle`` crash from a damaged file.
    """


class ChainBrokenError(SnapshotError):
    """Raised when a delta snapshot's parent chain cannot be verified.

    A delta (format v3) snapshot only carries the state that changed
    since its parent; resuming it requires every ancestor down to a
    full base, each re-verified by checksum against the
    ``parent_checksum`` its child recorded.  Any break -- a missing
    parent (``status="orphaned"``), or a damaged/rewritten/tampered
    ancestor (``status="damaged"``) -- raises this *before* any
    payload is deserialized, so a poisoned chain can never half-build
    a machine.  Resume-point selection treats a chain-broken snapshot
    like a missing one and steps back to the last intact base.
    """

    def __init__(self, message: str, status: str = "damaged") -> None:
        self.status = status
        super().__init__(message)


class ManifestError(SnapshotError):
    """Raised when a record bundle's ``manifest.json`` is missing or
    damaged at a point where the checkpoint layer must update it.

    A record-mode run creates the manifest before its first event, so a
    mid-run update finding it gone (or unparseable) means the bundle
    itself has been damaged; fabricating a fresh default manifest would
    silently mask that, so the damage is surfaced instead.
    """


class SupervisorError(ReproError):
    """Raised when the crash-supervision loop cannot be set up or
    cannot make progress at all (no way to start the workload, or a
    configuration that can never resume).

    Ordinary child crashes are *not* errors -- the supervisor's whole
    job is to absorb them; exhaustion of the restart budget is
    reported through the returned
    :class:`repro.checkpoint.supervisor.SupervisorReport` instead of
    an exception, so callers always get the full attempt history.
    """


class AnalysisError(ReproError):
    """Raised by the static rate/balance analyses."""


class RecurrenceError(CompileError):
    """Raised when a for-iter body is not a recognizable first-order
    recurrence or has no derivable companion function."""
