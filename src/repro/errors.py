"""Exception hierarchy for the repro package.

Every error raised by the Val frontend, the compiler, the simulators and the
analysis passes derives from :class:`ReproError`, so callers can catch one
type at the API boundary.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class ValSyntaxError(ReproError):
    """Raised by the Val lexer/parser on malformed source text.

    Carries the 1-based source position of the offending token.
    """

    def __init__(self, message: str, line: int = 0, column: int = 0) -> None:
        self.line = line
        self.column = column
        if line:
            message = f"{line}:{column}: {message}"
        super().__init__(message)


class ValTypeError(ReproError):
    """Raised by the type checker on ill-typed Val programs."""


class ClassificationError(ReproError):
    """Raised when a Val construct falls outside the paper's restricted class.

    The paper's theorems only cover *primitive expressions*, *primitive
    forall* expressions and *simple for-iter* expressions; anything else is
    rejected with this error (mirroring what the proposed compiler would do).
    """


class GraphError(ReproError):
    """Raised on malformed dataflow instruction graphs."""


class CompileError(ReproError):
    """Raised by the compiler when a construct cannot be mapped."""


class SimulationError(ReproError):
    """Raised by the simulators (deadlock with pending work, bad input...)."""


class DeadlockError(SimulationError):
    """Raised when a simulation quiesces before the expected outputs arrive.

    This is the machine-level symptom of the "jams" the paper warns about
    when unused array elements are not discarded or skew buffers are missing.
    """

    def __init__(self, message: str, step: int = 0, pending: int = 0) -> None:
        self.step = step
        self.pending = pending
        super().__init__(message)


class AnalysisError(ReproError):
    """Raised by the static rate/balance analyses."""


class RecurrenceError(CompileError):
    """Raised when a for-iter body is not a recognizable first-order
    recurrence or has no derivable companion function."""
