"""Synchronous ("instruction time") simulator of the static dataflow machine.

This simulator implements exactly the timing discipline the paper's rate
arguments rest on (Section 3):

* every arc (destination field + its reverse acknowledge path) holds at
  most **one** data token;
* an instruction cell is **enabled** when all its required operand
  tokens are present *and* every destination arc it would write is free
  (i.e. all acknowledge packets from the previous firing have arrived);
* each simulation step, **all** enabled cells fire simultaneously; their
  results and the freeing of their input arcs become visible at the next
  step.

Consequences (all verified by the test suite):

* an isolated producer/consumer pair refires every **2 steps** -- the
  paper's "about two instruction times";
* a feedback cycle of ``L`` cells holding ``k`` tokens produces at rate
  ``k/L`` (Todd's 3-cell loop: 1/3; the companion scheme's 4-cell loop
  with 2 circulating values: 1/2);
* a fork/join with unequal path lengths throttles below 1/2 until FIFO
  buffers balance it;
* a loop sustaining two tokens at full rate must have an **even** number
  of stages (the paper's inserted ID cell).

A graph is *fully pipelined* when its steady-state initiation interval
is 2 steps per output element.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from ..errors import (
    DeadlockError,
    GraphError,
    SimulationError,
    SimulationTimeout,
)
from ..graph.cell import _NO_TOKEN, GATE_PORT, Cell
from ..graph.graph import DataflowGraph
from ..graph.opcodes import (
    BINARY_OPS,
    MERGE_CONTROL_PORT,
    MERGE_FALSE_PORT,
    MERGE_TRUE_PORT,
    UNARY_OPS,
    Op,
    apply_scalar,
)
from ..graph.validate import check_stream_inputs, validate
from ..timing import steady_interval

_ABSENT = _NO_TOKEN  # reuse the cell module's sentinel


@dataclass
class SinkRecord:
    """Values received by one SINK cell, with their arrival steps."""

    stream: str
    values: list[Any] = field(default_factory=list)
    times: list[int] = field(default_factory=list)

    def initiation_interval(self, skip: Optional[int] = None) -> float:
        """Steady-state initiation interval (steps between outputs).

        Computed as the mean inter-arrival gap after discarding the first
        ``skip`` arrivals (default: the first half, to exclude pipeline
        fill).  A fully pipelined graph reports 2.0.
        """
        return steady_interval(self.times, skip)


@dataclass
class SimStats:
    """Aggregate statistics of one simulation run."""

    steps: int = 0
    total_firings: int = 0
    fire_counts: dict[int, int] = field(default_factory=dict)

    def utilization(self, cid: int) -> float:
        """Fraction of the maximum firing rate (1 per 2 steps) achieved."""
        if self.steps == 0:
            return 0.0
        return self.fire_counts.get(cid, 0) / (self.steps / 2.0)


class _FifoState:
    """Shift-register state of an unexpanded FIFO(d) cell.

    Timing-equivalent to a chain of ``d`` identity cells.  The chain has
    ``d - 1`` *internal* arcs (the input and output arcs belong to the
    surrounding graph), so the state keeps ``d - 1`` slots; tokens
    advance one slot per step when the next slot was free at the start
    of the step, adding exactly ``d`` steps of latency end to end.
    """

    __slots__ = ("slots",)

    def __init__(self, depth: int) -> None:
        self.slots: list[Any] = [_ABSENT] * (depth - 1)

    @property
    def occupancy(self) -> int:
        return sum(1 for s in self.slots if s is not _ABSENT)


class SyncSimulator:
    """Run a :class:`DataflowGraph` under the unit-delay acknowledge model.

    Parameters
    ----------
    graph:
        The program to run.  Validated on construction.
    inputs:
        Mapping from stream key to the finite list of values each SOURCE
        (or AM_READ) cell with that key emits, in order.
    record_trace:
        Keep a per-step list of fired cell ids (memory-heavy; debugging).
    """

    def __init__(
        self,
        graph: DataflowGraph,
        inputs: Optional[dict[str, list[Any]]] = None,
        record_trace: bool = False,
    ) -> None:
        validate(graph)
        self.graph = graph
        self.inputs = {k: list(v) for k, v in (inputs or {}).items()}
        check_stream_inputs(graph, self.inputs)

        self.arc_value: dict[int, Any] = {}
        for arc in graph.arcs.values():
            self.arc_value[arc.aid] = arc.initial if arc.has_initial else _ABSENT

        self.source_pos: dict[int, int] = {}
        self.source_seq: dict[int, list[Any]] = {}
        self.sink_records: dict[int, SinkRecord] = {}
        self.fifo_state: dict[int, _FifoState] = {}
        for cell in graph:
            if cell.op in (Op.SOURCE, Op.AM_READ):
                seq = (
                    cell.params["values"]
                    if "values" in cell.params
                    else self.inputs[cell.params["stream"]]
                )
                self.source_seq[cell.cid] = seq
                self.source_pos[cell.cid] = 0
            elif cell.op in (Op.SINK, Op.AM_WRITE):
                self.sink_records[cell.cid] = SinkRecord(cell.params["stream"])
            elif cell.op is Op.FIFO:
                self.fifo_state[cell.cid] = _FifoState(cell.params["depth"])

        self.stats = SimStats(fire_counts={cid: 0 for cid in graph.cells})
        self.trace: Optional[list[list[int]]] = [] if record_trace else None
        self.step_count = 0
        self._candidates: set[int] = set(graph.cells)

    # ------------------------------------------------------------------
    # firing rules
    # ------------------------------------------------------------------
    def _peek(self, cid: int, port: int) -> Any:
        """Pre-state value on an operand port (const or arc token)."""
        cell = self.graph.cells[cid]
        if port in cell.consts:
            return cell.consts[port]
        arc = self.graph.in_arc.get((cid, port))
        if arc is None:
            return _ABSENT
        return self.arc_value[arc.aid]

    def _required_out_arcs(self, cell: Cell, gate_val: Any) -> list:
        """Destination arcs this firing would write (tag-matched)."""
        out = []
        for arc in self.graph.out_arcs[cell.cid]:
            if arc.tag is None or arc.tag == bool(gate_val):
                out.append(arc)
        return out

    def _try_fire(self, cell: Cell) -> Optional[tuple[list, list, Any]]:
        """Decide, from pre-state only, whether ``cell`` fires this step.

        Returns ``(consumed_arcs, written_arcs, result)`` or ``None``.
        ``result`` is the value routed to ``written_arcs`` (ignored for
        sinks).
        """
        op = cell.op
        g = self.graph

        # gate control ---------------------------------------------------
        gate_val: Any = None
        if cell.gated:
            gate_val = self._peek(cell.cid, GATE_PORT)
            if gate_val is _ABSENT:
                return None

        consumed = []
        if cell.gated and GATE_PORT not in cell.consts:
            consumed.append(g.in_arc[(cell.cid, GATE_PORT)])

        if op in (Op.SOURCE, Op.AM_READ):
            pos = self.source_pos[cell.cid]
            seq = self.source_seq[cell.cid]
            if pos >= len(seq):
                return None
            writes = self._required_out_arcs(cell, gate_val)
            if any(self.arc_value[a.aid] is not _ABSENT for a in writes):
                return None
            return (consumed, writes, seq[pos])

        if op is Op.CONST:
            writes = self._required_out_arcs(cell, gate_val)
            if any(self.arc_value[a.aid] is not _ABSENT for a in writes):
                return None
            return (consumed, writes, cell.params["value"])

        if op in (Op.SINK, Op.AM_WRITE):
            val = self._peek(cell.cid, 0)
            if val is _ABSENT:
                return None
            arc = g.in_arc.get((cell.cid, 0))
            if arc is not None:
                consumed.append(arc)
            return (consumed, [], val)

        if op is Op.MERGE:
            ctl = self._peek(cell.cid, MERGE_CONTROL_PORT)
            if ctl is _ABSENT:
                return None
            sel_port = MERGE_TRUE_PORT if bool(ctl) else MERGE_FALSE_PORT
            val = self._peek(cell.cid, sel_port)
            if val is _ABSENT:
                return None
            writes = self._required_out_arcs(cell, gate_val)
            if any(self.arc_value[a.aid] is not _ABSENT for a in writes):
                return None
            for port in (MERGE_CONTROL_PORT, sel_port):
                arc = g.in_arc.get((cell.cid, port))
                if arc is not None:
                    consumed.append(arc)
            return (consumed, writes, val)

        if op is Op.FIFO:
            # handled by _advance_fifo; never reaches here
            raise SimulationError("FIFO cells are advanced, not fired")

        # ordinary scalar operator / ID -----------------------------------
        args = []
        for port in cell.data_ports():
            val = self._peek(cell.cid, port)
            if val is _ABSENT:
                return None
            args.append(val)
        writes = self._required_out_arcs(cell, gate_val)
        if any(self.arc_value[a.aid] is not _ABSENT for a in writes):
            return None
        for port in cell.data_ports():
            arc = g.in_arc.get((cell.cid, port))
            if arc is not None:
                consumed.append(arc)
        if op is Op.ID:
            result = args[0]
        elif op in BINARY_OPS or op in UNARY_OPS:
            try:
                result = apply_scalar(op, args)
            except ZeroDivisionError as exc:
                raise SimulationError(
                    f"division by zero in cell {cell.label} at step "
                    f"{self.step_count}"
                ) from exc
        else:
            raise SimulationError(f"cannot execute opcode {op!r}")
        return (consumed, writes, result)

    def _advance_fifo(self, cell: Cell) -> tuple[list, list, list[tuple[int, Any]]]:
        """Plan one step of a FIFO shift register from pre-state.

        Returns (consumed_arcs, written_arc_values, slot_updates) where
        ``written_arc_values`` is a list of (arc, value) pairs and
        ``slot_updates`` of (slot index, new value | _ABSENT).
        """
        st = self.fifo_state[cell.cid]
        g = self.graph
        consumed: list = []
        writes: list[tuple[Any, Any]] = []
        updates: list[tuple[int, Any]] = []
        n_slots = len(st.slots)
        out = g.out_arcs[cell.cid]
        in_arc = g.in_arc.get((cell.cid, 0))
        out_free = all(self.arc_value[a.aid] is _ABSENT for a in out)

        if n_slots == 0:
            # depth 1: a single identity cell, input arc straight to output.
            if in_arc is not None:
                val = self.arc_value[in_arc.aid]
                if val is not _ABSENT and out_free:
                    consumed.append(in_arc)
                    for a in out:
                        writes.append((a, val))
            return (consumed, writes, updates)

        # Tail slot -> output arcs (the last ID cell of the chain firing).
        tail = st.slots[n_slots - 1]
        if tail is not _ABSENT and out_free:
            for a in out:
                writes.append((a, tail))
            updates.append((n_slots - 1, _ABSENT))

        # Interior shifts, decided on pre-state occupancy only.
        for j in range(n_slots - 2, -1, -1):
            here = st.slots[j]
            if here is not _ABSENT and st.slots[j + 1] is _ABSENT:
                updates.append((j + 1, here))
                updates.append((j, _ABSENT))

        # Input arc -> head slot (the first ID cell firing).
        if in_arc is not None:
            val = self.arc_value[in_arc.aid]
            if val is not _ABSENT and st.slots[0] is _ABSENT:
                consumed.append(in_arc)
                updates.append((0, val))
        return (consumed, writes, updates)

    # ------------------------------------------------------------------
    # stepping
    # ------------------------------------------------------------------
    def step(self) -> int:
        """Advance one instruction time.  Returns the number of firings."""
        g = self.graph
        firings: list[tuple[Cell, list, list, Any]] = []
        fifo_plans: list[tuple[Cell, list, list, list]] = []

        candidates = self._candidates
        for cid in sorted(candidates):
            cell = g.cells.get(cid)
            if cell is None:
                continue
            if cell.op is Op.FIFO:
                consumed, writes, updates = self._advance_fifo(cell)
                if consumed or writes or updates:
                    fifo_plans.append((cell, consumed, writes, updates))
            else:
                plan = self._try_fire(cell)
                if plan is not None:
                    firings.append((cell, plan[0], plan[1], plan[2]))

        changed_arcs: set[int] = set()
        n_fired = 0

        # Apply phase: consumptions first, then productions.  No conflicts
        # are possible (an arc written must have been empty at pre-state,
        # so it is not simultaneously consumed).
        for cell, consumed, writes, result in firings:
            n_fired += 1
            self.stats.fire_counts[cell.cid] += 1
            for arc in consumed:
                self.arc_value[arc.aid] = _ABSENT
                changed_arcs.add(arc.aid)
            if cell.op in (Op.SOURCE, Op.AM_READ):
                self.source_pos[cell.cid] += 1
            elif cell.op in (Op.SINK, Op.AM_WRITE):
                rec = self.sink_records[cell.cid]
                rec.values.append(result)
                rec.times.append(self.step_count)
            for arc in writes:
                self.arc_value[arc.aid] = result
                changed_arcs.add(arc.aid)

        active_fifos: set[int] = set()
        for cell, consumed, writes, updates in fifo_plans:
            st = self.fifo_state[cell.cid]
            moved = bool(consumed or writes or updates)
            if moved:
                n_fired += 1
                self.stats.fire_counts[cell.cid] += 1
            for arc in consumed:
                self.arc_value[arc.aid] = _ABSENT
                changed_arcs.add(arc.aid)
            for arc, value in writes:
                self.arc_value[arc.aid] = value
                changed_arcs.add(arc.aid)
            for slot, value in updates:
                st.slots[slot] = value
            if st.occupancy:
                active_fifos.add(cell.cid)

        # Next-step candidates: cells adjacent to any changed arc, plus
        # FIFOs still holding tokens (they advance without arc activity),
        # plus sources that fired (they self-retrigger when arcs free --
        # covered by arc changes) -- see DESIGN.md.
        nxt: set[int] = set(active_fifos)
        for cid, fs in self.fifo_state.items():
            if fs.occupancy:
                nxt.add(cid)
        for aid in changed_arcs:
            arc = g.arcs[aid]
            nxt.add(arc.src)
            nxt.add(arc.dst)
        self._candidates = nxt

        if self.trace is not None:
            self.trace.append([c.cid for c, *_ in firings])
        self.step_count += 1
        self.stats.steps = self.step_count
        self.stats.total_firings += n_fired
        return n_fired

    def run(
        self,
        max_steps: int = 1_000_000,
        raise_on_deadlock: bool = True,
    ) -> SimStats:
        """Run to quiescence (no enabled cells) or until ``max_steps``.

        Raises :class:`DeadlockError` if the graph quiesces while some
        SINK with a declared ``limit`` is still short of tokens -- the
        paper's "jam" condition.
        """
        while self.step_count < max_steps:
            if self.step() == 0:
                break
        else:
            # Budget exhausted -- but a graph whose final firing landed
            # exactly on the last allowed step has quiesced, not timed
            # out.  Probe enabledness from pre-state (no step consumed)
            # before declaring an overrun.
            if self._any_enabled():
                raise SimulationTimeout(
                    f"simulation did not quiesce within {max_steps} steps",
                    cycles=self.step_count,
                    stats=self.stats,
                    sink_progress={
                        self.graph.cells[cid].params["stream"]: (
                            len(rec.values),
                            self.graph.cells[cid].params.get("limit"),
                        )
                        for cid, rec in self.sink_records.items()
                    },
                )
        if raise_on_deadlock:
            self._check_complete()
        return self.stats

    def _any_enabled(self) -> bool:
        """Whether any cell (or FIFO shift) could act next step.

        Read-only: reuses the pre-state firing planners without
        applying them.  A cell whose firing would raise (e.g. division
        by zero on the next step) counts as enabled -- the graph has
        not quiesced either way.
        """
        for cid in sorted(self._candidates):
            cell = self.graph.cells.get(cid)
            if cell is None:
                continue
            if cell.op is Op.FIFO:
                consumed, writes, updates = self._advance_fifo(cell)
                if consumed or writes or updates:
                    return True
            else:
                try:
                    if self._try_fire(cell) is not None:
                        return True
                except SimulationError:
                    return True
        return False

    def _check_complete(self) -> None:
        pending = 0
        for cid, rec in self.sink_records.items():
            limit = self.graph.cells[cid].params.get("limit")
            if limit is not None and len(rec.values) < limit:
                pending += limit - len(rec.values)
        if pending:
            raise DeadlockError(
                f"quiescent at step {self.step_count} with {pending} expected "
                f"output tokens missing (jammed or starved pipeline); "
                f"blocked cells: {self._blocked_report()}",
                step=self.step_count,
                pending=pending,
            )

    def _blocked_report(self, limit: int = 5) -> str:
        """Short description of cells holding unconsumed inputs (debugging)."""
        blocked = []
        for cell in self.graph:
            for port in cell.all_ports():
                arc = self.graph.in_arc.get((cell.cid, port))
                if arc is not None and self.arc_value[arc.aid] is not _ABSENT:
                    blocked.append(cell.label)
                    break
        head = blocked[:limit]
        more = f" (+{len(blocked) - limit} more)" if len(blocked) > limit else ""
        return ", ".join(head) + more if head else "none"

    # ------------------------------------------------------------------
    # results
    # ------------------------------------------------------------------
    def outputs(self) -> dict[str, list[Any]]:
        """Collected sink streams keyed by stream name."""
        out: dict[str, list[Any]] = {}
        for rec in self.sink_records.values():
            if rec.stream in out:
                raise GraphError(f"duplicate sink stream {rec.stream!r}")
            out[rec.stream] = rec.values
        return out

    def sink_record(self, stream: str) -> SinkRecord:
        for rec in self.sink_records.values():
            if rec.stream == stream:
                return rec
        raise GraphError(f"no sink records stream {stream!r}")
