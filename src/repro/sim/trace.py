"""Trace formatting, event capture and utilization reporting.

These helpers turn raw simulator state into human-readable reports; the
examples use them to show the pipeline filling and draining the way
Figure 2 of the paper describes.  :class:`EventCapture` and
:func:`first_divergence` are the shared forensics primitives: the
machine-level simulator records executed events into a capture during a
replay-bisection window, and the diff pinpoints the first event where
two executions drifted apart.
"""

from __future__ import annotations

from typing import Any, Optional, Sequence

from ..graph.graph import DataflowGraph
from ..graph.opcodes import Op
from .sync import SimStats, SyncSimulator


class EventCapture:
    """Bounded capture of executed simulator events.

    Attached to :attr:`repro.machine.Machine.capture` while re-running
    one divergence window, it records every executed non-auxiliary
    event ``(time, kind, args)`` from ``start_cycle`` on, up to
    ``limit`` events (``truncated`` flags an overflowing window).
    Unlike :class:`repro.checkpoint.EventTrace` -- which compresses the
    whole run into one chained digest plus a short tail -- a capture
    keeps the events themselves, so two captures of the same window can
    be diffed event by event.
    """

    __slots__ = ("start_cycle", "limit", "events", "truncated")

    def __init__(self, start_cycle: int = 0, limit: int = 200_000) -> None:
        self.start_cycle = start_cycle
        self.limit = limit
        self.events: list[tuple[int, str, tuple]] = []
        self.truncated = False

    def record(self, time: int, kind: str, args: tuple) -> None:
        if time < self.start_cycle:
            return
        if len(self.events) >= self.limit:
            self.truncated = True
            return
        self.events.append((time, kind, args))

    def formatted(self) -> list[str]:
        """The captured events in the ``time:kind:args`` text form the
        :class:`~repro.checkpoint.EventTrace` tail uses."""
        return [format_event(e) for e in self.events]


def format_event(event: tuple[int, str, tuple]) -> str:
    time, kind, args = event
    return f"{time}:{kind}:{args!r}"


def first_divergence(
    a: Sequence[Any], b: Sequence[Any]
) -> Optional[int]:
    """Index of the first position where two event sequences differ.

    Returns the length of the shorter sequence when one is a strict
    prefix of the other, and ``None`` when they are identical.
    """
    n = min(len(a), len(b))
    for i in range(n):
        if a[i] != b[i]:
            return i
    return n if len(a) != len(b) else None


def format_trace(
    sim: SyncSimulator,
    first: int = 0,
    last: Optional[int] = None,
    width: int = 72,
) -> str:
    """Render the firing trace as one line per step (needs
    ``record_trace=True`` on the simulator)."""
    if sim.trace is None:
        raise ValueError("simulator was not created with record_trace=True")
    g = sim.graph
    lines = []
    window = sim.trace[first:last]
    for offset, fired in enumerate(window):
        labels = ", ".join(g.cells[cid].label for cid in fired)
        if len(labels) > width:
            labels = labels[: width - 3] + "..."
        lines.append(f"t={first + offset:5d}  {labels or '-'}")
    return "\n".join(lines)


def utilization_report(graph: DataflowGraph, stats: SimStats, top: int = 0) -> str:
    """Tabulate per-cell firing counts and utilization.

    Utilization is the fraction of the maximum rate (one firing per two
    instruction times); a fully pipelined graph shows ~1.0 on every cell
    of the steady-state path.
    """
    rows = []
    for cell in graph:
        fires = stats.fire_counts.get(cell.cid, 0)
        rows.append((stats.utilization(cell.cid), fires, cell))
    rows.sort(key=lambda r: (-r[0], r[2].cid))
    if top:
        rows = rows[:top]
    lines = [f"{'cell':<24}{'op':<10}{'fires':>8}{'util':>8}"]
    for util, fires, cell in rows:
        lines.append(
            f"{cell.label:<24}{cell.op.value:<10}{fires:>8}{util:>8.2f}"
        )
    return "\n".join(lines)


def occupancy_snapshot(sim: SyncSimulator) -> dict[str, int]:
    """Current token population by region (arcs vs FIFO interiors)."""
    from ..graph.cell import _NO_TOKEN

    on_arcs = sum(1 for v in sim.arc_value.values() if v is not _NO_TOKEN)
    in_fifos = sum(st.occupancy for st in sim.fifo_state.values())
    return {"arcs": on_arcs, "fifos": in_fifos, "total": on_arcs + in_fifos}


def count_stage_depth(graph: DataflowGraph) -> int:
    """Longest acyclic path length in cells (pipeline depth), counting a
    FIFO(d) as d stages; raises on cyclic graphs."""
    order = graph.topo_order()
    depth: dict[int, int] = {}
    best = 0
    for cid in order:
        cell = graph.cells[cid]
        weight = cell.params.get("depth", 1) if cell.op is Op.FIFO else 1
        start = 0
        for arc in graph.in_arcs_of(cid):
            start = max(start, depth.get(arc.src, 0))
        depth[cid] = start + weight
        best = max(best, depth[cid])
    return best
