"""Trace formatting and utilization reporting for simulator runs.

These helpers turn raw :class:`~repro.sim.sync.SyncSimulator` state into
human-readable reports; the examples use them to show the pipeline
filling and draining the way Figure 2 of the paper describes.
"""

from __future__ import annotations

from typing import Optional

from ..graph.graph import DataflowGraph
from ..graph.opcodes import Op
from .sync import SimStats, SyncSimulator


def format_trace(
    sim: SyncSimulator,
    first: int = 0,
    last: Optional[int] = None,
    width: int = 72,
) -> str:
    """Render the firing trace as one line per step (needs
    ``record_trace=True`` on the simulator)."""
    if sim.trace is None:
        raise ValueError("simulator was not created with record_trace=True")
    g = sim.graph
    lines = []
    window = sim.trace[first:last]
    for offset, fired in enumerate(window):
        labels = ", ".join(g.cells[cid].label for cid in fired)
        if len(labels) > width:
            labels = labels[: width - 3] + "..."
        lines.append(f"t={first + offset:5d}  {labels or '-'}")
    return "\n".join(lines)


def utilization_report(graph: DataflowGraph, stats: SimStats, top: int = 0) -> str:
    """Tabulate per-cell firing counts and utilization.

    Utilization is the fraction of the maximum rate (one firing per two
    instruction times); a fully pipelined graph shows ~1.0 on every cell
    of the steady-state path.
    """
    rows = []
    for cell in graph:
        fires = stats.fire_counts.get(cell.cid, 0)
        rows.append((stats.utilization(cell.cid), fires, cell))
    rows.sort(key=lambda r: (-r[0], r[2].cid))
    if top:
        rows = rows[:top]
    lines = [f"{'cell':<24}{'op':<10}{'fires':>8}{'util':>8}"]
    for util, fires, cell in rows:
        lines.append(
            f"{cell.label:<24}{cell.op.value:<10}{fires:>8}{util:>8.2f}"
        )
    return "\n".join(lines)


def occupancy_snapshot(sim: SyncSimulator) -> dict[str, int]:
    """Current token population by region (arcs vs FIFO interiors)."""
    from ..graph.cell import _NO_TOKEN

    on_arcs = sum(1 for v in sim.arc_value.values() if v is not _NO_TOKEN)
    in_fifos = sum(st.occupancy for st in sim.fifo_state.values())
    return {"arcs": on_arcs, "fifos": in_fifos, "total": on_arcs + in_fifos}


def count_stage_depth(graph: DataflowGraph) -> int:
    """Longest acyclic path length in cells (pipeline depth), counting a
    FIFO(d) as d stages; raises on cyclic graphs."""
    order = graph.topo_order()
    depth: dict[int, int] = {}
    best = 0
    for cid in order:
        cell = graph.cells[cid]
        weight = cell.params.get("depth", 1) if cell.op is Op.FIFO else 1
        start = 0
        for arc in graph.in_arcs_of(cid):
            start = max(start, depth.get(arc.src, 0))
        depth[cid] = start + weight
        best = max(best, depth[cid])
    return best
