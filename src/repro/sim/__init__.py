"""Simulators for machine-level dataflow programs.

* :mod:`repro.sim.sync` -- the unit-delay ("instruction time")
  simulator whose timing the paper's rate arguments assume;
* :mod:`repro.sim.runner` -- run-to-completion convenience wrapper;
* :mod:`repro.sim.trace` -- trace/utilization reporting.

The event-driven machine-level model (processing elements, function
units, array memories, routing networks) lives in :mod:`repro.machine`.
"""

from .runner import RunResult, measure_initiation_interval, run_graph
from .sync import SimStats, SinkRecord, SyncSimulator
from .trace import (
    count_stage_depth,
    format_trace,
    occupancy_snapshot,
    utilization_report,
)

__all__ = [
    "RunResult",
    "SimStats",
    "SinkRecord",
    "SyncSimulator",
    "count_stage_depth",
    "format_trace",
    "measure_initiation_interval",
    "occupancy_snapshot",
    "run_graph",
    "utilization_report",
]
