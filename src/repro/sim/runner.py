"""Convenience front end for running compiled graphs.

:func:`run_graph` wraps :class:`~repro.sim.sync.SyncSimulator` with the
common protocol used by tests, examples and benchmarks: feed finite
input streams, run to quiescence, collect output streams, and report
throughput figures.

Deprecated as a public entry point in favor of the backend-unified
:func:`repro.run` facade (``backend="sync"``); kept as a thin wrapper.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Any, Optional

from ..graph.graph import DataflowGraph
from .sync import SimStats, SinkRecord, SyncSimulator


@dataclass
class RunResult:
    """Outcome of one end-to-end run."""

    outputs: dict[str, list[Any]]
    stats: SimStats
    sink_records: dict[str, SinkRecord] = field(default_factory=dict)

    def initiation_interval(self, stream: Optional[str] = None) -> float:
        """Steady-state steps between successive outputs of ``stream``
        (the only output stream when omitted).  2.0 == fully pipelined."""
        rec = self._record(stream)
        return rec.initiation_interval()

    def throughput(self, stream: Optional[str] = None) -> float:
        """Results per instruction time for ``stream`` (max 0.5)."""
        ii = self.initiation_interval(stream)
        return 1.0 / ii if ii and ii == ii else 0.0

    def latency(self, stream: Optional[str] = None) -> int:
        """Step at which the first output of ``stream`` arrived."""
        rec = self._record(stream)
        return rec.times[0] if rec.times else -1

    def _record(self, stream: Optional[str]) -> SinkRecord:
        if stream is None:
            if len(self.sink_records) != 1:
                raise ValueError(
                    f"stream must be named; outputs: {sorted(self.sink_records)}"
                )
            return next(iter(self.sink_records.values()))
        return self.sink_records[stream]


def _run_graph(
    graph: DataflowGraph,
    inputs: Optional[dict[str, list[Any]]] = None,
    max_steps: int = 1_000_000,
    raise_on_deadlock: bool = True,
    record_trace: bool = False,
) -> RunResult:
    """Simulate ``graph`` on ``inputs`` until quiescent and collect results."""
    sim = SyncSimulator(graph, inputs, record_trace=record_trace)
    sim.run(max_steps=max_steps, raise_on_deadlock=raise_on_deadlock)
    by_stream = {rec.stream: rec for rec in sim.sink_records.values()}
    return RunResult(
        outputs=sim.outputs(),
        stats=sim.stats,
        sink_records=by_stream,
    )


def run_graph(
    graph: DataflowGraph,
    inputs: Optional[dict[str, list[Any]]] = None,
    max_steps: int = 1_000_000,
    raise_on_deadlock: bool = True,
    record_trace: bool = False,
) -> RunResult:
    """Deprecated: use ``repro.run(graph, inputs, backend="sync")``."""
    warnings.warn(
        "run_graph() is deprecated; use repro.run(..., backend='sync')",
        DeprecationWarning,
        stacklevel=2,
    )
    return _run_graph(
        graph,
        inputs,
        max_steps=max_steps,
        raise_on_deadlock=raise_on_deadlock,
        record_trace=record_trace,
    )


def measure_initiation_interval(
    graph: DataflowGraph,
    inputs: dict[str, list[Any]],
    stream: Optional[str] = None,
    max_steps: int = 1_000_000,
) -> float:
    """Shorthand: run and return the steady-state initiation interval."""
    return _run_graph(graph, inputs, max_steps=max_steps).initiation_interval(
        stream
    )
