"""Batching scheduler: when to multiplex jobs through one loop.

PAPER section 9's observation -- ``b`` independent recurrence
instances interleaved through one loop run at full pipeline rate --
is a throughput lever, but forming a batch costs latency (waiting for
companions) and couples failure domains.  The planner therefore:

* groups queued jobs by :func:`~repro.serve.jobs.signature` (same
  program, params and stream lengths = can share a compiled loop);
* batches a group only when at least ``min_batch`` jobs are waiting
  **and** the batch's estimated completion violates no member's
  deadline (estimate = seeded EMA of observed per-batch service time,
  conservative before first observation);
* otherwise degrades gracefully to serial execution, deadline-tightest
  first.

All state is plain data and the decision function is synchronous, so
the policy is unit-testable without a running daemon.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Optional

from .admission import AdmissionQueue, JobState
from . import jobs


@dataclass
class SchedulerConfig:
    min_batch: int = 2
    max_batch: int = 8
    #: seconds a lone batchable job lingers for companions before it
    #: is dispatched serially anyway (0 disables lingering)
    batch_wait: float = 0.02
    #: EMA smoothing for service-time estimates
    ema_alpha: float = 0.3
    #: conservative prior for a never-seen signature, seconds
    default_seconds: float = 0.25


@dataclass
class Dispatch:
    """One planner decision: a serial job or an interleaved batch."""

    states: list[JobState]
    batched: bool

    @property
    def ids(self) -> list[str]:
        return [s.spec.id for s in self.states]


class CostModel:
    """Seeded EMA of observed service seconds, per scope key."""

    def __init__(self, alpha: float, default: float) -> None:
        self.alpha = alpha
        self.default = default
        self._ema: dict[str, float] = {}

    def estimate(self, key: str) -> float:
        return self._ema.get(key, self.default)

    def observe(self, key: str, seconds: float) -> None:
        prev = self._ema.get(key)
        if prev is None:
            self._ema[key] = seconds
        else:
            self._ema[key] = (
                self.alpha * seconds + (1 - self.alpha) * prev
            )

    def mean(self) -> float:
        if not self._ema:
            return self.default
        return sum(self._ema.values()) / len(self._ema)


class BatchPlanner:
    """Drains an :class:`AdmissionQueue` into dispatch decisions."""

    def __init__(self, config: SchedulerConfig,
                 clock: Callable[[], float] = time.monotonic) -> None:
        self.config = config
        self.clock = clock
        #: per-signature serial cost ("sig") and per-batch cost
        #: ("sig@b"), seconds
        self.costs = CostModel(config.ema_alpha, config.default_seconds)
        #: signature -> monotonic time its current lone job started
        #: waiting for companions
        self._lingering: dict[str, float] = {}

    # -- cost bookkeeping ---------------------------------------------
    @staticmethod
    def _batch_key(sig: str, size: int) -> str:
        return f"{sig}@{size}"

    def observe(self, dispatch: Dispatch, seconds: float) -> None:
        sig = jobs.signature(dispatch.states[0].spec)
        if dispatch.batched:
            self.costs.observe(
                self._batch_key(sig, len(dispatch.states)), seconds
            )
        else:
            self.costs.observe(sig, seconds)

    def _batch_estimate(self, sig: str, size: int) -> float:
        key = self._batch_key(sig, size)
        if key in self.costs._ema:
            return self.costs.estimate(key)
        # prior: a batch of b costs at most b serial runs (the whole
        # point is that it costs much less), so this only delays the
        # first batch when deadlines are already tight
        return self.costs.estimate(sig) * size

    # -- planning ------------------------------------------------------
    def plan(self, queue: AdmissionQueue) -> list[Dispatch]:
        """Remove ready work from ``queue`` and decide its shape."""
        now = self.clock()
        dispatches: list[Dispatch] = []

        # non-batchable jobs go serial immediately, FIFO
        for state in queue.take_matching(
            lambda s: not jobs.batchable(s.spec), limit=queue.capacity
        ):
            dispatches.append(Dispatch([state], batched=False))

        # group the batchable ones by signature without removing yet
        groups: dict[str, list[JobState]] = {}
        for state in list(queue._queue):
            sig = jobs.signature(state.spec)
            groups.setdefault(sig, []).append(state)

        for sig, members in groups.items():
            cfg = self.config
            size = min(len(members), cfg.max_batch)
            if size >= cfg.min_batch:
                est = self._batch_estimate(sig, size)
                safe = all(
                    m.remaining(now) > est for m in members[:size]
                )
                if safe:
                    chosen = {id(m) for m in members[:size]}
                    taken = queue.take_matching(
                        lambda s: id(s) in chosen, limit=size
                    )
                    self._lingering.pop(sig, None)
                    dispatches.append(Dispatch(taken, batched=True))
                    continue
                # batching would blow a deadline: degrade to serial,
                # tightest deadline first
                chosen = {id(m) for m in members}
                taken = queue.take_matching(
                    lambda s: id(s) in chosen, limit=len(members)
                )
                taken.sort(key=lambda s: s.deadline)
                self._lingering.pop(sig, None)
                dispatches.extend(
                    Dispatch([t], batched=False) for t in taken
                )
                continue
            # a lone batchable job: linger briefly for companions,
            # unless waiting would eat its deadline slack
            state = members[0]
            est = self.costs.estimate(sig)
            slack = state.remaining(now) - est
            since = self._lingering.setdefault(sig, now)
            if (cfg.batch_wait > 0
                    and now - since < cfg.batch_wait
                    and slack > cfg.batch_wait):
                continue  # keep it queued one more tick
            chosen = {id(state)}
            taken = queue.take_matching(lambda s: id(s) in chosen, limit=1)
            self._lingering.pop(sig, None)
            if taken:
                dispatches.append(Dispatch(taken, batched=False))
        return dispatches
