"""Supervised worker pool: the daemon's fault-isolation boundary.

Jobs never execute in the daemon process.  Each worker is a child
process speaking NDJSON over stdin/stdout; a job that kills or hangs
its worker (injectable via FaultPlan schema 2 ``kill_shard`` /
``hang_shard`` with ``shard`` = attempt index) costs exactly one
worker, which the pool respawns -- the daemon and every other tenant's
job are untouched.

The escalation policy mirrors :class:`~repro.checkpoint.supervisor.
Supervisor` one level up, via the shared
:class:`~repro.checkpoint.supervisor.BackoffPolicy`: worker respawns
are immediate (capacity must come back), but a *job* whose attempt was
lost to worker failure retries after a seeded-jitter backoff, at most
``max_retries`` times, then fails with a typed
:class:`~repro.serve.protocol.JobRetriesExhausted` -- the pool-level
analogue of the supervisor's two-strike poisoned-snapshot quarantine.
"""

from __future__ import annotations

import asyncio
import os
import signal
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Optional

from ..checkpoint.supervisor import BackoffPolicy
from .protocol import MAX_LINE_BYTES, decode_line, encode_line


class WorkerFailure(Exception):
    """A worker died or stopped responding while holding a job.

    Not a :class:`~repro.errors.ReproError`: this is the pool's
    internal retry signal, turned into a typed job error only when the
    retry budget runs out.
    """

    def __init__(self, kind: str, detail: str) -> None:
        self.kind = kind            # "crash" | "hang"
        self.detail = detail
        super().__init__(f"worker {kind}: {detail}")


@dataclass
class PoolConfig:
    workers: int = 2
    #: hard ceiling on one worker call when the job's own deadline is
    #: longer (hang detection of jobs with lazy deadlines)
    call_deadline: float = 60.0
    #: ceiling on the post-spawn ping handshake -- interpreter startup
    #: can dwarf ``call_deadline`` on a loaded box, and a cold worker
    #: must never be mistaken for a hung one
    warmup_deadline: float = 60.0
    backoff: BackoffPolicy = field(
        default_factory=lambda: BackoffPolicy(base=0.05, max_delay=2.0)
    )
    seed: int = 0


class _Worker:
    """One child process; at most one in-flight call at a time."""

    def __init__(self, index: int, env: dict[str, str]) -> None:
        self.index = index
        self.env = env
        self.proc: Optional[asyncio.subprocess.Process] = None
        self.calls = 0

    @property
    def pid(self) -> Optional[int]:
        return self.proc.pid if self.proc is not None else None

    @property
    def alive(self) -> bool:
        return self.proc is not None and self.proc.returncode is None

    async def start(self) -> None:
        self.proc = await asyncio.create_subprocess_exec(
            sys.executable, "-m", "repro.serve.worker",
            stdin=asyncio.subprocess.PIPE,
            stdout=asyncio.subprocess.PIPE,
            env=self.env,
            limit=MAX_LINE_BYTES + 1024,
        )

    async def call(self, payload: dict[str, Any],
                   timeout: float) -> dict[str, Any]:
        """One request/reply round; raises :class:`WorkerFailure` on
        death (EOF) or unresponsiveness (timeout)."""
        assert self.proc is not None
        self.calls += 1
        try:
            self.proc.stdin.write(encode_line(payload))
            await self.proc.stdin.drain()
        except (ConnectionResetError, BrokenPipeError, OSError) as exc:
            raise WorkerFailure("crash", f"write failed: {exc}") from exc
        try:
            line = await asyncio.wait_for(
                self.proc.stdout.readline(), timeout=max(0.01, timeout)
            )
        except asyncio.TimeoutError:
            raise WorkerFailure(
                "hang", f"no reply within {timeout:.2f}s"
            ) from None
        if not line:
            code = self.proc.returncode
            raise WorkerFailure("crash", f"worker exited (code {code})")
        return decode_line(line)

    async def stop(self, *, kill: bool = False) -> None:
        if self.proc is None:
            return
        if self.proc.returncode is None:
            try:
                if kill:
                    self.proc.kill()
                else:
                    self.proc.terminate()
            except ProcessLookupError:
                pass
        try:
            await asyncio.wait_for(self.proc.wait(), timeout=5.0)
        except asyncio.TimeoutError:
            try:
                self.proc.kill()
            except ProcessLookupError:
                pass
            await self.proc.wait()


class WorkerPool:
    """Fixed-size pool of resident workers with respawn-on-failure."""

    def __init__(self, config: PoolConfig) -> None:
        self.config = config
        self.respawns = 0
        self._workers: list[_Worker] = []
        self._free: asyncio.Queue = asyncio.Queue()
        self._respawn_tasks: set = set()
        self._env = self._child_env()
        self._closed = False

    @staticmethod
    def _child_env() -> dict[str, str]:
        # children must import repro even when the daemon itself was
        # launched with an ad-hoc PYTHONPATH (same dance as the
        # checkpoint supervisor)
        import repro

        env = dict(os.environ)
        pkg_root = str(Path(repro.__file__).resolve().parent.parent)
        parts = env.get("PYTHONPATH", "").split(os.pathsep)
        if pkg_root not in parts:
            env["PYTHONPATH"] = os.pathsep.join(
                [pkg_root] + [p for p in parts if p]
            )
        return env

    @property
    def alive(self) -> int:
        return sum(1 for w in self._workers if w.alive)

    @property
    def size(self) -> int:
        return self.config.workers

    async def _warm(self, worker: _Worker) -> None:
        """Spawn + ping before a worker is offered to callers, so a
        slow interpreter start never counts against a job's deadline."""
        await worker.start()
        await worker.call(
            {"op": "ping"}, timeout=self.config.warmup_deadline
        )

    async def start(self) -> None:
        self._workers = [
            _Worker(index, self._env)
            for index in range(self.config.workers)
        ]
        await asyncio.gather(*(self._warm(w) for w in self._workers))
        for worker in self._workers:
            self._free.put_nowait(worker)

    async def _respawn(self, worker: _Worker) -> None:
        try:
            await self._warm(worker)
        except (WorkerFailure, OSError):
            if self._closed:
                return
            # hand it back anyway: the next caller's failure path will
            # retry the respawn rather than silently shrinking the pool
            pass
        if not self._closed:
            self._free.put_nowait(worker)

    async def stop(self) -> None:
        self._closed = True
        for task in list(self._respawn_tasks):
            task.cancel()
        if self._respawn_tasks:
            await asyncio.gather(
                *self._respawn_tasks, return_exceptions=True
            )
        await asyncio.gather(
            *(w.stop(kill=True) for w in self._workers),
            return_exceptions=True,
        )

    def signal_workers(self, signum: int) -> int:
        """Forward a signal (SIGUSR1 for live snapshots) to every live
        worker; returns how many were signalled."""
        count = 0
        for worker in self._workers:
            if worker.alive:
                try:
                    os.kill(worker.pid, signum)
                    count += 1
                except (ProcessLookupError, OSError):
                    pass
        return count

    async def execute(self, payload: dict[str, Any],
                      timeout: float) -> dict[str, Any]:
        """Run one call on the next free worker.

        On worker failure the dead/hung worker is killed and respawned
        (so pool capacity recovers immediately) and the
        :class:`WorkerFailure` propagates -- the *caller* owns the
        job-level retry/backoff/exhaustion policy.
        """
        timeout = min(timeout, self.config.call_deadline)
        worker: _Worker = await self._free.get()
        try:
            reply = await worker.call(payload, timeout)
        except WorkerFailure:
            await worker.stop(kill=True)
            if not self._closed:
                self.respawns += 1
                # re-warm in the background so the failure surfaces to
                # the caller immediately; the worker rejoins the free
                # queue only once its ping answers
                task = asyncio.create_task(self._respawn(worker))
                self._respawn_tasks.add(task)
                task.add_done_callback(self._respawn_tasks.discard)
            raise
        else:
            self._free.put_nowait(worker)
            return reply
