"""Wire protocol and typed job lifecycle errors for ``repro serve``.

One request or reply is one newline-terminated JSON object (NDJSON),
bounded in size so a misbehaving client cannot balloon the daemon's
memory.  Replies reuse the CLI's stable ``--json`` envelope shape
(``{"schema", "command", "ok", "result"}``, schema
:data:`~repro.api.RESULT_SCHEMA`), so a socket client and
``repro run --json`` parse the same way.

Every way a job can fail *as a job* (as opposed to an execution error
inside the pipeline) is a typed :class:`ServeError` subclass with a
stable ``code``; errors round-trip through :meth:`ServeError.to_dict` /
:func:`error_from_dict` so clients re-raise the same type the server
raised.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Optional

from ..api import RESULT_SCHEMA
from ..errors import ReproError
from ..faults import FaultPlan

#: hard bound on one NDJSON line (request or reply), in bytes
MAX_LINE_BYTES = 8 * 1024 * 1024

#: job kinds the server executes
JOB_KINDS = ("run", "foriter")

#: operations a connection may request
OPS = ("submit", "wait", "submit_wait", "healthz", "stats", "shutdown")


# ---------------------------------------------------------------------------
# typed errors
# ---------------------------------------------------------------------------
class ServeError(ReproError):
    """Base class for job lifecycle errors; ``code`` is wire-stable."""

    code = "serve_error"
    #: whether retrying the same request later can help
    retryable = False

    def __init__(self, message: str, **extras: Any) -> None:
        self.extras = extras
        super().__init__(message)

    def to_dict(self) -> dict[str, Any]:
        d = {"code": self.code, "message": str(self)}
        d.update(self.extras)
        return d


class JobRejected(ServeError):
    """The request itself is unusable (malformed spec, duplicate id,
    oversized frame, unknown op); resubmitting unchanged cannot help."""

    code = "rejected"


class ServerOverloaded(ServeError):
    """The bounded admission queue is full; the job was shed *before*
    acceptance.  ``retry_after`` (seconds) hints when capacity should
    free up, derived from queue depth and the observed service rate."""

    code = "overloaded"
    retryable = True

    def __init__(self, message: str, retry_after: float = 1.0,
                 queue_depth: int = 0, capacity: int = 0) -> None:
        super().__init__(
            message,
            retry_after=round(float(retry_after), 3),
            queue_depth=int(queue_depth),
            capacity=int(capacity),
        )

    @property
    def retry_after(self) -> float:
        return self.extras["retry_after"]


class JobDeadlineExceeded(ServeError):
    """The job's deadline elapsed (while queued, forming a batch, or
    running); any in-flight attempt was cancelled cooperatively."""

    code = "deadline"

    def __init__(self, message: str, job_id: str = "",
                 deadline: float = 0.0, elapsed: float = 0.0,
                 stage: str = "running") -> None:
        super().__init__(
            message,
            job_id=job_id,
            deadline=round(float(deadline), 3),
            elapsed=round(float(elapsed), 3),
            stage=stage,
        )


class JobRetriesExhausted(ServeError):
    """Every attempt of the job was lost to worker failure (crash or
    hang); the retry budget ran out.  Never silent: the last failure's
    description rides along as ``reason``."""

    code = "retries_exhausted"

    def __init__(self, message: str, job_id: str = "",
                 attempts: int = 0, reason: str = "") -> None:
        super().__init__(
            message, job_id=job_id, attempts=int(attempts), reason=reason
        )


class JobExecutionError(ServeError):
    """The pipeline itself raised a typed :class:`ReproError` (bad
    program, deadlock, ...).  Deterministic, so it is not retried."""

    code = "execution_error"

    def __init__(self, message: str, job_id: str = "",
                 error_type: str = "") -> None:
        super().__init__(message, job_id=job_id, error_type=error_type)


_ERROR_TYPES = {
    cls.code: cls
    for cls in (
        ServeError,
        JobRejected,
        ServerOverloaded,
        JobDeadlineExceeded,
        JobRetriesExhausted,
        JobExecutionError,
    )
}


def error_from_dict(data: dict[str, Any]) -> ServeError:
    """Rehydrate a typed error from its wire dict (inverse of
    :meth:`ServeError.to_dict`)."""
    if not isinstance(data, dict):
        return ServeError(f"malformed error payload: {data!r}")
    code = data.get("code", "serve_error")
    message = data.get("message", code)
    extras = {k: v for k, v in data.items() if k not in ("code", "message")}
    cls = _ERROR_TYPES.get(code)
    if cls is None:
        err = ServeError(message, **extras)
        err.code = str(code)
        return err
    try:
        return cls(message, **extras)
    except TypeError:
        err = ServeError(message, **extras)
        err.code = str(code)
        return err


# ---------------------------------------------------------------------------
# job specification
# ---------------------------------------------------------------------------
@dataclass
class JobSpec:
    """One unit of admitted work.

    ``kind``
        ``"foriter"`` -- a small recurrence program, eligible for
        interleaved batching (PAPER section 9); compiled with the Todd
        for-iter scheme so batched and serial execution are
        bit-identical.  ``"run"`` -- a general program executed through
        :func:`repro.run` with an explicit backend.
    ``deadline``
        Seconds from *acceptance* until the job must have completed;
        ``None`` means the server default applies.
    ``faults``
        Optional FaultPlan dict (schema 1 or 2).  Worker-level
        ``shard_faults`` entries are interpreted by the serve pool with
        ``shard`` meaning the job's 0-based *attempt* index (one-shot,
        consumed on that attempt); the packet/unit remainder is
        forwarded into execution, which forces the event backend.
    """

    id: str
    source: str
    kind: str = "foriter"
    tenant: str = "default"
    params: dict[str, int] = field(default_factory=dict)
    inputs: dict[str, list] = field(default_factory=dict)
    options: dict[str, Any] = field(default_factory=dict)
    deadline: Optional[float] = None
    faults: Optional[dict[str, Any]] = None

    _KNOWN = (
        "id", "source", "kind", "tenant", "params", "inputs",
        "options", "deadline", "faults",
    )

    def validate(self) -> None:
        if not self.id or not isinstance(self.id, str):
            raise JobRejected(f"job id must be a non-empty string, "
                              f"got {self.id!r}")
        if self.kind not in JOB_KINDS:
            raise JobRejected(
                f"unknown job kind {self.kind!r}; expected one of "
                f"{JOB_KINDS}"
            )
        if not isinstance(self.source, str) or not self.source.strip():
            raise JobRejected("job source must be non-empty Val text")
        if not isinstance(self.tenant, str) or not self.tenant:
            raise JobRejected(f"tenant must be a non-empty string, "
                              f"got {self.tenant!r}")
        if not isinstance(self.params, dict):
            raise JobRejected("params must be an object of name -> int")
        if not isinstance(self.inputs, dict):
            raise JobRejected("inputs must be an object of name -> list")
        for name, values in self.inputs.items():
            if not isinstance(values, list):
                raise JobRejected(
                    f"input {name!r} must be a list, got "
                    f"{type(values).__name__}"
                )
        if not isinstance(self.options, dict):
            raise JobRejected("options must be an object")
        if self.deadline is not None:
            try:
                deadline = float(self.deadline)
            except (TypeError, ValueError):
                raise JobRejected(
                    f"deadline must be a number of seconds, got "
                    f"{self.deadline!r}"
                ) from None
            if deadline <= 0:
                raise JobRejected(
                    f"deadline must be > 0 seconds, got {deadline}"
                )
            self.deadline = deadline
        if self.faults is not None:
            try:
                FaultPlan.from_dict(self.faults)
            except ReproError as exc:
                raise JobRejected(f"bad fault plan: {exc}") from exc

    def fault_plan(self) -> Optional[FaultPlan]:
        return FaultPlan.from_dict(self.faults) if self.faults else None

    def to_dict(self) -> dict[str, Any]:
        d: dict[str, Any] = {
            "id": self.id,
            "kind": self.kind,
            "tenant": self.tenant,
            "source": self.source,
            "params": dict(self.params),
            "inputs": {k: list(v) for k, v in self.inputs.items()},
        }
        if self.options:
            d["options"] = dict(self.options)
        if self.deadline is not None:
            d["deadline"] = self.deadline
        if self.faults is not None:
            d["faults"] = self.faults
        return d

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "JobSpec":
        if not isinstance(data, dict):
            raise JobRejected(f"job must be a JSON object, got {data!r}")
        extra = set(data) - set(cls._KNOWN)
        if extra:
            raise JobRejected(
                f"unknown job keys: {sorted(extra)} (expected a subset "
                f"of {sorted(cls._KNOWN)})"
            )
        if "id" not in data or "source" not in data:
            raise JobRejected("job needs at least 'id' and 'source'")
        spec = cls(**data)
        spec.validate()
        return spec


# ---------------------------------------------------------------------------
# framing
# ---------------------------------------------------------------------------
def envelope(op: str, ok: bool, result: Any) -> dict[str, Any]:
    """The CLI-compatible reply envelope."""
    return {"schema": RESULT_SCHEMA, "command": op, "ok": ok,
            "result": result}


def encode_line(obj: Any) -> bytes:
    """One compact NDJSON frame."""
    return json.dumps(obj, separators=(",", ":")).encode("utf-8") + b"\n"


def decode_line(line: bytes) -> Any:
    """Parse one frame, enforcing the size bound."""
    if len(line) > MAX_LINE_BYTES:
        raise JobRejected(
            f"request line of {len(line)} bytes exceeds the "
            f"{MAX_LINE_BYTES}-byte bound"
        )
    try:
        return json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise JobRejected(f"bad request JSON: {exc}") from exc
