"""Serve worker: the child process that actually runs jobs.

Protocol (NDJSON over stdin/stdout), one reply line per request line:

``{"op": "ping"}``
    -> ``{"ok": true, "pid": ...}`` -- liveness handshake.
``{"op": "job", "job": {...}, "inject": {...}|null}``
    -> ``{"ok": true, "id": ..., "result": {...}}`` or
    ``{"ok": false, "id": ..., "error": {...}}`` (a typed execution
    error: deterministic, the server does not retry it).
``{"op": "batch", "jobs": [{...}, ...], "inject": ...}``
    -> ``{"ok": true, "results": {id: {...}}}`` -- one interleaved
    batch through one resident loop (PAPER section 9).

``inject`` is a consumed worker-level fault directive derived from the
job's FaultPlan ``shard_faults`` (``shard`` = attempt index):
``{"kind": "kill"}`` dies like SIGKILL before touching the job,
``{"kind": "hang"}`` stops responding forever (the pool's deadline
catches it), ``{"kind": "slow", "delay": s}`` sleeps first.  Faults
fire *before* any work, so a retried attempt never sees partial state.

SIGUSR1 is forwarded by the daemon for hot restart: the worker fsyncs
nothing itself (results are journaled by the server on completion) but
acknowledges by ignoring the signal safely mid-computation.
"""

from __future__ import annotations

import os
import signal
import sys
import time
from typing import Any, Optional

from ..errors import EXIT_SHARD_CRASH
from . import jobs
from .protocol import JobExecutionError, JobRejected, JobSpec, decode_line, encode_line


def _apply_inject(inject: Optional[dict[str, Any]]) -> None:
    if not inject:
        return
    kind = inject.get("kind")
    if kind == "kill":
        os._exit(EXIT_SHARD_CRASH)  # simulated SIGKILL: no cleanup
    if kind == "hang":
        while True:
            time.sleep(3600)
    if kind == "slow":
        time.sleep(float(inject.get("delay", 1.0)))


def _handle(request: dict[str, Any]) -> dict[str, Any]:
    op = request.get("op")
    if op == "ping":
        return {"ok": True, "pid": os.getpid()}
    if op == "job":
        _apply_inject(request.get("inject"))
        spec = JobSpec.from_dict(request["job"])
        try:
            result = jobs.execute_serial(spec)
        except JobExecutionError as exc:
            return {"ok": False, "id": spec.id, "error": exc.to_dict()}
        return {"ok": True, "id": spec.id, "result": result}
    if op == "batch":
        _apply_inject(request.get("inject"))
        specs = [JobSpec.from_dict(j) for j in request["jobs"]]
        try:
            results = jobs.execute_batch(specs)
        except JobExecutionError as exc:
            return {"ok": False, "error": exc.to_dict()}
        return {"ok": True, "results": results}
    return {
        "ok": False,
        "error": {"code": "rejected", "message": f"unknown op {op!r}"},
    }


def main() -> int:
    # stay alive through the daemon's broadcast SIGUSR1 (hot-restart
    # sync point); default disposition would kill the worker mid-job
    try:
        signal.signal(signal.SIGUSR1, signal.SIG_IGN)
    except (ValueError, OSError):
        pass
    stdin = sys.stdin.buffer
    stdout = sys.stdout.buffer
    for line in iter(stdin.readline, b""):
        if not line.strip():
            continue
        try:
            request = decode_line(line)
            reply = _handle(request)
        except (JobRejected, KeyError, TypeError, ValueError) as exc:
            reply = {
                "ok": False,
                "error": {"code": "rejected", "message": str(exc)},
            }
        stdout.write(encode_line(reply))
        stdout.flush()
    return 0


if __name__ == "__main__":
    sys.exit(main())
