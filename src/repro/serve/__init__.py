"""``repro serve``: a fault-isolated multi-tenant pipeline service.

A long-lived asyncio daemon that admits jobs over the stable ``--json``
envelope, multiplexes independent recurrence jobs through resident
interleaved pipelines (PAPER section 9), executes everything in a
supervised worker pool, and hot-restarts from a journaled admission
queue without losing an accepted job.  See DESIGN.md section 11.
"""

from .admission import AdmissionQueue, JobJournal, JobState
from .pool import PoolConfig, WorkerFailure, WorkerPool
from .protocol import (
    JOB_KINDS,
    MAX_LINE_BYTES,
    JobDeadlineExceeded,
    JobExecutionError,
    JobRejected,
    JobRetriesExhausted,
    JobSpec,
    ServeError,
    ServerOverloaded,
    envelope,
    error_from_dict,
)
from .scheduler import BatchPlanner, Dispatch, SchedulerConfig
from .server import PipelineServer, ServeConfig, run_server
from .stats import ServeStats, TenantStats

__all__ = [
    "AdmissionQueue",
    "BatchPlanner",
    "Dispatch",
    "JOB_KINDS",
    "JobDeadlineExceeded",
    "JobExecutionError",
    "JobJournal",
    "JobRejected",
    "JobRetriesExhausted",
    "JobSpec",
    "JobState",
    "MAX_LINE_BYTES",
    "PipelineServer",
    "PoolConfig",
    "SchedulerConfig",
    "ServeConfig",
    "ServeError",
    "ServeStats",
    "ServerOverloaded",
    "TenantStats",
    "WorkerFailure",
    "WorkerPool",
    "envelope",
    "error_from_dict",
    "run_server",
]
