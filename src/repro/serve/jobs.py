"""Job execution helpers: resident compiled pipelines, serial and
interleaved-batch execution.

The correctness contract of the batching scheduler lives here:

* serial ``foriter`` jobs compile with the **Todd** for-iter scheme
  explicitly (``compile_program(..., foriter_scheme="todd")``) -- never
  through ``repro.run(source, ...)``, which compiles with the default
  scheme and would pick the companion construction whose floating-point
  association differs by ULPs;
* batched jobs drive :func:`~repro.compiler.foriter.
  compile_foriter_interleaved` per block (PAPER section 9) and the Todd
  scheme is what it interleaves, so a job's output values are
  **bit-identical** whether it ran alone or inside any batch.

Compiled artifacts are cached per (source, params[, batch]) so a
resident worker serves repeat tenants without recompiling.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Optional

from .. import api
from ..compiler import balance_graph, compile_program
from ..compiler.foriter import compile_foriter_interleaved, deinterleave, interleave
from ..errors import ReproError
from ..faults import FaultPlan
from ..val import parse_program
from .protocol import JobExecutionError, JobSpec

#: bound on resident compiled pipelines per cache (LRU-ish: clear-all)
COMPILE_CACHE_CAP = 64

_serial_cache: dict[tuple, Any] = {}
_batch_cache: dict[tuple, Any] = {}


def clear_caches() -> None:
    _serial_cache.clear()
    _batch_cache.clear()


def _params_key(params: dict[str, int]) -> tuple:
    return tuple(sorted(params.items()))


def signature(spec: JobSpec) -> str:
    """Batch-compatibility key: jobs with the same signature run the
    same compiled loop over equal-length input streams, so they can be
    interleaved into one batch."""
    lengths = {name: len(values) for name, values in sorted(spec.inputs.items())}
    payload = json.dumps(
        [spec.source, sorted(spec.params.items()), lengths],
        separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


def batchable(spec: JobSpec) -> bool:
    """Only plain foriter jobs batch; a fault plan with packet/unit
    faults needs the event machine (and per-job injection), and
    explicit options opt the job out of the shared resident loop."""
    if spec.kind != "foriter" or spec.options:
        return False
    plan = spec.fault_plan()
    return plan is None or not plan.has_execution_faults


def compile_serial(source: str, params: dict[str, int]):
    """Resident Todd-scheme pipeline for one program."""
    key = (source, _params_key(params))
    art = _serial_cache.get(key)
    if art is None:
        if len(_serial_cache) >= COMPILE_CACHE_CAP:
            _serial_cache.clear()
        art = compile_program(source, params=params, foriter_scheme="todd")
        _serial_cache[key] = art
    return art


def compile_batch(source: str, params: dict[str, int], batch: int):
    """Resident interleaved pipeline: ``batch`` independent instances
    of the program's (single) for-iter block through one loop."""
    key = (source, _params_key(params), batch)
    entry = _batch_cache.get(key)
    if entry is None:
        if len(_batch_cache) >= COMPILE_CACHE_CAP:
            _batch_cache.clear()
        serial = compile_serial(source, params)
        program = parse_program(source)
        if len(program.blocks) != 1:
            raise JobExecutionError(
                f"batched jobs need a single-block program, got "
                f"{len(program.blocks)} blocks",
                error_type="CompileError",
            )
        block = program.blocks[0]
        art = compile_foriter_interleaved(
            block.name, block.expr, serial.input_specs, params, batch=batch
        )
        balance_graph(art.graph)
        entry = (art, block.name)
        _batch_cache[key] = entry
    return entry


def _spec_faults(spec: JobSpec) -> Optional[FaultPlan]:
    plan = spec.fault_plan()
    if plan is None:
        return None
    plan = plan.without_shard_faults()
    return plan if plan.has_execution_faults else None


def execute_serial(spec: JobSpec) -> dict[str, Any]:
    """Run one job alone; returns the result payload for its record."""
    try:
        plan = _spec_faults(spec)
        if spec.kind == "run":
            options = dict(spec.options)
            backend = options.pop("backend", "sync")
            compile_opts = {
                k: options.pop(k)
                for k in ("forall_scheme", "foriter_scheme", "balance")
                if k in options
            }
            program = compile_program(
                spec.source, params=spec.params, **compile_opts
            )
            if plan is not None and backend == "sync":
                backend = "event"  # packet faults need the event machine
            result = api.run(
                program, spec.inputs, backend=backend, faults=plan,
                **options,
            )
        else:
            program = compile_serial(spec.source, spec.params)
            backend = "event" if plan is not None else "sync"
            result = api.run(program, spec.inputs, backend=backend,
                             faults=plan)
        return {"streams": {k: list(v) for k, v in result.outputs.items()}}
    except ReproError as exc:
        # deterministic failure of the pipeline itself: typed, not
        # retried (a retry would fail identically)
        raise JobExecutionError(
            str(exc), job_id=spec.id, error_type=type(exc).__name__
        ) from exc


def execute_batch(specs: list[JobSpec]) -> dict[str, dict[str, Any]]:
    """Run compatible jobs as one interleaved batch.

    Returns ``{job id: result payload}`` with each member's streams
    bit-identical to what :func:`execute_serial` would have produced.
    """
    if len(specs) < 2:
        raise JobExecutionError("a batch needs at least 2 jobs")
    first = specs[0]
    try:
        art, block_name = compile_batch(
            first.source, first.params, batch=len(specs)
        )
        serial = compile_serial(first.source, first.params)
        inputs = {
            name: interleave([list(s.inputs[name]) for s in specs])
            for name in serial.input_specs
        }
        result = api.run(art.graph, inputs, backend="sync")
        out: dict[str, dict[str, Any]] = {}
        streams = {
            name: deinterleave(list(values), len(specs))
            for name, values in result.outputs.items()
        }
        for j, spec in enumerate(specs):
            member = {name: per_member[j]
                      for name, per_member in streams.items()}
            # the interleaved artifact names its one output after the
            # block; serial compilation does the same, so keys match
            out[spec.id] = {"streams": member, "batch": len(specs)}
        return out
    except ReproError as exc:
        raise JobExecutionError(
            f"batched execution failed: {exc}",
            error_type=type(exc).__name__,
        ) from exc
