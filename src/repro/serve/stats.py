"""Service observability: per-tenant and global counters with bounded
latency samples.

Mirrors the :class:`~repro.machine.stats.RecoveryStats` style: plain
counters, a bounded reservoir of latency samples, nearest-rank p50/p99,
a ``to_dict`` for the JSON envelope and a one-line ``summary``.  The
reservoir RNG is seeded so a deterministic job sequence yields a
deterministic sample set.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Any, Optional

#: bound on retained latency samples per scope (global or tenant)
SAMPLE_CAP = 512


class _Reservoir:
    """Uniform reservoir sample of a latency stream, bounded at
    ``cap`` values (Vitter's algorithm R, seeded)."""

    def __init__(self, cap: int = SAMPLE_CAP, seed: int = 0) -> None:
        self.cap = cap
        self.count = 0
        self.samples: list[float] = []
        self._rng = random.Random(seed)

    def note(self, value: float) -> None:
        self.count += 1
        if len(self.samples) < self.cap:
            self.samples.append(value)
            return
        slot = self._rng.randrange(self.count)
        if slot < self.cap:
            self.samples[slot] = value

    def percentile(self, q: float) -> float:
        """Nearest-rank percentile, ``q`` in (0, 1]; NaN when empty."""
        if not self.samples:
            return float("nan")
        ordered = sorted(self.samples)
        rank = max(0, min(len(ordered) - 1,
                          math.ceil(q * len(ordered)) - 1))
        return ordered[rank]


def _round(value: float) -> Optional[float]:
    return None if math.isnan(value) else round(value, 6)


@dataclass
class TenantStats:
    """Counters for one tenant (and, with ``tenant=None``, the global
    roll-up)."""

    tenant: Optional[str] = None
    seed: int = 0
    accepted: int = 0
    shed: int = 0
    rejected: int = 0
    completed: int = 0
    failed_deadline: int = 0
    failed_retries: int = 0
    failed_execution: int = 0
    retries: int = 0
    batched: int = 0        # jobs that ran inside an interleaved batch
    serial: int = 0         # jobs that ran alone
    readmitted: int = 0     # jobs re-admitted from the journal
    latency: _Reservoir = field(default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.latency is None:
            self.latency = _Reservoir(seed=self.seed)

    @property
    def failed(self) -> int:
        return (self.failed_deadline + self.failed_retries
                + self.failed_execution)

    def note_done(self, latency_seconds: float, batched: bool) -> None:
        self.completed += 1
        if batched:
            self.batched += 1
        else:
            self.serial += 1
        self.latency.note(latency_seconds)

    def to_dict(self) -> dict[str, Any]:
        return {
            "accepted": self.accepted,
            "shed": self.shed,
            "rejected": self.rejected,
            "completed": self.completed,
            "failed_deadline": self.failed_deadline,
            "failed_retries": self.failed_retries,
            "failed_execution": self.failed_execution,
            "retries": self.retries,
            "batched": self.batched,
            "serial": self.serial,
            "readmitted": self.readmitted,
            "latency_samples": self.latency.count,
            "latency_p50": _round(self.latency.percentile(0.50)),
            "latency_p99": _round(self.latency.percentile(0.99)),
        }


@dataclass
class ServeStats:
    """The daemon's full observability surface.

    ``queue_depth`` / ``inflight`` are gauges maintained by the server;
    everything else is monotonic.  ``to_dict`` is what the ``stats`` op
    returns inside the envelope.
    """

    seed: int = 0
    worker_respawns: int = 0
    quarantined_jobs: int = 0
    hot_restarts: int = 0
    queue_depth: int = 0
    inflight: int = 0
    batches: int = 0        # interleaved batches dispatched
    total: TenantStats = field(default=None)  # type: ignore[assignment]
    tenants: dict[str, TenantStats] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.total is None:
            self.total = TenantStats(seed=self.seed)

    def for_tenant(self, tenant: str) -> TenantStats:
        stats = self.tenants.get(tenant)
        if stats is None:
            # per-tenant reservoirs get distinct seeds, derived stably
            stats = TenantStats(
                tenant=tenant,
                seed=self.seed + 1 + len(self.tenants),
            )
            self.tenants[tenant] = stats
        return stats

    def _both(self, tenant: str) -> tuple[TenantStats, TenantStats]:
        return self.total, self.for_tenant(tenant)

    def note_accepted(self, tenant: str) -> None:
        for s in self._both(tenant):
            s.accepted += 1

    def note_shed(self, tenant: str) -> None:
        for s in self._both(tenant):
            s.shed += 1

    def note_rejected(self, tenant: str) -> None:
        for s in self._both(tenant):
            s.rejected += 1

    def note_retry(self, tenant: str) -> None:
        for s in self._both(tenant):
            s.retries += 1

    def note_readmitted(self, tenant: str) -> None:
        for s in self._both(tenant):
            s.readmitted += 1

    def note_done(self, tenant: str, latency_seconds: float,
                  batched: bool) -> None:
        for s in self._both(tenant):
            s.note_done(latency_seconds, batched)

    def note_failed(self, tenant: str, code: str) -> None:
        attr = {
            "deadline": "failed_deadline",
            "retries_exhausted": "failed_retries",
        }.get(code, "failed_execution")
        for s in self._both(tenant):
            setattr(s, attr, getattr(s, attr) + 1)

    def to_dict(self) -> dict[str, Any]:
        d = self.total.to_dict()
        d.update(
            queue_depth=self.queue_depth,
            inflight=self.inflight,
            batches=self.batches,
            worker_respawns=self.worker_respawns,
            quarantined_jobs=self.quarantined_jobs,
            hot_restarts=self.hot_restarts,
            tenants={
                name: s.to_dict()
                for name, s in sorted(self.tenants.items())
            },
        )
        return d

    def summary(self) -> str:
        t = self.total
        p99 = t.latency.percentile(0.99)
        p99_text = "-" if math.isnan(p99) else f"{p99 * 1000:.1f}ms"
        return (
            f"serve: {t.accepted} accepted ({t.shed} shed, "
            f"{t.rejected} rejected), {t.completed} completed "
            f"({t.batched} batched / {t.serial} serial), "
            f"{t.failed} failed, {t.retries} retries, "
            f"{self.worker_respawns} worker respawns, p99 {p99_text}"
        )
