"""Bounded admission with overload shedding and a crash-safe journal.

The admission queue is the only place jobs wait before execution, and
it is **bounded**: a submit that would exceed capacity is shed with a
typed :class:`~repro.serve.protocol.ServerOverloaded` carrying a
retry-after hint, so the daemon's memory never grows with offered load.

Exactly-once across hot restarts comes from the journal, not from
snapshots of server state: every accepted job appends an ``accept``
line (flushed before the client sees the ack) and every finished job a
``done`` line carrying the full outcome record.  Replaying the journal
at startup yields (a) the set of accepted-but-unfinished jobs, which
are re-admitted in acceptance order, and (b) the completed records,
so a client re-asking for a finished job's result gets the original
bytes instead of a re-execution.  SIGUSR1 fsyncs the journal so a hot
restart under ``repro supervise`` loses nothing that was acknowledged.
"""

from __future__ import annotations

import json
import os
import time
from collections import OrderedDict, deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Optional

from .protocol import JobRejected, JobSpec, ServerOverloaded

JOURNAL_NAME = "serve-journal.jsonl"


@dataclass
class JobState:
    """One accepted job's lifecycle, owned by the server."""

    spec: JobSpec
    accepted_at: float
    deadline: float                      # absolute (monotonic clock)
    attempts: int = 0
    status: str = "queued"               # queued|running|done
    record: Optional[dict[str, Any]] = None
    done: Any = None                     # asyncio.Event, server-owned
    readmitted: bool = False

    def remaining(self, now: float) -> float:
        return self.deadline - now


class JobJournal:
    """Append-only NDJSON journal of accepts and outcomes.

    Tolerates a torn final line (the crash happened mid-append); a
    malformed line anywhere else is skipped but counted, never fatal --
    a damaged journal must degrade to losing *that line's* job, not the
    daemon.
    """

    def __init__(self, path: Path) -> None:
        self.path = Path(path)
        self.skipped = 0
        self._fh = open(self.path, "ab")

    # -- writing -------------------------------------------------------
    def _append(self, entry: dict[str, Any]) -> None:
        line = json.dumps(entry, separators=(",", ":")) + "\n"
        self._fh.write(line.encode("utf-8"))
        self._fh.flush()

    def accept(self, spec: JobSpec) -> None:
        self._append({"event": "accept", "job": spec.to_dict()})

    def done(self, job_id: str, record: dict[str, Any]) -> None:
        self._append({"event": "done", "id": job_id, "record": record})

    def sync(self) -> None:
        self._fh.flush()
        os.fsync(self._fh.fileno())

    def close(self) -> None:
        try:
            self.sync()
        except (OSError, ValueError):
            pass
        self._fh.close()

    # -- replay --------------------------------------------------------
    @classmethod
    def replay(
        cls, path: Path
    ) -> tuple[list[JobSpec], "OrderedDict[str, dict[str, Any]]", int]:
        """Read a journal back: ``(pending specs in acceptance order,
        completed records by id, skipped line count)``."""
        pending: "OrderedDict[str, JobSpec]" = OrderedDict()
        completed: "OrderedDict[str, dict[str, Any]]" = OrderedDict()
        skipped = 0
        path = Path(path)
        if not path.exists():
            return [], completed, 0
        raw = path.read_bytes()
        lines = raw.split(b"\n")
        torn_tail = lines and lines[-1] != b""
        body = lines[:-1] if not torn_tail else lines[:-1]
        tail = lines[-1] if torn_tail else None
        for line in body:
            if not line:
                continue
            try:
                entry = json.loads(line.decode("utf-8"))
                if entry.get("event") == "accept":
                    spec = JobSpec.from_dict(entry["job"])
                    pending[spec.id] = spec
                elif entry.get("event") == "done":
                    job_id = entry["id"]
                    completed[job_id] = entry["record"]
                    pending.pop(job_id, None)
                else:
                    skipped += 1
            except (ValueError, KeyError, TypeError, JobRejected):
                skipped += 1
        if tail is not None:
            # a torn final line is the expected signature of a crash
            # mid-append; try it anyway in case the file merely lacks
            # the trailing newline
            try:
                entry = json.loads(tail.decode("utf-8"))
                if entry.get("event") == "accept":
                    spec = JobSpec.from_dict(entry["job"])
                    pending[spec.id] = spec
                elif entry.get("event") == "done":
                    completed[entry["id"]] = entry["record"]
                    pending.pop(entry["id"], None)
            except (ValueError, KeyError, TypeError, JobRejected):
                skipped += 1
        return list(pending.values()), completed, skipped


@dataclass
class AdmissionQueue:
    """FIFO of accepted jobs, bounded at ``capacity``.

    ``estimate_job_seconds`` is a server-owned callable (EMA over
    observed service times) feeding the retry-after hint:
    ``(depth + inflight) * est / workers`` -- roughly when the current
    backlog drains.
    """

    capacity: int
    workers: int = 1
    journal: Optional[JobJournal] = None
    clock: Callable[[], float] = time.monotonic
    estimate_job_seconds: Callable[[], float] = lambda: 0.25
    inflight: Callable[[], int] = lambda: 0
    default_deadline: float = 30.0
    _queue: deque = field(default_factory=deque)
    _by_id: dict = field(default_factory=dict)
    completed: "OrderedDict[str, dict[str, Any]]" = field(
        default_factory=OrderedDict
    )

    @property
    def depth(self) -> int:
        return len(self._queue)

    def pending_ids(self) -> list[str]:
        return [state.spec.id for state in self._queue]

    def retry_after(self) -> float:
        backlog = self.depth + self.inflight()
        est = max(0.01, self.estimate_job_seconds())
        return max(0.05, backlog * est / max(1, self.workers))

    def offer(self, spec: JobSpec, *,
              readmitted: bool = False) -> JobState:
        """Admit one job or raise typed rejection/overload."""
        if spec.id in self.completed:
            raise JobRejected(
                f"job {spec.id!r} already completed; ask for its result "
                f"with op=wait",
                job_id=spec.id,
            )
        if spec.id in self._by_id:
            raise JobRejected(
                f"job {spec.id!r} is already accepted and pending",
                job_id=spec.id,
            )
        # the bound covers queued AND in-flight work: the dispatcher
        # drains the queue into execution tasks eagerly, so depth alone
        # would let admitted work grow without limit
        backlog = self.depth + self.inflight()
        if backlog >= self.capacity:
            raise ServerOverloaded(
                f"admission queue full ({backlog}/{self.capacity}); "
                f"retry after {self.retry_after():.2f}s",
                retry_after=self.retry_after(),
                queue_depth=backlog,
                capacity=self.capacity,
            )
        now = self.clock()
        deadline = now + (
            spec.deadline if spec.deadline is not None
            else self.default_deadline
        )
        state = JobState(
            spec=spec, accepted_at=now, deadline=deadline,
            readmitted=readmitted,
        )
        # the accept must be durable before the client sees the ack:
        # exactly-once over restarts hinges on this ordering
        if self.journal is not None and not readmitted:
            self.journal.accept(spec)
        self._queue.append(state)
        self._by_id[spec.id] = state
        return state

    def take(self) -> Optional[JobState]:
        if not self._queue:
            return None
        state = self._queue.popleft()
        state.status = "running"
        return state

    def take_matching(
        self, predicate: Callable[[JobState], bool], limit: int
    ) -> list[JobState]:
        """Remove up to ``limit`` queued jobs satisfying ``predicate``,
        preserving FIFO order among the rest."""
        taken: list[JobState] = []
        keep: deque = deque()
        while self._queue and len(taken) < limit:
            state = self._queue.popleft()
            if predicate(state):
                state.status = "running"
                taken.append(state)
            else:
                keep.append(state)
        keep.extend(self._queue)
        self._queue = keep
        return taken

    def get(self, job_id: str) -> Optional[JobState]:
        return self._by_id.get(job_id)

    def finish(self, state: JobState, record: dict[str, Any]) -> None:
        """Record a terminal outcome (success or typed failure)."""
        state.status = "done"
        state.record = record
        self._by_id.pop(state.spec.id, None)
        self.completed[state.spec.id] = record
        # bound the in-memory completed map; the journal keeps the rest
        while len(self.completed) > 4 * self.capacity:
            self.completed.popitem(last=False)
        if self.journal is not None:
            self.journal.done(state.spec.id, record)
        if state.done is not None:
            state.done.set()
