"""The ``repro serve`` daemon: admission -> batch -> execute -> reply.

One asyncio process owns the front door (unix socket and/or TCP), the
bounded admission queue, the batch planner and the supervised worker
pool; jobs execute only in worker children, so no job can take the
daemon down.  Lifecycle of one job:

1. **admission** -- ``submit`` validates the spec, journals the accept,
   and either enqueues (bounded) or sheds with a typed
   ``ServerOverloaded`` + retry-after hint;
2. **batching** -- the dispatcher drains the queue through the
   :class:`~repro.serve.scheduler.BatchPlanner`, which interleaves
   compatible recurrence jobs through one resident loop (PAPER
   section 9) when deadlines allow, else degrades to serial;
3. **execution** -- each dispatch runs on a pool worker under a
   deadline; a crashed or hung worker costs one respawn and the
   affected jobs retry with seeded-jitter backoff, at most
   ``max_retries`` times, then fail typed (never silently dropped);
   a failed *batch* attempt is disbanded and its members retried
   serially, isolating a poison job to its own retry budget;
4. **reply** -- the outcome record (success payload or typed error) is
   journaled, counted, and delivered to any ``wait``-ing connection.

Hot restart: SIGUSR1 fsyncs the journal, writes an atomic
``serve-state.json`` and forwards the signal to workers; a restarted
daemon (e.g. under ``repro supervise``) replays the journal and
re-admits accepted-but-unfinished jobs exactly once.
"""

from __future__ import annotations

import asyncio
import json
import os
import random
import signal
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Optional

from ..checkpoint.snapshot import _atomic_write
from ..checkpoint.supervisor import BackoffPolicy
from ..errors import EXIT_SHARD_CRASH
from ..faults import FaultPlan
from .admission import JOURNAL_NAME, AdmissionQueue, JobJournal, JobState
from .pool import PoolConfig, WorkerFailure, WorkerPool
from .protocol import (
    JobDeadlineExceeded,
    JobRejected,
    JobRetriesExhausted,
    JobSpec,
    ServeError,
    ServerOverloaded,
    decode_line,
    encode_line,
    envelope,
    error_from_dict,
)
from .scheduler import BatchPlanner, Dispatch, SchedulerConfig
from .stats import ServeStats

STATE_NAME = "serve-state.json"
STATE_SCHEMA = 1


@dataclass
class ServeConfig:
    """Everything the daemon needs; maps 1:1 to ``repro serve`` flags."""

    socket: Optional[str] = None
    host: str = "127.0.0.1"
    port: Optional[int] = None
    directory: Optional[str] = None      # journal + hot-restart state
    capacity: int = 256
    workers: int = 2
    default_deadline: float = 30.0
    max_retries: int = 2
    #: per-worker-call ceiling: a worker silent this long is hung
    hang_deadline: float = 10.0
    min_batch: int = 2
    max_batch: int = 8
    batch_wait: float = 0.02
    drain_timeout: float = 10.0
    seed: int = 0
    backoff: BackoffPolicy = field(
        default_factory=lambda: BackoffPolicy(base=0.05, max_delay=2.0)
    )
    #: test hook: die like SIGKILL right after the Nth accept has been
    #: journaled (simulates a daemon crash for hot-restart tests)
    crash_after_accepts: Optional[int] = None


def _attempt_fault(spec: JobSpec, attempt: int) -> Optional[dict[str, Any]]:
    """The worker-level fault directive for this attempt, if any.

    A job's FaultPlan ``shard_faults`` are interpreted with ``shard``
    meaning the 0-based *attempt* index, so chaos tests can say "kill
    the worker on my first attempt, hang it on my second" regardless
    of which pool worker the job lands on.
    """
    if not spec.faults:
        return None
    plan = FaultPlan.from_dict(spec.faults)
    for fault in plan.shard_faults:
        if fault.shard == attempt:
            return {"kind": fault.kind, "delay": fault.delay}
    return None


class PipelineServer:
    """One daemon instance; create, ``await start()``, then
    ``await serve_forever()`` (or drive ops directly in tests)."""

    def __init__(self, config: ServeConfig) -> None:
        if config.socket is None and config.port is None:
            raise ServeError("serve needs --socket and/or --port")
        self.config = config
        self.stats = ServeStats(seed=config.seed)
        self.planner = BatchPlanner(SchedulerConfig(
            min_batch=config.min_batch,
            max_batch=config.max_batch,
            batch_wait=config.batch_wait,
        ))
        self.journal: Optional[JobJournal] = None
        if config.directory is not None:
            Path(config.directory).mkdir(parents=True, exist_ok=True)
        self._inflight_count = 0
        self.queue = AdmissionQueue(
            capacity=config.capacity,
            workers=config.workers,
            default_deadline=config.default_deadline,
            estimate_job_seconds=self.planner.costs.mean,
            inflight=lambda: self._inflight_count,
        )
        self.pool = WorkerPool(PoolConfig(
            workers=config.workers,
            call_deadline=config.hang_deadline,
            backoff=config.backoff,
            seed=config.seed,
        ))
        self._rng = random.Random(config.seed)
        self._accepts = 0
        self._started_at = time.monotonic()
        self._accepting = False
        self._shutdown = asyncio.Event()
        self._wake = asyncio.Event()
        self._tasks: set[asyncio.Task] = set()
        self._servers: list[asyncio.AbstractServer] = []
        self._dispatcher: Optional[asyncio.Task] = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        readmitted: list[JobSpec] = []
        if self.config.directory is not None:
            journal_path = Path(self.config.directory) / JOURNAL_NAME
            pending, completed, skipped = JobJournal.replay(journal_path)
            self.journal = JobJournal(journal_path)
            self.queue.journal = self.journal
            self.queue.completed.update(completed)
            readmitted = pending
            if skipped:
                self._log(f"journal: skipped {skipped} damaged line(s)")
        await self.pool.start()
        for spec in readmitted:
            # accepted before the restart, never finished: re-admit
            # exactly once (the accept line is already journaled, so
            # offer() must not journal it again)
            try:
                state = self.queue.offer(spec, readmitted=True)
            except (JobRejected, ServerOverloaded) as exc:
                self._log(f"re-admission of {spec.id!r} failed: {exc}")
                continue
            state.done = asyncio.Event()
            self.stats.note_readmitted(spec.tenant)
        if readmitted:
            self._log(f"re-admitted {len(readmitted)} journaled job(s)")
        if self.config.socket is not None:
            server = await asyncio.start_unix_server(
                self._handle_connection, path=self.config.socket
            )
            self._servers.append(server)
        if self.config.port is not None:
            server = await asyncio.start_server(
                self._handle_connection,
                host=self.config.host, port=self.config.port,
            )
            self._servers.append(server)
        self._install_signal_handlers()
        self._accepting = True
        self._dispatcher = asyncio.create_task(self._dispatch_loop())
        self._log(
            f"listening on "
            f"{self.config.socket or f'{self.config.host}:{self.config.port}'}"
            f" ({self.config.workers} workers, "
            f"capacity {self.config.capacity})"
        )

    def _install_signal_handlers(self) -> None:
        loop = asyncio.get_running_loop()
        try:
            loop.add_signal_handler(signal.SIGUSR1, self.hot_snapshot)
            loop.add_signal_handler(
                signal.SIGTERM, self._shutdown.set
            )
        except (NotImplementedError, ValueError, RuntimeError):
            pass  # non-main thread or platform without signal support

    async def serve_forever(self) -> None:
        await self._shutdown.wait()
        await self.stop()

    async def stop(self) -> None:
        """Graceful stop: refuse new work, drain, then tear down."""
        self._accepting = False
        self._shutdown.set()
        deadline = time.monotonic() + self.config.drain_timeout
        while (self.queue.depth or self._inflight_count) \
                and time.monotonic() < deadline:
            await asyncio.sleep(0.02)
        if self._dispatcher is not None:
            self._dispatcher.cancel()
            try:
                await self._dispatcher
            except (asyncio.CancelledError, Exception):
                pass
        for task in list(self._tasks):
            task.cancel()
        if self._tasks:
            await asyncio.gather(*self._tasks, return_exceptions=True)
        await self.pool.stop()
        for server in self._servers:
            server.close()
            await server.wait_closed()
        if self.journal is not None:
            self.journal.close()
        if (self.config.socket is not None
                and os.path.exists(self.config.socket)):
            try:
                os.unlink(self.config.socket)
            except OSError:
                pass
        self._log(self.stats.summary())

    def hot_snapshot(self) -> None:
        """SIGUSR1: make the restartable state durable, live."""
        self.stats.hot_restarts += 1
        if self.journal is not None:
            self.journal.sync()
        if self.config.directory is not None:
            state = {
                "schema": STATE_SCHEMA,
                "pending": self.queue.pending_ids(),
                "inflight": self._inflight_count,
                "accepts": self._accepts,
                "stats": self.stats.to_dict(),
            }
            _atomic_write(
                Path(self.config.directory) / STATE_NAME,
                (json.dumps(state, indent=2) + "\n").encode("utf-8"),
            )
        signalled = self.pool.signal_workers(signal.SIGUSR1)
        self._log(
            f"hot snapshot: journal synced, state written, "
            f"{signalled} worker(s) signalled"
        )

    @staticmethod
    def _log(message: str) -> None:
        import sys

        print(f"# serve: {message}", file=sys.stderr, flush=True)

    # ------------------------------------------------------------------
    # admission
    # ------------------------------------------------------------------
    def admit(self, data: dict[str, Any]) -> JobState:
        """Validate + admit one job dict; typed errors propagate."""
        spec = JobSpec.from_dict(data)
        if not self._accepting:
            raise JobRejected("server is shutting down", job_id=spec.id)
        try:
            state = self.queue.offer(spec)
        except ServerOverloaded:
            self.stats.note_shed(spec.tenant)
            raise
        except JobRejected:
            self.stats.note_rejected(spec.tenant)
            raise
        state.done = asyncio.Event()
        self.stats.note_accepted(spec.tenant)
        self.stats.queue_depth = self.queue.depth
        self._accepts += 1
        self._wake.set()
        hook = self.config.crash_after_accepts
        if hook is not None and self._accepts >= hook:
            # hot-restart test hook: the accept is journaled, now die
            # like SIGKILL before the job can run
            if self.journal is not None:
                self.journal.sync()
            os._exit(EXIT_SHARD_CRASH)
        return state

    # ------------------------------------------------------------------
    # dispatch + execution
    # ------------------------------------------------------------------
    async def _dispatch_loop(self) -> None:
        tick = max(0.005, self.config.batch_wait / 2 or 0.01)
        while True:
            self._wake.clear()
            for dispatch in self.planner.plan(self.queue):
                task = asyncio.create_task(self._execute(dispatch))
                self._tasks.add(task)
                task.add_done_callback(self._tasks.discard)
            self.stats.queue_depth = self.queue.depth
            try:
                await asyncio.wait_for(self._wake.wait(), timeout=tick)
            except asyncio.TimeoutError:
                pass

    async def _execute(self, dispatch: Dispatch) -> None:
        self._inflight_count += len(dispatch.states)
        self.stats.inflight = self._inflight_count
        try:
            if dispatch.batched:
                await self._execute_batch(dispatch)
            else:
                await self._execute_serial(dispatch.states[0])
        finally:
            self._inflight_count -= len(dispatch.states)
            self.stats.inflight = self._inflight_count

    def _finish_ok(self, state: JobState, result: dict[str, Any],
                   batched: bool) -> None:
        now = time.monotonic()
        latency = now - state.accepted_at
        record = {
            "id": state.spec.id,
            "tenant": state.spec.tenant,
            "ok": True,
            "batched": batched,
            "attempts": state.attempts,
            "latency_s": round(latency, 6),
            "result": result,
        }
        self.queue.finish(state, record)
        self.stats.note_done(state.spec.tenant, latency, batched)

    def _finish_err(self, state: JobState, error: ServeError) -> None:
        record = {
            "id": state.spec.id,
            "tenant": state.spec.tenant,
            "ok": False,
            "attempts": state.attempts,
            "error": error.to_dict(),
        }
        self.queue.finish(state, record)
        self.stats.note_failed(state.spec.tenant, error.code)

    def _deadline_error(self, state: JobState,
                        stage: str) -> JobDeadlineExceeded:
        now = time.monotonic()
        spec_deadline = (
            state.spec.deadline
            if state.spec.deadline is not None
            else self.config.default_deadline
        )
        return JobDeadlineExceeded(
            f"job {state.spec.id!r} missed its {spec_deadline:.2f}s "
            f"deadline while {stage}",
            job_id=state.spec.id,
            deadline=spec_deadline,
            elapsed=now - state.accepted_at,
            stage=stage,
        )

    async def _execute_serial(self, state: JobState) -> None:
        while True:
            now = time.monotonic()
            remaining = state.remaining(now)
            if remaining <= 0:
                self._finish_err(
                    state,
                    self._deadline_error(
                        state,
                        "queued" if state.attempts == 0 else "retrying",
                    ),
                )
                return
            attempt = state.attempts
            state.attempts += 1
            payload = {
                "op": "job",
                "job": state.spec.to_dict(),
                "inject": _attempt_fault(state.spec, attempt),
            }
            started = time.monotonic()
            try:
                reply = await self.pool.execute(
                    payload, timeout=remaining
                )
            except WorkerFailure as failure:
                self.pool_failure_noted(state, failure)
                if state.remaining(time.monotonic()) <= 0:
                    self._finish_err(
                        state, self._deadline_error(state, "running")
                    )
                    return
                if state.attempts > self.config.max_retries:
                    self._finish_err(state, JobRetriesExhausted(
                        f"job {state.spec.id!r} lost "
                        f"{state.attempts} attempt(s) to worker "
                        f"failure; retry budget of "
                        f"{self.config.max_retries} exhausted",
                        job_id=state.spec.id,
                        attempts=state.attempts,
                        reason=str(failure),
                    ))
                    self.stats.quarantined_jobs += 1
                    return
                delay = self.config.backoff.delay(
                    state.attempts, self._rng
                )
                await asyncio.sleep(
                    min(delay, max(0.0, state.remaining(time.monotonic())))
                )
                continue
            if reply.get("ok"):
                elapsed = time.monotonic() - started
                self.planner.observe(
                    Dispatch([state], batched=False), elapsed
                )
                self._finish_ok(state, reply.get("result", {}),
                                batched=False)
            else:
                self._finish_err(
                    state, error_from_dict(reply.get("error", {}))
                )
            return

    def pool_failure_noted(self, state: JobState,
                           failure: WorkerFailure) -> None:
        self.stats.worker_respawns = self.pool.respawns
        self.stats.note_retry(state.spec.tenant)
        self._log(
            f"job {state.spec.id!r} attempt {state.attempts} lost to "
            f"{failure.kind} ({failure.detail})"
        )

    async def _execute_batch(self, dispatch: Dispatch) -> None:
        states = dispatch.states
        now = time.monotonic()
        remaining = min(s.remaining(now) for s in states)
        if remaining <= 0:
            for state in states:
                self._finish_err(
                    state, self._deadline_error(state, "batching")
                )
            return
        inject = None
        for state in states:
            inject = _attempt_fault(state.spec, state.attempts)
            if inject is not None:
                break
        for state in states:
            state.attempts += 1
        payload = {
            "op": "batch",
            "jobs": [s.spec.to_dict() for s in states],
            "inject": inject,
        }
        self.stats.batches += 1
        started = time.monotonic()
        try:
            reply = await self.pool.execute(payload, timeout=remaining)
        except WorkerFailure as failure:
            # disband: the poison member (if any) is isolated to its
            # own serial retries; innocents retry serially too but
            # their attempt cost one shared worker, not one each
            for state in states:
                self.pool_failure_noted(state, failure)
            self._log(
                f"batch of {len(states)} disbanded after {failure.kind};"
                f" retrying members serially"
            )
            delay = self.config.backoff.delay(1, self._rng)
            await asyncio.sleep(min(delay, remaining))
            for state in states:
                task = asyncio.create_task(self._retry_serial(state))
                self._tasks.add(task)
                task.add_done_callback(self._tasks.discard)
            return
        if reply.get("ok"):
            elapsed = time.monotonic() - started
            self.planner.observe(dispatch, elapsed)
            results = reply.get("results", {})
            for state in states:
                self._finish_ok(
                    state, results.get(state.spec.id, {}), batched=True
                )
        else:
            error = error_from_dict(reply.get("error", {}))
            for state in states:
                self._finish_err(state, error)

    async def _retry_serial(self, state: JobState) -> None:
        if state.attempts > self.config.max_retries:
            self._finish_err(state, JobRetriesExhausted(
                f"job {state.spec.id!r} lost {state.attempts} "
                f"attempt(s) to worker failure; retry budget of "
                f"{self.config.max_retries} exhausted",
                job_id=state.spec.id,
                attempts=state.attempts,
                reason="batch attempt lost to worker failure",
            ))
            self.stats.quarantined_jobs += 1
            return
        self._inflight_count += 1
        try:
            await self._execute_serial(state)
        finally:
            self._inflight_count -= 1

    # ------------------------------------------------------------------
    # connections
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        try:
            while True:
                try:
                    line = await reader.readline()
                except (ValueError, ConnectionResetError):
                    break  # over-long line or peer reset
                if not line:
                    break
                reply = await self._handle_request(line)
                writer.write(encode_line(reply))
                try:
                    await writer.drain()
                except (ConnectionResetError, BrokenPipeError):
                    break
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    async def _handle_request(self, line: bytes) -> dict[str, Any]:
        op = "?"
        try:
            request = decode_line(line)
            if not isinstance(request, dict):
                raise JobRejected("request must be a JSON object")
            op = request.get("op", "?")
            return await self._dispatch_op(op, request)
        except ServeError as exc:
            return envelope(op, False, {"error": exc.to_dict()})

    async def _dispatch_op(self, op: str,
                           request: dict[str, Any]) -> dict[str, Any]:
        if op == "submit":
            state = self.admit(request.get("job", {}))
            return envelope("submit", True, {
                "id": state.spec.id,
                "accepted": True,
                "queue_depth": self.queue.depth,
            })
        if op in ("wait", "submit_wait"):
            if op == "submit_wait":
                state = self.admit(request.get("job", {}))
                job_id = state.spec.id
            else:
                job_id = request.get("id", "")
            record = await self._await_record(
                job_id, request.get("timeout")
            )
            return envelope(op, bool(record.get("ok")), record)
        if op == "healthz":
            return envelope("healthz", True, {
                "status": "ok",
                "uptime_s": round(
                    time.monotonic() - self._started_at, 3
                ),
                "accepting": self._accepting,
                "queue_depth": self.queue.depth,
                "inflight": self._inflight_count,
                "workers": {
                    "size": self.pool.size,
                    "alive": self.pool.alive,
                    "respawns": self.pool.respawns,
                },
                "accepted_total": self._accepts,
            })
        if op == "stats":
            self.stats.queue_depth = self.queue.depth
            self.stats.worker_respawns = self.pool.respawns
            return envelope("stats", True, self.stats.to_dict())
        if op == "shutdown":
            self._accepting = False
            self._shutdown.set()
            return envelope("shutdown", True, {"stopping": True})
        raise JobRejected(f"unknown op {op!r}; expected one of "
                          f"submit/wait/submit_wait/healthz/stats/"
                          f"shutdown")

    async def _await_record(self, job_id: str,
                            timeout: Optional[float]) -> dict[str, Any]:
        record = self.queue.completed.get(job_id)
        if record is not None:
            return record
        state = self.queue.get(job_id)
        if state is None:
            raise JobRejected(f"unknown job id {job_id!r}")
        if state.done is None:
            state.done = asyncio.Event()
        budget = timeout if timeout is not None else (
            state.remaining(time.monotonic())
            + self.config.hang_deadline
            + self.config.drain_timeout
        )
        try:
            await asyncio.wait_for(
                state.done.wait(), timeout=max(0.05, budget)
            )
        except asyncio.TimeoutError:
            raise JobRejected(
                f"job {job_id!r} still pending after {budget:.2f}s wait",
                job_id=job_id,
            ) from None
        return state.record or self.queue.completed.get(job_id) or {
            "id": job_id, "ok": False,
            "error": {"code": "serve_error",
                      "message": "job finished without a record"},
        }


async def run_server(config: ServeConfig) -> None:
    """Entry point used by ``repro serve``."""
    server = PipelineServer(config)
    await server.start()
    await server.serve_forever()
