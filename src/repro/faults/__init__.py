"""Fault injection and reliability modelling for the machine simulator.

The paper's machine assumes reliable packet networks; this package
models what happens when they are not.  A seeded :class:`FaultPlan`
describes packet drops, duplications, transient corruption and unit
outages/slowdowns; :class:`repro.machine.Machine` executes a workload
under the plan, and (with recovery enabled) its reliability layer --
sequence-numbered result/ack packets, timeout retransmission, duplicate
suppression and failed-unit eviction -- delivers outputs bit-identical
to a fault-free run.

See ``python -m repro faults --help`` and the "Fault model & recovery"
section of DESIGN.md.
"""

from .injector import FaultInjector, FaultStats, PacketFate
from .plan import (
    FAULT_KINDS,
    SCHEMA_VERSION,
    SHARD_FAULT_KINDS,
    UNIT_KINDS,
    FaultPlan,
    FaultPlanError,
    ShardFault,
    UnitFault,
)

__all__ = [
    "FAULT_KINDS",
    "FaultInjector",
    "FaultPlan",
    "FaultPlanError",
    "FaultStats",
    "PacketFate",
    "SCHEMA_VERSION",
    "SHARD_FAULT_KINDS",
    "ShardFault",
    "UNIT_KINDS",
    "UnitFault",
]
