"""Deterministic, seeded fault plans for the machine simulator.

A :class:`FaultPlan` describes *what goes wrong* during a run of
:class:`repro.machine.Machine`: packet-level faults on the routing and
distribution networks (result/acknowledge packet drops, duplications
and transient value corruption) and unit-level faults (slowdowns and
outages of function units, array memories and processing elements).

Plans are plain data: they can be serialized to/from JSON (the schema
used by ``python -m repro faults --plan plan.json``, documented in
DESIGN.md) and they are **deterministic** -- the injector draws every
random decision from ``random.Random(seed)`` in simulation-event order,
so the same plan on the same workload always injects the same faults.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field, replace
from typing import Any, Iterable, Optional

from ..errors import ReproError


class FaultPlanError(ReproError):
    """Raised on malformed fault plans (bad probabilities, units...)."""


#: Version of the ``--plan`` JSON schema this build writes and reads.
#: Version 2 added worker-level ``shard_faults``; plans without them
#: are still written as version 1 so older readers keep working.
SCHEMA_VERSION = 2

#: Schema versions :meth:`FaultPlan.from_dict` accepts.
READABLE_SCHEMAS = (1, 2)

#: Unit kinds a :class:`UnitFault` can target.
UNIT_KINDS = ("fu", "am", "pe")

#: Fault kinds a :class:`UnitFault` can describe.
FAULT_KINDS = ("outage", "slow")

#: Fault kinds a :class:`ShardFault` can describe.
SHARD_FAULT_KINDS = ("kill", "hang", "slow")

#: accepted spellings for shard-fault kinds (the plan schema also
#: takes the explicit ``kill_shard``/``hang_shard``/``slow_shard``)
_SHARD_KIND_ALIASES = {
    "kill_shard": "kill",
    "hang_shard": "hang",
    "slow_shard": "slow",
}


@dataclass(frozen=True)
class UnitFault:
    """One unit-level fault: an outage or a slowdown window.

    ``unit``
        ``"fu"``, ``"am"`` or ``"pe"``.
    ``index``
        Which unit of that kind (0-based).
    ``start`` / ``end``
        The cycle window during which the fault is active; ``end=None``
        means the fault persists to the end of the run.
    ``kind``
        ``"outage"`` -- the unit accepts no work (operation packets sent
        to it are lost); ``"slow"`` -- latencies (or the PE's issue
        interval) are multiplied by ``factor``.
    """

    unit: str
    index: int
    start: int = 0
    end: Optional[int] = None
    kind: str = "outage"
    factor: float = 4.0

    def __post_init__(self) -> None:
        if self.unit not in UNIT_KINDS:
            raise FaultPlanError(
                f"unknown unit kind {self.unit!r}; expected one of {UNIT_KINDS}"
            )
        if self.kind not in FAULT_KINDS:
            raise FaultPlanError(
                f"unknown fault kind {self.kind!r}; expected one of {FAULT_KINDS}"
            )
        if self.index < 0:
            raise FaultPlanError(f"unit index must be >= 0, got {self.index}")
        if self.start < 0:
            raise FaultPlanError(f"fault start must be >= 0, got {self.start}")
        if self.end is not None and self.end <= self.start:
            raise FaultPlanError(
                f"fault window [{self.start},{self.end}) is empty"
            )
        if self.kind == "slow" and self.factor <= 1.0:
            raise FaultPlanError(
                f"slowdown factor must be > 1, got {self.factor}"
            )

    def active(self, t: int) -> bool:
        """Whether this fault is active at cycle ``t``."""
        return t >= self.start and (self.end is None or t < self.end)

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "UnitFault":
        """Build a unit fault, rejecting unknown fields by name instead
        of silently dropping them (or dying in ``TypeError``)."""
        if not isinstance(data, dict):
            raise FaultPlanError(
                f"unit fault must be a JSON object, got {data!r}"
            )
        known = {"unit", "index", "start", "end", "kind", "factor"}
        extra = set(data) - known
        if extra:
            raise FaultPlanError(
                f"unknown unit-fault keys: {sorted(extra)} "
                f"(expected a subset of {sorted(known)})"
            )
        return cls(**data)


@dataclass(frozen=True)
class ShardFault:
    """One worker-level fault on a sharded run.

    ``shard``
        Which shard worker (0-based) the fault targets.
    ``cycle``
        The fault fires at the first lockstep barrier whose horizon
        reaches this simulated cycle.  Firing is one-shot: after a
        rollback the coordinator does not re-arm the fault, so replay
        converges.
    ``kind``
        ``"kill"`` -- the worker dies with ``os._exit(137)`` (a
        SIGKILL stand-in) before touching its machine; ``"hang"`` --
        the worker stops responding forever (detected by the reply
        deadline); ``"slow"`` -- the worker sleeps ``delay`` seconds
        before handling the command (crosses the detection threshold
        only when ``delay`` exceeds the policy deadline).
    """

    shard: int
    cycle: int
    kind: str = "kill"
    delay: float = 1.0

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "kind", _SHARD_KIND_ALIASES.get(self.kind, self.kind)
        )
        if self.kind not in SHARD_FAULT_KINDS:
            raise FaultPlanError(
                f"unknown shard-fault kind {self.kind!r}; expected one "
                f"of {SHARD_FAULT_KINDS}"
            )
        if self.shard < 0:
            raise FaultPlanError(
                f"shard index must be >= 0, got {self.shard}"
            )
        if self.cycle < 0:
            raise FaultPlanError(
                f"shard-fault cycle must be >= 0, got {self.cycle}"
            )
        if self.kind == "slow" and self.delay <= 0:
            raise FaultPlanError(
                f"slow-shard delay must be > 0 seconds, got {self.delay}"
            )

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "ShardFault":
        if not isinstance(data, dict):
            raise FaultPlanError(
                f"shard fault must be a JSON object, got {data!r}"
            )
        known = {"shard", "cycle", "kind", "delay"}
        extra = set(data) - known
        if extra:
            raise FaultPlanError(
                f"unknown shard-fault keys: {sorted(extra)} "
                f"(expected a subset of {sorted(known)})"
            )
        return cls(**data)


@dataclass(frozen=True)
class FaultPlan:
    """A seeded description of every fault injected into one run.

    Packet probabilities are per *packet copy* traversing a network:

    ``drop_result`` / ``dup_result`` / ``corrupt_result``
        Result packets (FU/AM/PE output values travelling the
        distribution network to their destination cells).
    ``drop_ack`` / ``dup_ack``
        Acknowledge packets (consumers releasing producers).
    ``unit_faults``
        Unit outage/slowdown windows (:class:`UnitFault`).
    ``shard_faults``
        Worker-level faults (:class:`ShardFault`): kill, hang or slow
        one shard worker of a sharded run at a given cycle.  Consumed
        by the :class:`~repro.machine.sharded.ShardedRunner`
        coordinator (the injector never sees them) and only honored
        over real worker processes.
    ``derivation``
        How the injector draws packet fates.  ``"sequence"`` (default)
        draws from one ``random.Random(seed)`` stream in
        simulation-event order; ``"keyed"`` derives each fate from a
        per-packet key ``(kind, arc, seq, cycle)`` hashed with the
        seed, so the fate of a given packet copy does not depend on
        the global order of unrelated draws.  Keyed derivation is what
        lets the sharded backend inject the *same* faults as a
        single-process run even though each shard draws independently.
    """

    seed: int = 0
    drop_result: float = 0.0
    dup_result: float = 0.0
    corrupt_result: float = 0.0
    drop_ack: float = 0.0
    dup_ack: float = 0.0
    unit_faults: tuple = field(default_factory=tuple)
    derivation: str = "sequence"
    shard_faults: tuple = field(default_factory=tuple)

    def __post_init__(self) -> None:
        for name in (
            "drop_result",
            "dup_result",
            "corrupt_result",
            "drop_ack",
            "dup_ack",
        ):
            p = getattr(self, name)
            if not 0.0 <= p <= 1.0:
                raise FaultPlanError(
                    f"{name} must be a probability in [0, 1], got {p}"
                )
        if self.derivation not in ("sequence", "keyed"):
            raise FaultPlanError(
                f"unknown fate derivation {self.derivation!r}; expected "
                f"'sequence' or 'keyed'"
            )
        faults = tuple(
            f if isinstance(f, UnitFault) else UnitFault.from_dict(f)
            for f in self.unit_faults
        )
        object.__setattr__(self, "unit_faults", faults)
        shard_faults = tuple(
            f if isinstance(f, ShardFault) else ShardFault.from_dict(f)
            for f in self.shard_faults
        )
        object.__setattr__(self, "shard_faults", shard_faults)

    def __setstate__(self, state: dict[str, Any]) -> None:
        # plans pickled inside snapshots written by older builds
        # predate shard_faults; backfill so they resume cleanly
        state.setdefault("shard_faults", ())
        for key, value in state.items():
            object.__setattr__(self, key, value)

    # ------------------------------------------------------------------
    # queries used by the machine
    # ------------------------------------------------------------------
    @property
    def has_shard_faults(self) -> bool:
        return bool(self.shard_faults)

    @property
    def has_execution_faults(self) -> bool:
        """Whether anything remains once worker-level faults are split
        off -- i.e. the plan still perturbs the simulation itself."""
        return self.has_packet_faults or bool(self.unit_faults)

    def without_shard_faults(self) -> "FaultPlan":
        """A copy with the worker-level faults stripped.

        Layers that consume ``shard_faults`` themselves (the sharded
        coordinator, the serve worker pool -- which maps ``shard`` to a
        job's *attempt* index) use this to forward only the packet/unit
        remainder into the actual execution.
        """
        if not self.shard_faults:
            return self
        return replace(self, shard_faults=())

    @property
    def has_packet_faults(self) -> bool:
        return any(
            (
                self.drop_result,
                self.dup_result,
                self.corrupt_result,
                self.drop_ack,
                self.dup_ack,
            )
        )

    def faults_for(self, unit: str, index: int) -> Iterable[UnitFault]:
        return (
            f for f in self.unit_faults
            if f.unit == unit and f.index == index
        )

    def is_dead(self, unit: str, index: int, t: int) -> bool:
        """Whether unit ``index`` of kind ``unit`` is out at cycle ``t``."""
        return any(
            f.kind == "outage" and f.active(t)
            for f in self.faults_for(unit, index)
        )

    def slow_factor(self, unit: str, index: int, t: int) -> float:
        """Combined slowdown multiplier for a unit at cycle ``t``."""
        factor = 1.0
        for f in self.faults_for(unit, index):
            if f.kind == "slow" and f.active(t):
                factor *= f.factor
        return factor

    # ------------------------------------------------------------------
    # serialization (the --plan JSON schema)
    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        d = asdict(self)
        # plans without shard faults stay on schema 1 so builds that
        # predate worker-level faults keep reading them
        d["schema"] = SCHEMA_VERSION if self.shard_faults else 1
        d["unit_faults"] = [asdict(f) for f in self.unit_faults]
        d["shard_faults"] = [asdict(f) for f in self.shard_faults]
        if not self.shard_faults:
            del d["shard_faults"]
        return d

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "FaultPlan":
        data = dict(data)
        # schema-less plans predate versioning and read as version 1
        schema = data.pop("schema", 1)
        if schema not in READABLE_SCHEMAS:
            raise FaultPlanError(
                f"fault-plan schema version {schema!r} is not supported; "
                f"this build reads versions {READABLE_SCHEMAS}"
            )
        known = {
            "seed",
            "drop_result",
            "dup_result",
            "corrupt_result",
            "drop_ack",
            "dup_ack",
            "unit_faults",
            "derivation",
            "shard_faults",
        }
        extra = set(data) - known
        if extra:
            raise FaultPlanError(
                f"unknown fault-plan keys: {sorted(extra)} "
                f"(expected a subset of {sorted(known | {'schema'})})"
            )
        data["unit_faults"] = tuple(
            UnitFault.from_dict(f) if isinstance(f, dict) else f
            for f in data.get("unit_faults", ())
        )
        data["shard_faults"] = tuple(
            ShardFault.from_dict(f) if isinstance(f, dict) else f
            for f in data.get("shard_faults", ())
        )
        return cls(**data)

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise FaultPlanError(f"bad fault-plan JSON: {exc}") from exc
        if not isinstance(data, dict):
            raise FaultPlanError("fault plan must be a JSON object")
        return cls.from_dict(data)

    def describe(self) -> str:
        parts = [f"seed={self.seed}"]
        if self.derivation != "sequence":
            parts.append(f"derivation={self.derivation}")
        for name in ("drop_result", "dup_result", "corrupt_result",
                     "drop_ack", "dup_ack"):
            p = getattr(self, name)
            if p:
                parts.append(f"{name}={p:g}")
        for f in self.unit_faults:
            window = f"[{f.start},{'inf' if f.end is None else f.end})"
            detail = "" if f.kind == "outage" else f" x{f.factor:g}"
            parts.append(f"{f.unit}{f.index} {f.kind}{detail} {window}")
        for f in self.shard_faults:
            detail = f" {f.delay:g}s" if f.kind == "slow" else ""
            parts.append(f"shard{f.shard} {f.kind}{detail} @{f.cycle}")
        return "FaultPlan(" + ", ".join(parts) + ")"
