"""Runtime fault injection driven by a :class:`FaultPlan`.

The :class:`FaultInjector` is consulted by the machine simulator once
per packet transmission (and per unit decision); every stochastic call
draws from one seeded :class:`random.Random` stream, so a plan injects
an identical fault sequence on every run of the same workload.

Shard-level faults (``kill_shard`` / ``hang_shard`` / ``slow_shard``,
schema 2) are *not* handled here: they target the worker process, not
the modeled machine, so the sharded coordinator and worker transport
execute them and the self-healing layer (DESIGN.md section 10) repairs
the damage.  The injector only ever sees the packet- and unit-level
entries of a plan.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any

from .plan import FaultPlan


@dataclass
class FaultStats:
    """What the injector actually did during one run."""

    results_dropped: int = 0
    results_duplicated: int = 0
    results_corrupted: int = 0
    acks_dropped: int = 0
    acks_duplicated: int = 0
    ops_lost_to_outage: int = 0
    units_evicted: int = 0
    cells_rerouted: int = 0

    @property
    def total_injected(self) -> int:
        return (
            self.results_dropped
            + self.results_duplicated
            + self.results_corrupted
            + self.acks_dropped
            + self.acks_duplicated
            + self.ops_lost_to_outage
        )

    def summary(self) -> str:
        return (
            f"faults injected: {self.results_dropped} results dropped, "
            f"{self.results_duplicated} duplicated, "
            f"{self.results_corrupted} corrupted; "
            f"{self.acks_dropped} acks dropped, "
            f"{self.acks_duplicated} duplicated; "
            f"{self.ops_lost_to_outage} ops lost to outages; "
            f"{self.units_evicted} units evicted, "
            f"{self.cells_rerouted} cells rerouted"
        )


@dataclass
class PacketFate:
    """What happens to one logical packet on the network.

    ``deliveries`` holds the values that actually arrive (0, 1 or 2
    copies); ``corrupted`` flags per-copy transit corruption so the
    receiver's checksum layer (when enabled) can discard them instead.
    """

    deliveries: list = field(default_factory=list)
    corrupted: list = field(default_factory=list)
    dropped: int = 0


class FaultInjector:
    """Stateful, deterministic fault source for one machine run."""

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self.stats = FaultStats()
        self._rng = random.Random(plan.seed)
        self._evicted: set[tuple[str, int]] = set()

    # ------------------------------------------------------------------
    # packet fates
    # ------------------------------------------------------------------
    def _fate_rng(self, kind: str, key: Any) -> random.Random:
        """RNG for one packet's fate.

        Sequence derivation shares the run-wide stream; keyed
        derivation seeds a throwaway stream from ``(seed, kind, key)``
        so the fate is a pure function of the packet's identity --
        independent of how many unrelated draws happened before it,
        and therefore identical across process boundaries.  The key
        must include the current cycle: a retransmitted packet (same
        arc, same sequence number, later cycle) needs a *fresh* fate,
        otherwise a dropped packet would be re-dropped forever.
        """
        if key is None or self.plan.derivation != "keyed":
            return self._rng
        return random.Random(f"{self.plan.seed}:{kind}:{key}")

    @staticmethod
    def _roll(rng: random.Random, p: float) -> bool:
        return p > 0.0 and rng.random() < p

    def result_fate(self, value: Any, key: Any = None) -> PacketFate:
        """Decide drop/duplication/corruption for one result packet."""
        rng = self._fate_rng("res", key)
        fate = PacketFate()
        copies = 1
        if self._roll(rng, self.plan.dup_result):
            copies += 1
            self.stats.results_duplicated += 1
        for _ in range(copies):
            if self._roll(rng, self.plan.drop_result):
                self.stats.results_dropped += 1
                fate.dropped += 1
                continue
            corrupted = self._roll(rng, self.plan.corrupt_result)
            if corrupted:
                self.stats.results_corrupted += 1
            fate.deliveries.append(
                self.corrupt_value(value) if corrupted else value
            )
            fate.corrupted.append(corrupted)
        return fate

    def ack_fate(self, key: Any = None) -> int:
        """Number of copies of one ack packet that actually arrive."""
        rng = self._fate_rng("ack", key)
        copies = 1
        if self._roll(rng, self.plan.dup_ack):
            copies += 1
            self.stats.acks_duplicated += 1
        arriving = 0
        for _ in range(copies):
            if self._roll(rng, self.plan.drop_ack):
                self.stats.acks_dropped += 1
            else:
                arriving += 1
        return arriving

    @staticmethod
    def corrupt_value(value: Any) -> Any:
        """A deterministic transient corruption of an in-flight value."""
        if isinstance(value, bool):
            return not value
        if isinstance(value, (int, float)):
            return value + 1.0
        return value

    # ------------------------------------------------------------------
    # unit-level faults
    # ------------------------------------------------------------------
    def is_dead(self, unit: str, index: int, t: int) -> bool:
        return self.plan.is_dead(unit, index, t)

    def slow_factor(self, unit: str, index: int, t: int) -> float:
        return self.plan.slow_factor(unit, index, t)

    def note_eviction(self, unit: str, index: int) -> None:
        """Count the first time a dead unit is skipped by a scheduler."""
        if (unit, index) not in self._evicted:
            self._evicted.add((unit, index))
            self.stats.units_evicted += 1

    def note_reroute(self, n_cells: int = 1) -> None:
        self.stats.cells_rerouted += n_cells

    def note_op_lost(self) -> None:
        self.stats.ops_lost_to_outage += 1
