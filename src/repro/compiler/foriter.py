"""Pipelined mapping of for-iter constructs (Section 7, Theorem 3).

Three schemes:

* :func:`compile_foriter_todd` -- Todd's translation (Figure 7): the
  body F compiled as a feedback loop through a MERGE whose result is
  both the output and, under a gated destination, the next x input.
  Cycle length = F depth + 1, so Example 2 runs at rate **1/3**.
* :func:`compile_foriter_companion` -- the paper's contribution
  (Figure 8): extract the recurrence's companion algebra (affine ring,
  max-plus / min-plus tropical, or Moebius/linear-fractional), compute
  composed coefficients c_i = G(a_i, ..., a_{i-s+1}) in an acyclic
  *companion pipeline*, and run an even loop of length 2s with s values
  circulating: rate **1/2** (maximum) for the affine/tropical cases.
  ``s`` defaults to the algebra's minimum (2 for affine -- the paper's
  Figure 8 -- and 3 for Moebius whose F pipeline is deeper); larger
  distances use the associative G-tree.

  Injection note (measured): the first s values enter the loop through
  a funnel of merges; for the affine loop their arrival is even and
  the rate is exactly 1/2.  The deeper Moebius loop cannot be injected
  perfectly evenly by runtime-computed initial values -- a saturated
  loop never re-spaces its tokens -- so the Thomas-sweep measures
  II ~2.33 instead of 2.0 (still 1.7x over Todd's 4.0).  An alternative
  ``injection='prefix'`` strategy (identity-padded prefix coefficients,
  only the constant x0 injected) is provided; its guard merges cost
  more in practice (~3.3).  Closing this last gap appears to need
  elastic (multi-token) arcs, which the static architecture does not
  have.
* :func:`compile_foriter_interleaved` -- the Section 9 remark: a batch
  of b *independent* recurrence instances interleaved through one loop
  of length 2b; full rate without any companion function, trading
  latency and batching.

All schemes record their loop arcs in ``graph.meta['feedback_arcs']``
so the balancing pass leaves the cycles untouched.
"""

from __future__ import annotations

from typing import Any, Mapping, Optional, Sequence

from ..errors import CompileError, RecurrenceError
from ..graph.cell import GATE_PORT
from ..graph.graph import DataflowGraph
from ..graph.opcodes import (
    MERGE_CONTROL_PORT,
    MERGE_FALSE_PORT,
    MERGE_TRUE_PORT,
    Op,
)
from ..val import ast_nodes as A
from ..val.classify import ForIterInfo, classify_foriter
from ..val.interpreter import eval_expr
from .context import ROOT, Filter, Seq, Split, Uniform
from .expr import ArraySpec, ExprBuilder, Wire
from .forall import BlockArtifact, _finish_block
from .recurrence import LinearForm, MobiusForm, extract_recurrence, shift_index


def _eval_init(info: ForIterInfo, params: Mapping[str, int]) -> Any:
    """The accumulator's initial value (a scalar PE over constants)."""
    try:
        return eval_expr(info.init_expr, dict(params))
    except Exception as exc:
        raise CompileError(
            f"cannot evaluate the loop initial value at compile time: {exc}"
        ) from exc


def _annotate_loop(g: DataflowGraph, tokens: int) -> None:
    """Record the loop's structural rate bound in ``g.meta['loop']``.

    The marked-graph rate analysis cannot see values injected through a
    MERGE (it reports rate 0 for such cycles), so the schemes record
    the cycle length L (FIFOs expanded) and the number of circulating
    values k; the steady-state rate bound is min(k, L-k)/L -- 1/2 only
    when L = 2k (the paper's even-loop requirement).
    """
    from fractions import Fraction

    loop_arcs = g.meta.get("feedback_arcs", [])
    if not loop_arcs:
        return
    cells = {g.arcs[a].src for a in loop_arcs} | {
        g.arcs[a].dst for a in loop_arcs
    }
    length = sum(
        g.cells[c].params.get("depth", 1) if g.cells[c].op is Op.FIFO else 1
        for c in cells
    )
    rate = Fraction(min(tokens, length - tokens), length) if length else None
    g.meta["loop"] = {"length": length, "tokens": tokens, "rate_bound": rate}


def _mark_feedback(g: DataflowGraph) -> list[int]:
    """Record every arc inside a strongly connected component as a
    feedback (loop) arc so balancing skips it."""
    from ..analysis.rate import _tarjan_sccs

    adj: dict[int, list[tuple[int, int]]] = {}
    for arc in g.arcs.values():
        adj.setdefault(arc.src, []).append((arc.dst, 0))
    sccs = _tarjan_sccs(list(g.cells), adj)
    comp_of: dict[int, int] = {}
    for k, comp in enumerate(sccs):
        for cid in comp:
            comp_of[cid] = k
    big = {k for k, comp in enumerate(sccs) if len(comp) > 1}
    loop_arcs = [
        a.aid
        for a in g.arcs.values()
        if comp_of[a.src] == comp_of[a.dst] and comp_of[a.src] in big
    ]
    g.meta["feedback_arcs"] = loop_arcs
    return loop_arcs


def _serialize(
    builder: ExprBuilder, g: DataflowGraph, items: Sequence[Any], name: str
) -> Wire:
    """Funnel a list of single-token endpoints (Wire or constant) into
    one stream emitting them in order, via a chain of merges."""
    if all(not isinstance(it, Wire) for it in items):
        return Wire(
            g.add_pattern_source(f"{name}_init", [v for v in items]), ROOT
        )
    def endpoint(it: Any) -> Wire:
        if isinstance(it, Wire):
            return it
        return Wire(g.add_pattern_source(f"{name}_c{id(it)%997}", [it]), ROOT)

    acc = endpoint(items[0])
    for k in range(1, len(items)):
        merge = g.add_merge(name=f"{name}_ser{k}")
        ctl = g.add_pattern_source(
            f"{name}_serctl{k}", [True] * k + [False]
        )
        g.connect(ctl, merge, MERGE_CONTROL_PORT)
        g.connect(acc.cell, merge, MERGE_TRUE_PORT, tag=acc.tag)
        it = items[k]
        if isinstance(it, Wire):
            g.connect(it.cell, merge, MERGE_FALSE_PORT, tag=it.tag)
        else:
            g.set_const(merge, MERGE_FALSE_PORT, it)
        acc = Wire(merge, ROOT)
    return acc


# ---------------------------------------------------------------------------
# Todd's scheme (Figure 7)
# ---------------------------------------------------------------------------


def compile_foriter_todd(
    name: str,
    node: A.ForIter,
    arrays: Mapping[str, ArraySpec],
    params: Mapping[str, int],
) -> BlockArtifact:
    """Todd's translation: correct for every primitive for-iter, but the
    feedback cycle limits the rate to 1/(F depth + 1)."""
    info = classify_foriter(node, set(arrays), params)
    init_value = _eval_init(info, params)
    g = DataflowGraph(name)
    # The loop *body* (the definition part) is evaluated for every
    # counter value up to body_hi -- one past the last append when the
    # terminating arm does not append (paper Example 2 as printed) --
    # so the builder ranges over the body iterations and the element
    # value is narrowed to the appended ones.
    builder = ExprBuilder(
        g, info.counter, info.elem_lo, info.body_hi, params, arrays,
        prefix=f"{name}.",
    )
    elem_ctx = _window_ctx(builder, info.elem_lo, info.elem_hi)
    n_out = info.result_hi - info.result_lo + 1
    n_elem = info.n_elements
    n_body = info.body_hi - info.elem_lo + 1

    merge = g.add_merge(name=f"{name}.loop_merge")
    # The merge output is the x stream x_{r}, x_{lo}, ...; its gated
    # destinations feed the first n_body values back as x_{i-1}.
    builder.bind_feedback(info.acc, -1, Wire(merge, ROOT, tag=True))

    for d in info.let_defs:
        builder.bind(d.name, builder.compile(d.expr, ROOT), ROOT)
    f_out = builder.materialize(
        builder.compile(info.element_expr, elem_ctx), elem_ctx
    )
    in_ctl = g.add_pattern_source(
        f"{name}.initctl", [False] + [True] * n_elem
    )
    g.connect(in_ctl, merge, MERGE_CONTROL_PORT)
    g.connect(f_out.cell, merge, MERGE_TRUE_PORT, tag=f_out.tag)
    g.set_const(merge, MERGE_FALSE_PORT, init_value)

    # feedback switch: supply x values only while some cell consumes them
    feedback_used = any(
        arc.tag is True for arc in g.out_arcs[merge]
    )
    k = n_body if feedback_used else 0
    fb_ctl = g.add_pattern_source(
        f"{name}.fbctl", [True] * k + [False] * (n_out - k)
    )
    g.connect(fb_ctl, merge, GATE_PORT)

    art = _finish_block(
        name, g, builder, Wire(merge, ROOT), info.result_lo, info.result_hi,
        arrays,
    )
    art.feedback_arcs = _mark_feedback(g)
    _annotate_loop(g, tokens=1)
    return art


# ---------------------------------------------------------------------------
# Companion scheme (Figure 8)
# ---------------------------------------------------------------------------


def compile_foriter_companion(
    name: str,
    node: A.ForIter,
    arrays: Mapping[str, ArraySpec],
    params: Mapping[str, int],
    distance: int = 2,
    injection: str = "funnel",
) -> BlockArtifact:
    """The paper's maximum-rate scheme, generalized over companion
    algebras.

    ``distance`` (s) is the dependence distance after companion
    composition; the loop has 2s stages with s values circulating, so
    the rate is the maximum 1/2 for every supported algebra.  The
    minimum s depends on the recurrence function's depth: 2 for affine
    and tropical forms (the paper's Figure 8), 3 for linear fractional
    (Moebius) forms whose F is MUL/ADD//MUL/ADD/DIV.  Larger distances
    exercise the log-depth associative G tree (Section 7's remark).
    """
    if distance < 2:
        raise CompileError("companion distance must be >= 2")
    if injection not in ("funnel", "prefix"):
        raise CompileError(f"unknown injection strategy {injection!r}")
    info = classify_foriter(node, set(arrays), params)
    form = extract_recurrence(info, params)  # may raise RecurrenceError
    impl = _f_impl(form)
    if injection == "prefix":
        return _compile_companion_prefix(
            name, node, info, impl, arrays, params, distance
        )
    s = max(distance, impl.min_distance)
    init_value = _eval_init(info, params)
    n_out = info.result_hi - info.result_lo + 1
    n_elem = info.n_elements
    _ = n_elem

    g = DataflowGraph(name)
    builder = ExprBuilder(
        g, info.counter, info.elem_lo, info.elem_hi, params, arrays,
        prefix=f"{name}.",
    )

    if n_out <= s:
        # Degenerate short loop: unroll completely, no feedback at all.
        values = _unrolled_values(
            builder, info, impl, params, init_value, n_out - 1
        )
        out = _serialize(builder, g, values, f"{name}.unroll")
        art = _finish_block(
            name, g, builder, out, info.result_lo, info.result_hi, arrays
        )
        art.feedback_arcs = _mark_feedback(g)
        return art

    # -- companion pipeline: composed coefficients for i in [lo+s-1, hi] --
    comp_ctx = _window_ctx(builder, info.elem_lo + s - 1, info.elem_hi)
    comps = _composed_coefficients(builder, info, impl, params, s, comp_ctx)

    # -- initial values x_r .. x_{r+s-1} (the first is the init constant) --
    inits = _unrolled_values(builder, info, impl, params, init_value, s - 1)
    funnel = _serialize(builder, g, inits, f"{name}.init")

    # -- the even loop: F cells, MERGE, [FIFO pad], gated ID ----------------
    f_out, x_ports = impl.emit_f(g, builder, name, comps, comp_ctx)
    merge = g.add_merge(name=f"{name}.loop_merge")
    in_ctl = g.add_pattern_source(
        f"{name}.initctl", [False] * s + [True] * (n_out - s)
    )
    g.connect(in_ctl, merge, MERGE_CONTROL_PORT)
    g.connect(f_out, merge, MERGE_TRUE_PORT)
    g.connect(funnel.cell, merge, MERGE_FALSE_PORT, tag=funnel.tag)

    # feedback path: pad so the cycle has exactly 2s stages
    pad = 2 * s - (impl.f_depth + 2)  # F stages + MERGE + gate
    fb_src: int = merge
    if pad > 0:
        fifo = g.add_fifo(pad, name=f"{name}.loop_pad")
        g.connect(merge, fifo, 0)
        fb_src = fifo
    gate = g.add_cell(Op.ID, name=f"{name}.loop_gate")
    fb_ctl = g.add_pattern_source(
        f"{name}.fbctl", [True] * (n_out - s) + [False] * s
    )
    g.connect(fb_src, gate, 0)
    g.connect(fb_ctl, gate, GATE_PORT)
    for cell, port in x_ports:
        g.connect(gate, cell, port, tag=True)

    art = _finish_block(
        name, g, builder, Wire(merge, ROOT), info.result_lo, info.result_hi,
        arrays,
    )
    art.feedback_arcs = _mark_feedback(g)
    _annotate_loop(g, tokens=s)
    return art


def _compile_companion_prefix(
    name: str,
    node: A.ForIter,
    info: ForIterInfo,
    impl,
    arrays: Mapping[str, ArraySpec],
    params: Mapping[str, int],
    distance: int,
) -> BlockArtifact:
    """Maximum-rate companion loop with *identity-padded prefix*
    coefficients.

    Instead of pre-computing s-1 initial values and funnelling them into
    the loop (whose uneven arrival permanently de-spaces a saturated
    loop), every output is computed from the constant x0:

        x_i = F(M_i o ... o M_max(lo, i-s+1), x_{i-s})   with
        M_j = identity for j < lo,

    so the early iterations use shorter prefixes (identity padding folds
    away at compile time) and the x input needs only the always-ready
    constant x0 for the first s firings -- injection timing is perfect
    by construction and the loop sustains the full rate 1/2.
    """
    init_value = _eval_init(info, params)
    n_out = info.result_hi - info.result_lo + 1
    n_elem = info.n_elements
    lo = info.elem_lo
    s_min = -(-(impl.f_depth + 3) // 2)  # ceil((F + inject + merge + gate)/2)
    s = max(distance, s_min)

    g = DataflowGraph(name)
    builder = ExprBuilder(
        g, info.counter, info.elem_lo, info.elem_hi, params, arrays,
        prefix=f"{name}.",
    )

    # -- identity-padded shifted coefficient leaves over the full range --
    leaves = []
    for k in range(min(s, n_elem)):
        comps_k = []
        for comp, ident in zip(impl.components, impl.identity):
            expr = shift_index(comp, info.counter, k, params)
            if k > 0:
                guard = A.BinOp(
                    "<",
                    A.BinOp(
                        "-", A.Ident(info.counter), A.Literal(k, A.INTEGER)
                    ),
                    A.Literal(lo, A.INTEGER),
                )
                expr = A.If(guard, A.Literal(ident, A.REAL), expr)
            comps_k.append(builder.compile(expr, ROOT))
        leaves.append(tuple(comps_k))
    level = leaves
    while len(level) > 1:
        nxt = []
        for j in range(0, len(level) - 1, 2):
            nxt.append(impl.compose(builder, level[j], level[j + 1], ROOT))
        if len(level) % 2:
            nxt.append(level[-1])
        level = nxt
    comps = level[0]

    # -- F cells --------------------------------------------------------
    f_out, x_ports = impl.emit_f(g, builder, name, comps, ROOT)

    # -- x injector: constant x0 for the first s iterations --------------
    inject = g.add_merge(name=f"{name}.loop_inject")
    n_fb = max(0, n_elem - s)
    inj_ctl = g.add_pattern_source(
        f"{name}.injctl", [True] * min(s, n_elem) + [False] * n_fb
    )
    g.connect(inj_ctl, inject, MERGE_CONTROL_PORT)
    g.set_const(inject, MERGE_TRUE_PORT, init_value)
    for cell, port in x_ports:
        g.connect(inject, cell, port)

    # -- output merge: x0 first, then the computed stream ----------------
    merge = g.add_merge(name=f"{name}.loop_merge")
    out_ctl = g.add_pattern_source(
        f"{name}.initctl", [False] + [True] * n_elem
    )
    g.connect(out_ctl, merge, MERGE_CONTROL_PORT)
    g.connect(f_out, merge, MERGE_TRUE_PORT)
    g.set_const(merge, MERGE_FALSE_PORT, init_value)

    # -- feedback: outputs x_lo .. x_{hi-s} re-enter as x_{i-s} ----------
    if n_fb > 0:
        pad = 2 * s - (impl.f_depth + 3)
        fb_src: int = merge
        if pad > 0:
            fifo = g.add_fifo(pad, name=f"{name}.loop_pad")
            g.connect(merge, fifo, 0)
            fb_src = fifo
        gate = g.add_cell(Op.ID, name=f"{name}.loop_gate")
        fb_ctl = g.add_pattern_source(
            f"{name}.fbctl",
            [False] + [True] * n_fb + [False] * (n_out - 1 - n_fb),
        )
        g.connect(fb_src, gate, 0)
        g.connect(fb_ctl, gate, GATE_PORT)
        g.connect(gate, inject, MERGE_FALSE_PORT, tag=True)
    else:
        g.set_const(inject, MERGE_FALSE_PORT, init_value)  # never selected

    art = _finish_block(
        name, g, builder, Wire(merge, ROOT), info.result_lo, info.result_hi,
        arrays,
    )
    art.feedback_arcs = _mark_feedback(g)
    _annotate_loop(g, tokens=s)
    _ = node
    return art


class _AffineImpl:
    """F = (x otimes c1) oplus c0 over a ring or tropical semiring."""

    f_depth = 2
    min_distance = 2

    def __init__(self, form: LinearForm) -> None:
        self.form = form
        self.algebra = form.algebra
        #: the identity transform's components ((x) identity, (+) identity)
        self.identity = (form.algebra.one, form.algebra.zero)

    @property
    def components(self):
        return (self.form.coeff, self.form.offset)

    def compose(self, builder, p, q, ctx):
        ot, op = self.algebra.otimes, self.algebra.oplus
        c1 = builder.combine(ot, p[0], q[0], ctx)
        c0 = builder.combine(op, builder.combine(ot, p[0], q[1], ctx), p[1], ctx)
        return (c1, c0)

    def emit_f(self, g, builder, name, comps, ctx):
        from .expr import COMBINE_OPS

        alg = self.algebra
        otimes = g.add_cell(COMBINE_OPS[alg.otimes], name=f"{name}.loop_otimes")
        oplus = g.add_cell(COMBINE_OPS[alg.oplus], name=f"{name}.loop_oplus")
        builder.connect_value(comps[0], otimes, 0, ctx)
        g.connect(otimes, oplus, 0)
        builder.connect_value(comps[1], oplus, 1, ctx)
        return oplus, [(otimes, 1)]

    def eval_scalar(self, builder, comps, prev, ctx):
        term = builder.combine(self.algebra.otimes, prev, comps[0], ctx)
        return builder.combine(self.algebra.oplus, term, comps[1], ctx)


class _MobiusImpl:
    """F = (a x + b) / (c x + d); G = 2x2 matrix product (associative).

    The F pipeline is MUL/ADD in the numerator and denominator (in
    parallel) feeding a DIV: depth 3, so the minimum even loop has 6
    stages with 3 circulating values.
    """

    f_depth = 3
    min_distance = 3
    #: the identity matrix [[1, 0], [0, 1]]
    identity = (1.0, 0.0, 0.0, 1.0)

    def __init__(self, form: MobiusForm) -> None:
        self.form = form

    @property
    def components(self):
        return self.form.components

    def compose(self, builder, p, q, ctx):
        def dot(u1, v1, u2, v2):
            return builder.combine(
                "+",
                builder.combine("*", u1, v1, ctx),
                builder.combine("*", u2, v2, ctx),
                ctx,
            )

        pa, pb, pc, pd = p
        qa, qb, qc, qd = q
        return (
            dot(pa, qa, pb, qc),
            dot(pa, qb, pb, qd),
            dot(pc, qa, pd, qc),
            dot(pc, qb, pd, qd),
        )

    def emit_f(self, g, builder, name, comps, ctx):
        num_mul = g.add_cell(Op.MUL, name=f"{name}.loop_num_mul")
        num_add = g.add_cell(Op.ADD, name=f"{name}.loop_num_add")
        den_mul = g.add_cell(Op.MUL, name=f"{name}.loop_den_mul")
        den_add = g.add_cell(Op.ADD, name=f"{name}.loop_den_add")
        div = g.add_cell(Op.DIV, name=f"{name}.loop_div")
        builder.connect_value(comps[0], num_mul, 0, ctx)
        builder.connect_value(comps[1], num_add, 1, ctx)
        builder.connect_value(comps[2], den_mul, 0, ctx)
        builder.connect_value(comps[3], den_add, 1, ctx)
        g.connect(num_mul, num_add, 0)
        g.connect(den_mul, den_add, 0)
        g.connect(num_add, div, 0)
        g.connect(den_add, div, 1)
        return div, [(num_mul, 1), (den_mul, 1)]

    def eval_scalar(self, builder, comps, prev, ctx):
        num = builder.combine(
            "+", builder.combine("*", comps[0], prev, ctx), comps[1], ctx
        )
        den = builder.combine(
            "+", builder.combine("*", comps[2], prev, ctx), comps[3], ctx
        )
        return builder.combine("/", num, den, ctx)


def _f_impl(form):
    if isinstance(form, MobiusForm):
        return _MobiusImpl(form)
    return _AffineImpl(form)


def _window_ctx(builder: ExprBuilder, lo: int, hi: int):
    """A static context selecting iterations [lo, hi] of the builder's
    base range."""
    pattern = [lo <= i <= hi for i in builder.base]
    if all(pattern):
        return ROOT
    return ROOT.extend(Filter(Split.from_pattern(pattern), True))


def _composed_coefficients(
    builder: ExprBuilder,
    info: ForIterInfo,
    impl,
    params: Mapping[str, int],
    s: int,
    ctx,
):
    """The composed coefficient streams via a log-depth tree of G stages.

    The delayed parameter streams a_{i-k} are obtained by compiling the
    coefficient expressions with the index substituted (i -> i-k); the
    balancing pass aligns the resulting window skews automatically.
    G is associative in every supported algebra, so the tree reduction
    (left = newer indices) is valid.
    """
    leaves = []
    for k in range(s):
        leaves.append(
            tuple(
                builder.compile(
                    shift_index(comp, info.counter, k, params), ctx
                )
                for comp in impl.components
            )
        )
    level = leaves
    while len(level) > 1:
        nxt = []
        for j in range(0, len(level) - 1, 2):
            nxt.append(impl.compose(builder, level[j], level[j + 1], ctx))
        if len(level) % 2:
            nxt.append(level[-1])
        level = nxt
    return level[0]


def _unrolled_values(
    builder: ExprBuilder,
    info: ForIterInfo,
    impl,
    params: Mapping[str, int],
    init_value: Any,
    count: int,
) -> list[Any]:
    """[x_r, x_lo, ..., x_{lo+count-1}] as single-token endpoints or
    constants, computed by an unrolled acyclic chain."""
    values: list[Any] = [init_value]
    prev: Any = Uniform(init_value)
    for j in range(count):
        i_val = info.elem_lo + j
        ctx_j = _single_ctx(builder, i_val)
        comps = tuple(builder.compile(c, ctx_j) for c in impl.components)
        x_j = impl.eval_scalar(builder, comps, prev, ctx_j)
        values.append(
            x_j.value if isinstance(x_j, Uniform) else _single_wire(builder, x_j, ctx_j)
        )
        prev = x_j
    return values


def _single_ctx(builder: ExprBuilder, i_val: int):
    pattern = [i == i_val for i in builder.base]
    return ROOT.extend(Filter(Split.from_pattern(pattern), True))


def _single_wire(builder: ExprBuilder, v: Any, ctx) -> Wire:
    if isinstance(v, Wire):
        return v
    if isinstance(v, Uniform):
        return builder.materialize(Seq((v.value,)), ctx)
    return builder.materialize(v, ctx)


# ---------------------------------------------------------------------------
# Interleaved batch scheme (Section 9 remark)
# ---------------------------------------------------------------------------


def compile_foriter_interleaved(
    name: str,
    node: A.ForIter,
    arrays: Mapping[str, ArraySpec],
    params: Mapping[str, int],
    batch: int,
) -> BlockArtifact:
    """Run ``batch`` independent instances of the recurrence through one
    loop of length 2*batch: full rate with *no* companion function, at
    the cost of batching and latency (the Section 9 trade-off).

    Input streams must be interleaved round-robin (instance j's element
    i at position ``(i - lo)*batch + j``; see :func:`interleave`), and
    only offset-0 array accesses are supported.  The output stream is
    interleaved the same way (:func:`deinterleave`).
    """
    if batch < 2:
        raise CompileError("interleaved scheme needs batch >= 2")
    info = classify_foriter(node, set(arrays), params)
    for access in info.accesses:
        if access.array != info.acc and access.offset != 0:
            raise CompileError(
                f"interleaved scheme supports offset-0 accesses only, got "
                f"{access.array}[{info.counter}{access.offset:+d}]"
            )
    init_value = _eval_init(info, params)
    n_elem = info.n_elements
    n_out = info.result_hi - info.result_lo + 1
    total_in = n_elem * batch
    total_out = n_out * batch

    g = DataflowGraph(name)
    ispecs = {
        a.name: ArraySpec(a.name, 0, total_in - 1) for a in arrays.values()
    }
    builder = ExprBuilder(
        g, info.counter, 0, total_in - 1, params, ispecs, prefix=f"{name}."
    )
    # the counter *value* at interleaved position p is lo + p // batch
    builder.bind(
        info.counter,
        Seq(tuple(info.elem_lo + p // batch for p in range(total_in))),
        ROOT,
    )

    merge = g.add_merge(name=f"{name}.loop_merge")
    fb_ctl = g.add_pattern_source(
        f"{name}.fbctl", [True] * (total_out - batch) + [False] * batch
    )
    # loop: F cells ... -> MERGE -> FIFO pad -> gated ID -> F x-entry
    gate = g.add_cell(Op.ID, name=f"{name}.loop_gate")
    g.connect(fb_ctl, gate, GATE_PORT)
    builder.bind_feedback(info.acc, -1, Wire(gate, ROOT, tag=True))

    for d in info.let_defs:
        builder.bind(d.name, builder.compile(d.expr, ROOT), ROOT)
    f_out = builder.materialize(
        builder.compile(info.element_expr, ROOT), ROOT
    )
    in_ctl = g.add_pattern_source(
        f"{name}.initctl", [False] * batch + [True] * (total_out - batch)
    )
    g.connect(in_ctl, merge, MERGE_CONTROL_PORT)
    g.connect(f_out.cell, merge, MERGE_TRUE_PORT, tag=f_out.tag)
    g.set_const(merge, MERGE_FALSE_PORT, init_value)

    # close the loop with enough padding for 2*batch stages
    loop_arcs_before = _loop_depth_estimate(g, gate, merge, f_out.cell)
    pad = 2 * batch - loop_arcs_before
    if pad < 0:
        raise CompileError(
            f"batch {batch} too small for an F pipeline of depth "
            f"{loop_arcs_before - 3}; increase the batch"
        )
    src = merge
    if pad > 0:
        fifo = g.add_fifo(pad, name=f"{name}.loop_pad")
        g.connect(merge, fifo, 0)
        src = fifo
    g.connect(src, gate, 0)

    art = _finish_block(
        name, g, builder, Wire(merge, ROOT), 0, total_out - 1, ispecs
    )
    art.feedback_arcs = _mark_feedback(g)
    _annotate_loop(g, tokens=batch)
    return art


def _loop_depth_estimate(
    g: DataflowGraph, gate: int, merge: int, f_out: int
) -> int:
    """Stages on the cycle gate -> F ... -> merge -> (pad) -> gate,
    excluding the pad: longest path from the gate to the merge plus the
    gate itself."""
    # BFS longest path on the acyclic F subgraph from gate to f_out.
    order = g.topo_order(ignore_arcs=[])
    depth: dict[int, Optional[int]] = {cid: None for cid in g.cells}
    depth[gate] = 0
    for cid in order:
        if depth[cid] is None:
            continue
        for arc in g.out_arcs[cid]:
            dst_cell = g.cells[arc.dst]
            w = dst_cell.params.get("depth", 1) if dst_cell.op is Op.FIFO else 1
            d = depth[cid] + w
            if depth[arc.dst] is None or d > depth[arc.dst]:
                depth[arc.dst] = d
    if depth[merge] is None:
        raise CompileError("internal: no path from feedback gate to merge")
    return depth[merge] + 1  # + the gate stage itself


# ---------------------------------------------------------------------------
# host-side interleave helpers
# ---------------------------------------------------------------------------


def interleave(streams: Sequence[Sequence[Any]]) -> list[Any]:
    """Round-robin interleave equal-length instance streams."""
    lengths = {len(s) for s in streams}
    if len(lengths) != 1:
        raise CompileError("interleave needs equal-length streams")
    out = []
    for k in range(lengths.pop()):
        for s in streams:
            out.append(s[k])
    return out


def deinterleave(stream: Sequence[Any], batch: int) -> list[list[Any]]:
    """Inverse of :func:`interleave`."""
    if len(stream) % batch:
        raise CompileError("stream length not a multiple of the batch")
    return [list(stream[j::batch]) for j in range(batch)]


# ---------------------------------------------------------------------------
# driver
# ---------------------------------------------------------------------------


def compile_foriter(
    name: str,
    node: A.ForIter,
    arrays: Mapping[str, ArraySpec],
    params: Mapping[str, int],
    scheme: str = "companion",
    distance: int = 2,
    batch: int = 4,
    injection: str = "funnel",
) -> BlockArtifact:
    """Compile a primitive for-iter with the chosen scheme.

    ``scheme='auto'`` uses the companion scheme when the recurrence is
    *simple* (affine) and falls back to Todd's scheme otherwise --
    the compile-time analysis the paper proposes.
    """
    if scheme == "auto":
        try:
            return compile_foriter_companion(
                name, node, arrays, params, distance, injection
            )
        except RecurrenceError:
            return compile_foriter_todd(name, node, arrays, params)
    if scheme == "companion":
        return compile_foriter_companion(
            name, node, arrays, params, distance, injection
        )
    if scheme == "todd":
        return compile_foriter_todd(name, node, arrays, params)
    if scheme == "interleaved":
        return compile_foriter_interleaved(name, node, arrays, params, batch)
    raise CompileError(f"unknown for-iter scheme {scheme!r}")


__all__ = [
    "compile_foriter",
    "compile_foriter_companion",
    "compile_foriter_interleaved",
    "compile_foriter_todd",
    "deinterleave",
    "interleave",
]
