"""Compiler from the Val subset to static dataflow machine code.

Implements the paper's constructive results: primitive-expression
mapping (Theorem 1), the forall pipeline/parallel schemes (Theorem 2),
the for-iter schemes -- Todd's, the companion-function scheme and the
Section 9 interleaved batch (Theorem 3) -- pipeline balancing
(Sections 3/8) and whole-program linking (Theorem 4).
"""

from .balance import (
    BalanceResult,
    balance_graph,
    compute_levels,
    min_buffer_stages_via_flow,
    verify_balanced,
)
from .context import ROOT, Context, Filter, Seq, Split, Uniform
from .controls import (
    ExpansionReport,
    build_selfclocked_counter,
    expand_controls,
)
from .expr import ArraySpec, ExprBuilder, Wire
from .forall import (
    BlockArtifact,
    compile_forall,
    compile_forall_parallel,
    compile_forall_pipeline,
)
from .foriter import (
    compile_foriter,
    compile_foriter_companion,
    compile_foriter_interleaved,
    compile_foriter_todd,
    deinterleave,
    interleave,
)
from .link import LinkedProgram, infer_input_ranges, link_program
from .pipeline import CompiledProgram, ProgramResult, compile_program
from .recurrence import (
    MAXPLUS,
    MINPLUS,
    RING,
    Algebra,
    LinearForm,
    MobiusForm,
    companion_apply,
    companion_fold,
    extract_linear_form,
    extract_mobius_form,
    extract_recurrence,
    extract_tropical_form,
    has_companion,
    mobius_apply,
    mobius_eval,
    shift_index,
)

__all__ = [
    "ArraySpec",
    "BalanceResult",
    "BlockArtifact",
    "CompiledProgram",
    "Context",
    "ExpansionReport",
    "ExprBuilder",
    "Filter",
    "Algebra",
    "LinearForm",
    "MAXPLUS",
    "MINPLUS",
    "MobiusForm",
    "RING",
    "LinkedProgram",
    "ProgramResult",
    "ROOT",
    "Seq",
    "Split",
    "Uniform",
    "Wire",
    "balance_graph",
    "build_selfclocked_counter",
    "companion_apply",
    "companion_fold",
    "compile_forall",
    "compile_forall_parallel",
    "compile_forall_pipeline",
    "compile_foriter",
    "compile_foriter_companion",
    "compile_foriter_interleaved",
    "compile_foriter_todd",
    "compile_program",
    "compute_levels",
    "deinterleave",
    "expand_controls",
    "extract_linear_form",
    "extract_mobius_form",
    "extract_recurrence",
    "extract_tropical_form",
    "has_companion",
    "infer_input_ranges",
    "interleave",
    "link_program",
    "mobius_apply",
    "mobius_eval",
    "min_buffer_stages_via_flow",
    "shift_index",
    "verify_balanced",
]
