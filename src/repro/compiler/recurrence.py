"""Recurrence analysis and companion functions (Section 7).

A *simple for-iter* denotes a first-order recurrence
``x_i = F(a_i, x_{i-1})`` whose recurrence function has a *companion
function* G with ``F(a, F(b, x)) = F(G(a, b), x)``.  For the linear
(affine) class the paper treats::

    x_i = a1_i * x_{i-1} + a0_i
    G((p1, p0), (q1, q0)) = (p1*q1, p1*q0 + p0)

G is associative, so a dependence distance of ``s`` needs only a
``log2 s``-deep tree of G stages (the paper's remark after Theorem 3).

:func:`extract_linear_form` symbolically rewrites the for-iter element
expression into the pair of coefficient expressions ``(P1, P0)`` --
both primitive expressions on ``i`` that do *not* reference the
accumulator -- or raises :class:`RecurrenceError` when the recurrence
is not affine (no companion function is known then, and the compiler
falls back to Todd's scheme).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional

from ..errors import RecurrenceError
from ..val import ast_nodes as A
from ..val.classify import ForIterInfo, index_offset

#: Sentinels for coefficient simplification.
_ZERO = object()
_ONE = object()

Coeff = object  # _ZERO | _ONE | A.Expr


def _mk_add(a: Coeff, b: Coeff) -> Coeff:
    if a is _ZERO:
        return b
    if b is _ZERO:
        return a
    return A.BinOp("+", _as_ast(a), _as_ast(b))


def _mk_sub(a: Coeff, b: Coeff) -> Coeff:
    if b is _ZERO:
        return a
    return A.BinOp("-", _as_ast(a), _as_ast(b))


def _mk_mul(a: Coeff, b: Coeff) -> Coeff:
    if a is _ZERO or b is _ZERO:
        return _ZERO
    if a is _ONE:
        return b
    if b is _ONE:
        return a
    return A.BinOp("*", _as_ast(a), _as_ast(b))


def _mk_div(a: Coeff, b: A.Expr) -> Coeff:
    if a is _ZERO:
        return _ZERO
    return A.BinOp("/", _as_ast(a), b)


def _mk_neg(a: Coeff) -> Coeff:
    if a is _ZERO:
        return _ZERO
    return A.UnOp("-", _as_ast(a))


def _as_ast(c: Coeff) -> A.Expr:
    if c is _ZERO:
        return A.Literal(0.0, A.REAL)
    if c is _ONE:
        return A.Literal(1.0, A.REAL)
    assert isinstance(c, A.Node)
    return c


@dataclass(frozen=True)
class Algebra:
    """A (commutative-enough) semiring the recurrence is linear over.

    The recurrence function is ``F(a, x) = (x otimes a1) oplus a0`` and
    its companion function is always
    ``G(p, q) = (p1 otimes q1, (p1 otimes q0) oplus p0)`` -- the ring
    case is the paper's; the tropical cases extend Theorem 3 to
    running-max/min recurrences (Kogge's general class, refs [11][12]).
    """

    name: str        # 'ring' | 'maxplus' | 'minplus'
    otimes: str      # combine-op key: '*' or '+'
    oplus: str       # combine-op key: '+' or 'max' / 'min'
    zero: float      # oplus identity (annihilates under otimes)
    one: float       # otimes identity


RING = Algebra("ring", "*", "+", 0.0, 1.0)
MAXPLUS = Algebra("maxplus", "+", "max", float("-inf"), 0.0)
MINPLUS = Algebra("minplus", "+", "min", float("inf"), 0.0)

ALGEBRAS = {a.name: a for a in (RING, MAXPLUS, MINPLUS)}


@dataclass
class LinearForm:
    """``element_expr == (X[i-1] otimes coeff) oplus offset`` with
    X-free coefficient expressions; ring instance:
    ``coeff * X[i-1] + offset``."""

    coeff: A.Expr
    offset: A.Expr
    algebra: Algebra = RING

    @property
    def is_pure_sum(self) -> bool:
        """True for x_i = x_{i-1} + a_i (prefix sums): coeff == 1."""
        return (
            self.algebra is RING
            and isinstance(self.coeff, A.Literal)
            and self.coeff.value in (1, 1.0)
        )


def _references_acc(expr: A.Expr, acc: str) -> bool:
    return acc in A.free_identifiers(expr)


def extract_linear_form(
    info: ForIterInfo, params: Mapping[str, int]
) -> LinearForm:
    """Rewrite the element expression as ``P1 * X[i-1] + P0``.

    Handles the full PE grammar: let definitions referencing the
    accumulator are inlined symbolically (the paper's Example 2 binds
    ``P := A[i]*T[i-1] + B[i]`` in a let); conditionals with X-free
    conditions produce conditional coefficients.
    """
    acc, counter = info.acc, info.counter

    def lin(expr: A.Expr, env: dict[str, tuple[Coeff, Coeff]]) -> tuple[Coeff, Coeff]:
        """Return (A, B) with expr == A * x + B, x = acc[counter-1]."""
        if isinstance(expr, A.Literal):
            return (_ZERO, expr)
        if isinstance(expr, A.Ident):
            if expr.name in env:
                return env[expr.name]
            if expr.name == acc:
                raise RecurrenceError(
                    f"bare accumulator reference at line {expr.line}"
                )
            return (_ZERO, expr)
        if isinstance(expr, A.Index):
            base = expr.base
            if isinstance(base, A.Ident) and base.name == acc:
                if index_offset(expr.index, counter, params) != -1:
                    raise RecurrenceError(
                        f"accumulator access at line {expr.line} is not "
                        f"{acc}[{counter}-1]"
                    )
                return (_ONE, _ZERO)
            return (_ZERO, expr)
        if isinstance(expr, A.UnOp):
            a, b = lin(expr.operand, env)
            if expr.op == "-":
                return (_mk_neg(a), _mk_neg(b))
            if a is not _ZERO:
                raise RecurrenceError(
                    f"boolean negation of the accumulator at line {expr.line}"
                )
            return (_ZERO, expr)
        if isinstance(expr, A.BinOp):
            la, lb = lin(expr.left, env)
            ra, rb = lin(expr.right, env)
            if expr.op == "+":
                return (_mk_add(la, ra), _mk_add(lb, rb))
            if expr.op == "-":
                return (_mk_sub(la, ra), _mk_sub(lb, rb))
            if expr.op == "*":
                if la is _ZERO:
                    return (_mk_mul(ra, _as_ast(lb)), _mk_mul(lb, rb))
                if ra is _ZERO:
                    return (_mk_mul(la, _as_ast(rb)), _mk_mul(lb, rb))
                raise RecurrenceError(
                    f"recurrence is quadratic in the accumulator at line "
                    f"{expr.line}; no companion function"
                )
            if expr.op == "/":
                if ra is not _ZERO:
                    raise RecurrenceError(
                        f"division by the accumulator at line {expr.line}; "
                        f"no companion function"
                    )
                return (_mk_div(la, _as_ast(rb)), _mk_div(lb, _as_ast(rb)))
            # relational / boolean operators may not involve x
            if la is not _ZERO or ra is not _ZERO:
                raise RecurrenceError(
                    f"accumulator used under {expr.op!r} at line {expr.line}; "
                    f"recurrence is not affine"
                )
            return (_ZERO, expr)
        if isinstance(expr, A.Let):
            inner = dict(env)
            for d in expr.defs:
                inner[d.name] = lin(d.expr, inner)
            return lin(expr.body, inner)
        if isinstance(expr, A.If):
            if _references_acc(expr.cond, acc):
                raise RecurrenceError(
                    f"condition at line {expr.line} depends on the "
                    f"accumulator; recurrence is not affine"
                )
            ta, tb = lin(expr.then, env)
            ea, eb = lin(expr.els, env)
            if ta is _ZERO and ea is _ZERO:
                return (_ZERO, expr)
            coeff = A.If(expr.cond, _as_ast(ta), _as_ast(ea))
            off = A.If(expr.cond, _as_ast(tb), _as_ast(eb))
            return (coeff, off)
        raise RecurrenceError(
            f"{type(expr).__name__} at line {getattr(expr, 'line', 0)} is "
            f"not allowed in a recurrence element expression"
        )

    env0: dict[str, tuple[Coeff, Coeff]] = {}
    # Pre-bind the classified let definitions (they may carry the x term).
    for d in info.let_defs:
        env0[d.name] = lin(d.expr, env0)
    a, b = lin(info.element_expr, env0)
    if a is _ZERO:
        raise RecurrenceError(
            "element expression does not reference the accumulator; this is "
            "a forall in disguise -- use the forall mapping"
        )
    return LinearForm(coeff=_as_ast(a), offset=_as_ast(b))


# ---------------------------------------------------------------------------
# tropical (max-plus / min-plus) linear forms
# ---------------------------------------------------------------------------


def _trop_lit(value: float) -> A.Expr:
    return A.Literal(value, A.REAL)


def extract_tropical_form(
    info: ForIterInfo, params: Mapping[str, int], algebra: Algebra
) -> LinearForm:
    """Rewrite the element expression as ``oplus(x + P1, P0)`` over the
    max-plus or min-plus semiring (running-extremum recurrences like
    ``x_i = max(x_{i-1} - d_i, A[i])``)."""
    if algebra.name not in ("maxplus", "minplus"):
        raise RecurrenceError(f"not a tropical algebra: {algebra.name}")
    acc, counter = info.acc, info.counter
    oplus = algebra.oplus  # 'max' or 'min'

    def mk_oplus(a: Coeff, b: Coeff) -> Coeff:
        if a is _ZERO:
            return b
        if b is _ZERO:
            return a
        return A.Builtin(oplus, [_tas(a), _tas(b)])

    def mk_shift(a: Coeff, e: A.Expr, negate: bool = False) -> Coeff:
        """a + e (tropical otimes) with identity simplification."""
        if a is _ZERO:
            return _ZERO
        term = A.UnOp("-", e) if negate else e
        if a is _ONE:
            return term
        return A.BinOp("+", _tas(a), term)

    def _tas(c: Coeff) -> A.Expr:
        if c is _ZERO:
            return _trop_lit(algebra.zero)
        if c is _ONE:
            return _trop_lit(algebra.one)
        assert isinstance(c, A.Node)
        return c

    def lin(expr: A.Expr, env: dict) -> tuple[Coeff, Coeff]:
        """(A, B) with expr == oplus(x + A, B)."""
        if isinstance(expr, A.Index):
            base = expr.base
            if isinstance(base, A.Ident) and base.name == acc:
                if index_offset(expr.index, counter, params) != -1:
                    raise RecurrenceError(
                        f"accumulator access at line {expr.line} is not "
                        f"{acc}[{counter}-1]"
                    )
                return (_ONE, _ZERO)
            return (_ZERO, expr)
        if isinstance(expr, A.Ident):
            if expr.name in env:
                return env[expr.name]
            if expr.name == acc:
                raise RecurrenceError(
                    f"bare accumulator reference at line {expr.line}"
                )
            return (_ZERO, expr)
        if isinstance(expr, A.Literal):
            return (_ZERO, expr)
        if isinstance(expr, A.Builtin):
            if expr.name != oplus:
                # the dual lattice op may only touch x-free parts
                parts = [lin(a, env) for a in expr.args]
                if any(p[0] is not _ZERO for p in parts):
                    raise RecurrenceError(
                        f"{expr.name} of the accumulator inside a "
                        f"{algebra.name} recurrence (line {expr.line})"
                    )
                return (_ZERO, expr)
            la, lb = lin(expr.args[0], env)
            ra, rb = lin(expr.args[1], env)
            return (mk_oplus(la, ra), mk_oplus(lb, rb))
        if isinstance(expr, A.BinOp):
            if expr.op in ("+", "-"):
                la, lb = lin(expr.left, env)
                ra, rb = lin(expr.right, env)
                if la is _ZERO and ra is _ZERO:
                    return (_ZERO, expr)
                if la is not _ZERO and ra is not _ZERO:
                    raise RecurrenceError(
                        f"accumulator appears on both sides of {expr.op!r} "
                        f"at line {expr.line} (not tropical-linear)"
                    )
                if la is not _ZERO:
                    # (x (+) A) (+) e2, e2 x-free
                    e2 = expr.right
                    return (
                        mk_shift(la, e2, negate=expr.op == "-"),
                        mk_shift(lb, e2, negate=expr.op == "-"),
                    )
                if expr.op == "-":
                    raise RecurrenceError(
                        f"subtracting the accumulator at line {expr.line} "
                        f"flips the lattice; not {algebra.name}-linear"
                    )
                return (mk_shift(ra, expr.left), mk_shift(rb, expr.left))
            # '*', '/', relations: only on x-free parts (scaling does not
            # distribute over max/min without sign knowledge)
            la, lb = lin(expr.left, env)
            ra, rb = lin(expr.right, env)
            if la is not _ZERO or ra is not _ZERO:
                raise RecurrenceError(
                    f"accumulator under {expr.op!r} at line {expr.line}; "
                    f"not {algebra.name}-linear"
                )
            return (_ZERO, expr)
        if isinstance(expr, A.UnOp):
            a, b = lin(expr.operand, env)
            if a is not _ZERO:
                raise RecurrenceError(
                    f"negating the accumulator at line {expr.line} flips "
                    f"the lattice; not {algebra.name}-linear"
                )
            return (_ZERO, expr)
        if isinstance(expr, A.Let):
            inner = dict(env)
            for d in expr.defs:
                inner[d.name] = lin(d.expr, inner)
            return lin(expr.body, inner)
        if isinstance(expr, A.If):
            if _references_acc(expr.cond, acc):
                raise RecurrenceError(
                    f"condition at line {expr.line} depends on the "
                    f"accumulator"
                )
            ta, tb = lin(expr.then, env)
            ea, eb = lin(expr.els, env)
            if ta is _ZERO and ea is _ZERO:
                return (_ZERO, expr)
            return (
                A.If(expr.cond, _tas(ta), _tas(ea)),
                A.If(expr.cond, _tas(tb), _tas(eb)),
            )
        raise RecurrenceError(
            f"{type(expr).__name__} not allowed in a tropical recurrence"
        )

    env0: dict = {}
    for d in info.let_defs:
        env0[d.name] = lin(d.expr, env0)
    a, b = lin(info.element_expr, env0)
    if a is _ZERO:
        raise RecurrenceError(
            "element expression does not reference the accumulator"
        )
    # local _tas closures used sentinel conversion; rebuild ASTs
    coeff = a if isinstance(a, A.Node) else _trop_lit(
        algebra.one if a is _ONE else algebra.zero
    )
    offset = b if isinstance(b, A.Node) else _trop_lit(
        algebra.one if b is _ONE else algebra.zero
    )
    return LinearForm(coeff=coeff, offset=offset, algebra=algebra)


# ---------------------------------------------------------------------------
# Moebius (linear fractional) forms -- tridiagonal sweeps
# ---------------------------------------------------------------------------


@dataclass
class MobiusForm:
    """``element_expr == (a*X[i-1] + b) / (c*X[i-1] + d)``.

    Linear fractional transformations compose as 2x2 matrices, which is
    associative, so the companion construction applies with a 4-component
    parameter vector and G = matrix multiplication.  This covers the
    Thomas tridiagonal algorithm's forward sweeps --
    ``c'_i = c_i / (b_i - a_i c'_{i-1})`` -- the classic recurrence the
    affine class misses.
    """

    a: A.Expr
    b: A.Expr
    c: A.Expr
    d: A.Expr

    @property
    def components(self) -> tuple[A.Expr, A.Expr, A.Expr, A.Expr]:
        return (self.a, self.b, self.c, self.d)


def extract_mobius_form(
    info: ForIterInfo, params: Mapping[str, int]
) -> MobiusForm:
    """Rewrite the element expression as a linear fractional transform
    of ``X[i-1]``.

    The numerator and denominator are each extracted with the affine
    machinery; a top-level affine expression is the special case with
    denominator ``0*x + 1``.
    """
    acc, counter = info.acc, info.counter
    _ = (acc, counter)

    # Find the outermost division whose operands are affine in x; the
    # whole expression must be  N / D  (possibly wrapped in lets).
    def peel(expr: A.Expr, env: dict) -> tuple[A.Expr, Optional[A.Expr], dict]:
        if isinstance(expr, A.Let):
            inner = dict(env)
            for dd in expr.defs:
                inner[dd.name] = dd.expr  # lazily substituted below
            return peel(expr.body, inner)
        if isinstance(expr, A.Ident) and expr.name in env:
            return peel(env[expr.name], env)
        if isinstance(expr, A.BinOp) and expr.op == "/":
            return expr.left, expr.right, env
        return expr, None, env

    def substitute(expr: A.Expr, env: dict) -> A.Expr:
        """Inline let-bound names so the affine extractor sees one tree."""
        if isinstance(expr, A.Ident) and expr.name in env:
            return substitute(env[expr.name], env)
        if isinstance(expr, A.Literal):
            return expr
        if isinstance(expr, A.Ident):
            return expr
        if isinstance(expr, A.BinOp):
            return A.BinOp(
                expr.op, substitute(expr.left, env), substitute(expr.right, env)
            )
        if isinstance(expr, A.UnOp):
            return A.UnOp(expr.op, substitute(expr.operand, env))
        if isinstance(expr, A.Builtin):
            return A.Builtin(expr.name, [substitute(x, env) for x in expr.args])
        if isinstance(expr, A.Index):
            return expr
        if isinstance(expr, A.If):
            return A.If(
                substitute(expr.cond, env),
                substitute(expr.then, env),
                substitute(expr.els, env),
            )
        if isinstance(expr, A.Let):
            inner = dict(env)
            for dd in expr.defs:
                inner[dd.name] = substitute(dd.expr, env)
            return substitute(expr.body, inner)
        raise RecurrenceError(
            f"{type(expr).__name__} not supported in a fractional recurrence"
        )

    env0: dict = {}
    for dd in info.let_defs:
        env0[dd.name] = dd.expr
    num, den, env = peel(info.element_expr, env0)
    if den is None:
        raise RecurrenceError(
            "element expression is not a division; not a fractional "
            "recurrence"
        )

    def affine(expr: A.Expr) -> tuple[A.Expr, A.Expr]:
        pseudo = ForIterInfo(
            counter=info.counter,
            counter_lo=info.counter_lo,
            acc=info.acc,
            init_index=info.init_index,
            init_expr=info.init_expr,
            element_expr=substitute(expr, env),
            elem_lo=info.elem_lo,
            elem_hi=info.elem_hi,
            final_append=info.final_append,
            let_defs=[],
            accesses=info.accesses,
            body_hi=info.body_hi,
        )
        try:
            form = extract_linear_form(pseudo, params)
            return form.coeff, form.offset
        except RecurrenceError as exc:
            if "does not reference" in str(exc):
                # x-free side: coefficient 0
                return A.Literal(0.0, A.REAL), substitute(expr, env)
            raise

    a_c, b_c = affine(num)
    c_c, d_c = affine(den)
    return MobiusForm(a=a_c, b=b_c, c=c_c, d=d_c)


def mobius_apply(p: tuple, q: tuple) -> tuple:
    """Host-level companion for linear fractional transforms: 2x2 matrix
    product ``[[a, b], [c, d]]``; used by tests."""
    pa, pb, pc, pd = p
    qa, qb, qc, qd = q
    return (
        pa * qa + pb * qc,
        pa * qb + pb * qd,
        pc * qa + pd * qc,
        pc * qb + pd * qd,
    )


def mobius_eval(p: tuple, x: float) -> float:
    pa, pb, pc, pd = p
    return (pa * x + pb) / (pc * x + pd)


def extract_recurrence(
    info: ForIterInfo, params: Mapping[str, int]
):
    """Find *some* algebra over which the recurrence has a companion:
    the affine ring first (the paper's case), then max-plus / min-plus
    if the element expression uses the corresponding lattice operator,
    then linear fractional transforms (tridiagonal sweeps).

    Returns a :class:`LinearForm` or a :class:`MobiusForm`.
    """
    try:
        return extract_linear_form(info, params)
    except RecurrenceError as ring_err:
        used = {
            n.name
            for n in A.walk(info.element_expr)
            if isinstance(n, A.Builtin)
        }
        for d in info.let_defs:
            used |= {
                n.name for n in A.walk(d.expr) if isinstance(n, A.Builtin)
            }
        errors = [str(ring_err)]
        for name, algebra in (("max", MAXPLUS), ("min", MINPLUS)):
            if name in used:
                try:
                    return extract_tropical_form(info, params, algebra)
                except RecurrenceError as exc:
                    errors.append(str(exc))
        try:
            return extract_mobius_form(info, params)
        except RecurrenceError as exc:
            errors.append(str(exc))
        raise RecurrenceError(
            "no companion function found; tried: " + "; ".join(errors)
        ) from None


def has_companion(info: ForIterInfo, params: Mapping[str, int]) -> bool:
    """True when the for-iter is *simple* in some supported algebra
    (Theorem 3 applies)."""
    try:
        extract_recurrence(info, params)
        return True
    except RecurrenceError:
        return False


def companion_apply(p: tuple, q: tuple, algebra: Algebra = RING):
    """Reference (host-level) companion function G on concrete pairs,
    used by tests and the interpreter cross-checks:
    ``G((p1,p0),(q1,q0)) = (p1 (x) q1, (p1 (x) q0) (+) p0)`` --
    multiplication/addition for the ring, addition/max (or min) for the
    tropical semirings."""
    p1, p0 = p
    q1, q0 = q
    if algebra is RING:
        return (p1 * q1, p1 * q0 + p0)
    join = max if algebra.name == "maxplus" else min
    return (p1 + q1, join(p1 + q0, p0))


def companion_fold(pairs: list[tuple], algebra: Algebra = RING) -> tuple:
    """Left fold of G over parameter pairs ordered newest first."""
    acc = pairs[0]
    for nxt in pairs[1:]:
        acc = companion_apply(acc, nxt, algebra)
    return acc


def shift_index(
    expr: A.Expr,
    counter: str,
    shift: int,
    params: Optional[Mapping[str, int]] = None,
) -> A.Expr:
    """Substitute ``counter := counter - shift`` throughout ``expr``.

    Array selections keep the canonical ``i+m`` shape (so rule-4
    offsets stay recognizable); value uses of the counter become
    explicit subtractions that constant-fold during compilation.
    """
    if shift == 0:
        return expr
    params = params or {}

    def shifted_index(index: A.Expr, base_offset: Optional[int]) -> A.Expr:
        assert base_offset is not None
        new = base_offset - shift
        i = A.Ident(counter)
        if new == 0:
            return i
        op = "+" if new > 0 else "-"
        return A.BinOp(op, i, A.Literal(abs(new), A.INTEGER))

    def walk(e: A.Expr) -> A.Expr:
        if isinstance(e, A.Literal):
            return e
        if isinstance(e, A.Ident):
            if e.name == counter:
                return A.BinOp("-", e, A.Literal(shift, A.INTEGER))
            return e
        if isinstance(e, A.Index):
            off = index_offset(e.index, counter, params)
            if isinstance(e.base, A.Ident) and off is not None:
                return A.Index(e.base, shifted_index(e.index, off))
            return A.Index(walk(e.base), walk(e.index))
        if isinstance(e, A.BinOp):
            return A.BinOp(e.op, walk(e.left), walk(e.right))
        if isinstance(e, A.UnOp):
            return A.UnOp(e.op, walk(e.operand))
        if isinstance(e, A.If):
            return A.If(walk(e.cond), walk(e.then), walk(e.els))
        if isinstance(e, A.Builtin):
            return A.Builtin(e.name, [walk(a) for a in e.args])
        if isinstance(e, A.Let):
            return A.Let(
                [A.Definition(d.name, d.type, walk(d.expr)) for d in e.defs],
                walk(e.body),
            )
        raise RecurrenceError(f"cannot shift {type(e).__name__}")

    return walk(expr)
