"""Balancing of acyclic instruction graphs (Sections 3 and 8).

A dataflow instruction graph sustains the maximum pipelined rate only
if every reconvergent pair of paths has equal weighted length; the
compiler restores that property by inserting FIFO buffers.  Three
algorithms are provided, mirroring the paper's Section 8 conclusions:

1. **naive** (Montz) -- label every cell with its longest-path level
   and buffer each arc by its slack.  Polynomial, correct, wasteful.
2. **reduce** -- the naive labeling improved by coordinate descent:
   each cell moves within its feasible window toward the side with more
   incident arcs, often removing much of the buffering (conclusion 2).
3. **optimal** -- minimize total inserted buffer stages exactly.  The
   problem ``min sum(pi_dst - pi_src - w)`` subject to ``pi_dst -
   pi_src >= w`` is a difference-constraint LP -- the linear programming
   dual of a min-cost flow (conclusion 3) -- with a totally unimodular
   constraint matrix, so the LP optimum (scipy HiGHS) is integral.

Arc weights come from :func:`repro.analysis.paths.default_arc_weight`:
one instruction time per hop plus the array-window phase extras the
expression compiler records (Figure 4's skew).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

import numpy as np
from scipy.optimize import linprog
from scipy.sparse import csr_matrix

from ..analysis.paths import default_arc_weight, longest_path_levels
from ..errors import AnalysisError, CompileError
from ..graph.graph import DataflowGraph
from ..graph.opcodes import Op

METHODS = ("naive", "reduce", "optimal")


@dataclass
class BalanceResult:
    """Outcome of one balancing pass."""

    method: str
    levels: dict[int, int]
    inserted_stages: int = 0
    fifo_cells: list[int] = field(default_factory=list)


def _feedback_arcs(g: DataflowGraph, extra: Iterable[int] = ()) -> set[int]:
    ignored = set(extra)
    ignored.update(g.meta.get("feedback_arcs", ()))
    return ignored


def compute_levels(
    g: DataflowGraph,
    method: str = "optimal",
    ignore_arcs: Iterable[int] = (),
) -> dict[int, int]:
    """Level (pipeline stage time) assignment for every cell."""
    if method not in METHODS:
        raise CompileError(f"unknown balancing method {method!r}")
    ignored = tuple(_feedback_arcs(g, ignore_arcs))
    if method == "naive":
        return longest_path_levels(g, ignore_arcs=ignored)
    if method == "reduce":
        naive = longest_path_levels(g, ignore_arcs=ignored)
        return _reduce_levels(g, naive, ignored)
    return _optimal_levels(g, ignored)


def _arcs_considered(g: DataflowGraph, ignored: Iterable[int]):
    skip = set(ignored)
    return [a for a in g.arcs.values() if a.aid not in skip]


def _reduce_levels(
    g: DataflowGraph, levels: dict[int, int], ignored: tuple[int, ...]
) -> dict[int, int]:
    """Coordinate-descent slack reduction from a feasible labeling."""
    w = default_arc_weight(g)
    skip = set(ignored)
    in_arcs: dict[int, list] = {cid: [] for cid in g.cells}
    out_arcs: dict[int, list] = {cid: [] for cid in g.cells}
    for a in g.arcs.values():
        if a.aid in skip:
            continue
        in_arcs[a.dst].append(a)
        out_arcs[a.src].append(a)
    levels = dict(levels)
    for _sweep in range(len(g.cells)):
        changed = False
        for cid in g.cells:
            ins, outs = in_arcs[cid], out_arcs[cid]
            lb = max((levels[a.src] + w(a) for a in ins), default=None)
            ub = min((levels[a.dst] - w(a) for a in outs), default=None)
            if lb is None and ub is None:
                continue
            gain_down = len(ins) - len(outs)  # d(total slack)/d(level)
            if gain_down > 0 and lb is not None and levels[cid] > lb:
                levels[cid] = lb
                changed = True
            elif gain_down < 0 and ub is not None and levels[cid] < ub:
                levels[cid] = ub
                changed = True
        if not changed:
            break
    return levels


def _optimal_levels(
    g: DataflowGraph, ignored: tuple[int, ...]
) -> dict[int, int]:
    """Exact minimum-total-buffer levels via the LP dual of min-cost flow."""
    w = default_arc_weight(g)
    arcs = _arcs_considered(g, ignored)
    cells = list(g.cells)
    index = {cid: k for k, cid in enumerate(cells)}
    n, m = len(cells), len(arcs)
    if m == 0:
        return {cid: 0 for cid in cells}
    # objective: sum over arcs of (pi_dst - pi_src)  (constant -sum w dropped)
    c = np.zeros(n)
    for a in arcs:
        c[index[a.dst]] += 1.0
        c[index[a.src]] -= 1.0
    # constraints: pi_src - pi_dst <= -w
    rows = np.repeat(np.arange(m), 2)
    cols = np.empty(2 * m, dtype=int)
    data = np.empty(2 * m)
    b_ub = np.empty(m)
    for k, a in enumerate(arcs):
        cols[2 * k] = index[a.src]
        data[2 * k] = 1.0
        cols[2 * k + 1] = index[a.dst]
        data[2 * k + 1] = -1.0
        b_ub[k] = -float(w(a))
    A_ub = csr_matrix((data, (rows, cols)), shape=(m, n))
    res = linprog(
        c, A_ub=A_ub, b_ub=b_ub, bounds=[(None, None)] * n, method="highs"
    )
    if not res.success:
        raise AnalysisError(f"balance LP failed: {res.message}")
    x = res.x - res.x.min()
    levels = {cid: int(round(x[index[cid]])) for cid in cells}
    # verify integrality / feasibility after rounding
    for a in arcs:
        if levels[a.dst] - levels[a.src] < w(a):
            raise AnalysisError("balance LP produced an infeasible rounding")
    return levels


def balance_graph(
    g: DataflowGraph,
    method: str = "optimal",
    ignore_arcs: Iterable[int] = (),
    levels: Optional[dict[int, int]] = None,
) -> BalanceResult:
    """Insert FIFO buffers so all reconvergent paths of ``g`` are equal.

    Mutates ``g`` in place (splicing FIFO cells onto slack arcs) and
    returns the :class:`BalanceResult`.  Arcs listed in ``ignore_arcs``
    or in ``g.meta['feedback_arcs']`` (for-iter loops) are left alone.
    """
    ignored = _feedback_arcs(g, ignore_arcs)
    if levels is None:
        levels = compute_levels(g, method=method, ignore_arcs=tuple(ignored))
    w = default_arc_weight(g)
    result = BalanceResult(method=method, levels=levels)
    for aid in list(g.arcs):
        arc = g.arcs[aid]
        if arc.aid in ignored:
            continue
        dst_cell = g.cells[arc.dst]
        if dst_cell.op is Op.SINK:
            continue  # sinks consume greedily; slack there cannot stall
        slack = levels[arc.dst] - levels[arc.src] - w(arc)
        if slack < 0:
            raise AnalysisError(
                f"negative slack {slack} on arc {arc!r}; levels infeasible"
            )
        if slack > 0:
            fifo = g.splice_fifo(aid, slack, name=f"bal{aid}")
            result.fifo_cells.append(fifo)
            result.inserted_stages += slack
    return result


def verify_balanced(g: DataflowGraph, ignore_arcs: Iterable[int] = ()) -> bool:
    """Post-condition: some potential gives zero slack on every arc
    outside sink arcs and feedback loops.

    Longest-path anchoring would falsely flag arcs out of self-paced
    SOURCE cells (they start late under backpressure, which costs no
    throughput), so the check solves the optimal-levels LP and requires
    its total slack to be zero.
    """
    ignored = _feedback_arcs(g, ignore_arcs)
    sink_arcs = {
        a.aid for a in g.arcs.values() if g.cells[a.dst].op is Op.SINK
    }
    skip = tuple(ignored | sink_arcs)
    levels = _optimal_levels(g, skip)
    w = default_arc_weight(g)
    return all(
        levels[a.dst] - levels[a.src] == w(a)
        for a in _arcs_considered(g, skip)
    )


def total_buffering(result: BalanceResult) -> int:
    return result.inserted_stages


def min_buffer_stages_via_flow(
    g: DataflowGraph, ignore_arcs: Iterable[int] = ()
) -> int:
    """The minimum total buffering computed through the *min-cost-flow
    dual* -- the paper's Section 8 conclusion (3) made literal.

    The balancing LP ``min sum(pi_h - pi_t - w)`` s.t.
    ``pi_h - pi_t >= w`` has the Lagrangian dual

        max  sum_a w_a y_a - W      (W = sum of arc weights)
        s.t. inflow(v) - outflow(v) = indeg(v) - outdeg(v),  y >= 0,

    a minimum-cost flow with edge costs ``-w``.  This function solves it
    with networkx's network simplex and returns the optimal buffer
    count; the test suite asserts it equals the scipy LP optimum.
    """
    import networkx as nx

    ignored = _feedback_arcs(g, ignore_arcs)
    arcs = _arcs_considered(g, tuple(ignored))
    if not arcs:
        return 0
    w = default_arc_weight(g)
    flow = nx.DiGraph()
    indeg: dict[int, int] = {}
    outdeg: dict[int, int] = {}
    for a in arcs:
        indeg[a.dst] = indeg.get(a.dst, 0) + 1
        outdeg[a.src] = outdeg.get(a.src, 0) + 1
    for cid in g.cells:
        demand = indeg.get(cid, 0) - outdeg.get(cid, 0)
        flow.add_node(("c", cid), demand=demand)
    # one dummy node per arc so parallel arcs stay distinct
    for a in arcs:
        mid = ("a", a.aid)
        flow.add_node(mid, demand=0)
        flow.add_edge(("c", a.src), mid, weight=-w(a))
        flow.add_edge(mid, ("c", a.dst), weight=0)
    cost, _flows = nx.network_simplex(flow)
    total_w = sum(w(a) for a in arcs)
    return int(-cost - total_w)
