"""Steady-state schedule derivation for the compiled backend.

Theorems 1-4 of the paper prove that a balanced graph under the
acknowledge discipline settles into a *static* periodic firing
schedule: a prologue while the pipeline fills, then a period that
repeats every II cycles advancing every stream by a fixed number of
elements, then an epilogue while it drains.  The event machine
rediscovers that schedule one event at a time; this module gives the
compiled backend the two static facts it needs to skip the rediscovery:

* :func:`analyze_schedule` -- decides, from the lowered graph alone,
  whether the steady state is *statically replayable*: every control
  token (gate operands, MERGE control operands) must trace back through
  plain untagged ID chains to a SOURCE/AM_READ cell, so the full
  control decision sequence is known before the run starts; and no
  opcode may fault on operand *values* (DIV).  When the analysis
  passes, the period detected at run time can be replayed J times by
  pure time-shifting, because nothing inside the period depends on
  which window of elements is flowing through.

* :class:`StreamEvaluator` -- computes every sink's output *values* at
  stream level, independent of machine timing, by batched Kahn-network
  evaluation: each cell fires as many times as its queued operands
  allow in one visit, vectorized over the batch (numpy when available
  and safe, pure-Python loops otherwise).  Kahn determinism makes the
  result schedule-independent, so these values are bit-identical to
  what the event machine computes element by element.

The compiled backend (:mod:`repro.backends.compiled`) combines the two:
the machine supplies exact *times* (with whole periods fast-forwarded),
the evaluator supplies exact *values*.
"""

from __future__ import annotations

import operator
from dataclasses import dataclass, field
from typing import Any, Optional

from ..errors import ReproError
from ..graph.cell import GATE_PORT, Cell
from ..graph.graph import DataflowGraph
from ..graph.opcodes import (
    BINARY_OPS,
    MERGE_CONTROL_PORT,
    MERGE_FALSE_PORT,
    MERGE_TRUE_PORT,
    UNARY_OPS,
    Op,
    apply_scalar,
)

try:                            # optional acceleration only
    import numpy as _np
except Exception:               # pragma: no cover - numpy is optional
    _np = None


class ScheduleError(ReproError):
    """The graph (or its inputs) defeats static schedule derivation.

    Never fatal to a run: the compiled backend catches it and degrades
    to plain event execution, which is bit-identical by definition.
    """


# ----------------------------------------------------------------------
# static analysis
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ControlArc:
    """One control operand (gate or MERGE control) and the source cell
    whose stream feeds it through a plain untagged ID chain."""

    dst: int                    #: consuming cell id
    port: int                   #: GATE_PORT or MERGE_CONTROL_PORT
    source: int                 #: SOURCE/AM_READ cell id feeding it


@dataclass
class ScheduleAnalysis:
    """Whether (and how) the steady-state schedule can be replayed."""

    replayable: bool
    reason: str = ""
    #: control operands with statically known token sequences
    control_arcs: list[ControlArc] = field(default_factory=list)
    #: SOURCE/AM_READ cell with the longest stream -- the cell whose
    #: firings anchor period detection
    anchor: Optional[int] = None
    #: every SOURCE/AM_READ cell id
    source_cids: list[int] = field(default_factory=list)


def _trace_control_source(
    graph: DataflowGraph, arc: Any
) -> Optional[int]:
    """Walk a control arc back through plain ID cells to its source.

    Returns the SOURCE/AM_READ cell id when every hop is an untagged,
    initial-token-free arc and every intermediate cell is an ungated ID
    (a lowered FIFO stage) -- the conditions under which the control
    port consumes exactly the source's stream, in order.  ``None``
    means the control is computed at run time.
    """
    seen: set[int] = set()
    while True:
        if arc.tag is not None or arc.has_initial:
            return None
        cell = graph.cells[arc.src]
        if cell.cid in seen:
            return None
        seen.add(cell.cid)
        if cell.op in (Op.SOURCE, Op.AM_READ):
            return None if cell.gated else cell.cid
        if cell.op is Op.ID and not cell.gated and 0 not in cell.consts:
            arc = graph.in_arc.get((cell.cid, 0))
            if arc is None:
                return None
            continue
        return None


def analyze_schedule(
    graph: DataflowGraph, inputs: dict[str, list[Any]]
) -> ScheduleAnalysis:
    """Decide whether the graph's steady state is statically
    replayable (see module docstring).  ``graph`` must already be
    FIFO-lowered (the machine lowers on construction)."""

    def refused(reason: str) -> ScheduleAnalysis:
        return ScheduleAnalysis(replayable=False, reason=reason)

    sources: list[int] = []
    control_arcs: list[ControlArc] = []
    for cell in graph:
        op = cell.op
        if op is Op.DIV:
            # a replayed period routes stale placeholder operands into
            # the divider, which could fault on a value the real run
            # never sees
            return refused("graph contains DIV cells")
        if op is Op.CONST:
            return refused("graph contains free-running CONST cells")
        if op is Op.AM_WRITE:
            return refused("graph writes array memory")
        if op in (Op.SOURCE, Op.AM_READ):
            sources.append(cell.cid)
        ctl_ports = []
        if cell.gated and GATE_PORT not in cell.consts:
            ctl_ports.append(GATE_PORT)
        if op is Op.MERGE and MERGE_CONTROL_PORT not in cell.consts:
            ctl_ports.append(MERGE_CONTROL_PORT)
        for port in ctl_ports:
            in_arc = graph.in_arc.get((cell.cid, port))
            if in_arc is None:
                continue        # the cell can never fire; harmless
            src = _trace_control_source(graph, in_arc)
            if src is None:
                return refused(
                    f"control operand of cell {cell.cid} is computed "
                    f"at run time"
                )
            control_arcs.append(
                ControlArc(dst=cell.cid, port=port, source=src)
            )
    if not sources:
        return refused("graph has no stream sources")

    def seq_len(cid: int) -> int:
        cell = graph.cells[cid]
        if "values" in cell.params:
            return len(cell.params["values"])
        return len(inputs.get(cell.params["stream"], ()))

    anchor = max(sources, key=seq_len)
    if seq_len(anchor) == 0:
        return refused("all source streams are empty")
    return ScheduleAnalysis(
        replayable=True,
        control_arcs=control_arcs,
        anchor=anchor,
        source_cids=sources,
    )


# ----------------------------------------------------------------------
# stream-level value evaluation
# ----------------------------------------------------------------------
#: numpy-safe opcodes: IEEE-754 arithmetic/comparisons whose float64
#: results are bit-identical to CPython's (DIV excluded -- numpy does
#: not raise ZeroDivisionError; MIN/MAX excluded -- NaN and signed-zero
#: conventions differ)
_NP_BINOPS = {
    Op.ADD: operator.add,
    Op.SUB: operator.sub,
    Op.MUL: operator.mul,
    Op.LT: operator.lt,
    Op.LE: operator.le,
    Op.GT: operator.gt,
    Op.GE: operator.ge,
}
_NP_UNOPS = {Op.NEG: operator.neg, Op.ABS: abs}
_NP_MIN_BATCH = 32

_INF = 1 << 62


class StreamEvaluator:
    """Batched Kahn-network evaluation of a lowered graph.

    Buffers on every arc are unbounded, so each visit to a cell fires
    it as many times as its queued operands allow, consuming and
    producing whole batches.  The acknowledge discipline only restricts
    *when* tokens move, never *which* values they become, so the
    resulting sink streams equal the event machine's bit for bit (Kahn
    determinism).
    """

    def __init__(
        self, graph: DataflowGraph, inputs: dict[str, list[Any]]
    ) -> None:
        for cell in graph:
            if cell.op in (Op.CONST, Op.FIFO):
                raise ScheduleError(
                    f"stream evaluator cannot batch {cell.op.value!r} "
                    f"cells"
                )
        self.graph = graph
        self.inputs = inputs
        #: per-arc token queue, consumed via a head cursor
        self._buf: dict[int, list[Any]] = {
            aid: [] for aid in graph.arcs
        }
        self._head: dict[int, int] = {aid: 0 for aid in graph.arcs}
        for arc in graph.arcs.values():
            if arc.has_initial:
                self._buf[arc.aid].append(arc.initial)
        self.sink_values: dict[int, list[Any]] = {}
        self._source_pos: dict[int, int] = {}
        self._source_seq: dict[int, list[Any]] = {}
        # Feedback loops (recurrences) admit one element per visit, so
        # a cell may be visited O(stream) times; everything resolvable
        # from the graph alone is precomputed per cell so each visit
        # costs only buffer arithmetic.
        #: data ports as (port, input aid or None-for-const, const);
        #: aid -1 marks an unconnected port (the cell can never fire)
        self._in_aids: dict[int, tuple[tuple[int, Optional[int], Any], ...]] = {}
        #: destination arcs as (aid, dst cell, tag)
        self._outs: dict[int, tuple[tuple[int, int, Optional[bool]], ...]] = {}
        #: scalar implementation of the cell's opcode (None: not a
        #: plain scalar operator)
        self._scalar_fn: dict[int, Any] = {}
        #: gate port as (aid or None-for-const or -1, const); None
        #: entry for ungated cells
        self._gate_io: dict[int, Optional[tuple[Optional[int], Any]]] = {}
        #: MERGE ports (control, true, false), same encoding
        self._merge_io: dict[int, tuple] = {}

        def port_io(cell: Cell, port: int) -> tuple[Optional[int], Any]:
            if port in cell.consts:
                return None, cell.consts[port]
            arc = graph.in_arc.get((cell.cid, port))
            return (arc.aid if arc is not None else -1), None

        for cell in graph:
            self._in_aids[cell.cid] = tuple(
                (port, *port_io(cell, port))
                for port in cell.data_ports()
            )
            self._outs[cell.cid] = tuple(
                (a.aid, a.dst, a.tag) for a in graph.out_arcs[cell.cid]
            )
            self._scalar_fn[cell.cid] = BINARY_OPS.get(
                cell.op
            ) or UNARY_OPS.get(cell.op)
            self._gate_io[cell.cid] = (
                port_io(cell, GATE_PORT) if cell.gated else None
            )
            if cell.op is Op.MERGE:
                self._merge_io[cell.cid] = tuple(
                    port_io(cell, p)
                    for p in (
                        MERGE_CONTROL_PORT,
                        MERGE_TRUE_PORT,
                        MERGE_FALSE_PORT,
                    )
                )
        total_tokens = 0
        for cell in graph:
            if cell.op in (Op.SINK, Op.AM_WRITE):
                self.sink_values[cell.cid] = []
            elif cell.op in (Op.SOURCE, Op.AM_READ):
                seq = (
                    cell.params["values"]
                    if "values" in cell.params
                    else self.inputs[cell.params["stream"]]
                )
                self._source_seq[cell.cid] = seq
                self._source_pos[cell.cid] = 0
                total_tokens += len(seq)
        #: firing budget: generous multiple of the work a terminating
        #: run can do, so a seeded recirculation loop cannot spin the
        #: evaluator forever
        self._budget = 10_000 + 64 * max(1, total_tokens)
        self.firings = 0

    # -- operand plumbing ----------------------------------------------
    def _avail(self, cell: Cell, port: int) -> int:
        if port in cell.consts:
            return _INF
        arc = self.graph.in_arc.get((cell.cid, port))
        if arc is None:
            return 0
        return len(self._buf[arc.aid]) - self._head[arc.aid]

    def _take(self, cell: Cell, port: int, n: int) -> list[Any]:
        """Consume and return ``n`` tokens from an operand port."""
        if port in cell.consts:
            return [cell.consts[port]] * n
        arc = self.graph.in_arc[(cell.cid, port)]
        return self._take_aid(arc.aid, n)

    def _take_aid(self, aid: int, n: int) -> list[Any]:
        buf, head = self._buf[aid], self._head[aid]
        out = buf[head:head + n]
        head += n
        if head > 4096 and head * 2 > len(buf):
            # reclaim consumed prefixes so long runs stay linear-memory
            self._buf[aid] = buf[head:]
            head = 0
        self._head[aid] = head
        return out

    def _emit(
        self, cell: Cell, results: list[Any], gates: Optional[list[Any]]
    ) -> list[int]:
        """Route a batch of results to the cell's destination arcs,
        honoring T/F tags exactly like :meth:`Machine._fire`; returns
        the destination cell ids that received tokens."""
        touched: list[int] = []
        for aid, dst, tag in self._outs[cell.cid]:
            if tag is None:
                picked = results
            else:
                gl = gates if gates is not None else [None] * len(results)
                picked = [
                    r for r, g in zip(results, gl) if bool(g) == tag
                ]
            if picked:
                self._buf[aid].extend(picked)
                touched.append(dst)
        return touched

    def _gate_batch(
        self, cell: Cell, n: int
    ) -> Optional[list[Any]]:
        gio = self._gate_io[cell.cid]
        if gio is None:
            return None
        aid, const = gio
        if aid is None:
            return [const] * n
        return self._take_aid(aid, n)

    # -- per-opcode batch firing ---------------------------------------
    def _fire_batch(self, cell: Cell) -> list[int]:
        """Fire ``cell`` as often as possible; returns dst cells fed."""
        op = cell.op
        gio = self._gate_io[cell.cid]
        if gio is None or gio[0] is None:
            gate_avail = _INF
        elif gio[0] < 0:
            return []
        else:
            gate_avail = len(self._buf[gio[0]]) - self._head[gio[0]]
            if gate_avail <= 0:
                return []

        if op in (Op.SOURCE, Op.AM_READ):
            pos = self._source_pos[cell.cid]
            seq = self._source_seq[cell.cid]
            n = min(len(seq) - pos, gate_avail)
            if n <= 0:
                return []
            self._count(n)
            results = list(seq[pos:pos + n])
            self._source_pos[cell.cid] = pos + n
            gates = self._gate_batch(cell, n)
            return self._emit(cell, results, gates)

        if op in (Op.SINK, Op.AM_WRITE):
            n = min(self._avail(cell, 0), gate_avail)
            if n <= 0:
                return []
            self._count(n)
            values = self._take(cell, 0, n)
            self._gate_batch(cell, n)
            self.sink_values[cell.cid].extend(values)
            return []

        if op is Op.MERGE:
            return self._fire_merge(cell, gate_avail)

        # ordinary scalar operator / ID
        entries = self._in_aids[cell.cid]
        buf_map, head_map = self._buf, self._head
        n = gate_avail
        for _port, aid, _const in entries:
            if aid is None:
                continue
            if aid < 0:
                return []       # unconnected port: can never fire
            avail = len(buf_map[aid]) - head_map[aid]
            if avail < n:
                n = avail
        if n <= 0 or n >= _INF:
            if n >= _INF:
                raise ScheduleError(
                    f"cell {cell.cid} has only constant operands"
                )
            return []
        self._count(n)
        cols = [
            [const] * n if aid is None else self._take_aid(aid, n)
            for _port, aid, const in entries
        ]
        results = self._apply_batch(cell, cols, n)
        gates = self._gate_batch(cell, n)
        return self._emit(cell, results, gates)

    def _fire_merge(self, cell: Cell, gate_avail: int) -> list[int]:
        """Drain a MERGE cell run by run: each maximal run of equal
        control values selects one input port for the whole run."""
        touched: list[int] = []
        (ctl_aid, ctl_const), true_io, false_io = self._merge_io[cell.cid]
        buf_map, head_map = self._buf, self._head
        gated = self._gate_io[cell.cid] is not None
        buf: list[Any] = []
        head = 0
        while True:
            if ctl_aid is None:
                ctl = bool(ctl_const)
                ctl_avail = _INF
            elif ctl_aid < 0:
                return touched
            else:
                buf = buf_map[ctl_aid]
                head = head_map[ctl_aid]
                ctl_avail = len(buf) - head
                if ctl_avail <= 0:
                    return touched
                ctl = bool(buf[head])
            sel_aid, sel_const = true_io if ctl else false_io
            if sel_aid is None:
                sel_avail = _INF
            elif sel_aid < 0:
                sel_avail = 0
            else:
                sel_avail = len(buf_map[sel_aid]) - head_map[sel_aid]
            cap = min(ctl_avail, sel_avail, gate_avail)
            if cap <= 0 or cap >= _INF:
                if cap >= _INF:
                    raise ScheduleError(
                        f"MERGE cell {cell.cid} has only constant "
                        f"operands"
                    )
                return touched
            if ctl_aid is None:
                n = cap
            else:
                # extend the equal-control run only as far as this
                # visit can consume anyway: scanning the whole run
                # would cost O(stream) per visit on feedback loops
                # (recurrences) that admit one token at a time
                n = 1
                while n < cap and bool(buf[head + n]) == ctl:
                    n += 1
                self._take_aid(ctl_aid, n)
            self._count(n)
            results = (
                [sel_const] * n
                if sel_aid is None
                else self._take_aid(sel_aid, n)
            )
            gates = self._gate_batch(cell, n)
            gate_avail -= n if gated else 0
            touched.extend(self._emit(cell, results, gates))
            if gated and gate_avail <= 0:
                return touched

    def _apply_batch(
        self, cell: Cell, cols: list[list[Any]], n: int
    ) -> list[Any]:
        op = cell.op
        if op is Op.ID:
            return cols[0]
        fn = self._scalar_fn[cell.cid]
        if fn is None:
            raise ScheduleError(f"cannot batch opcode {op!r}")
        if (
            _np is not None
            and n >= _NP_MIN_BATCH
            and (op in _NP_BINOPS or op in _NP_UNOPS)
            and all(
                all(type(v) is float for v in col) for col in cols
            )
        ):
            arrays = [_np.asarray(col, dtype=_np.float64) for col in cols]
            npfn = _NP_BINOPS.get(op) or _NP_UNOPS[op]
            return npfn(*arrays).tolist()
        if len(cols) == 2:
            a, b = cols
            return [fn(x, y) for x, y in zip(a, b)]
        return [fn(x) for x in cols[0]]

    def _count(self, n: int) -> None:
        self.firings += n
        if self.firings > self._budget:
            raise ScheduleError(
                f"evaluation exceeded the firing budget "
                f"({self._budget}); the graph likely recirculates "
                f"tokens indefinitely"
            )

    # -- driver --------------------------------------------------------
    def run(self) -> dict[int, list[Any]]:
        """Evaluate to quiescence; returns sink values keyed by cell
        id.  Raises :class:`ScheduleError` when the graph defeats
        batched evaluation (the caller falls back to plain event
        execution)."""
        try:
            pending = list(self.graph.cells)
            queued = set(pending)
            while pending:
                cid = pending.pop()
                queued.discard(cid)
                touched = self._fire_batch(self.graph.cells[cid])
                for dst in touched:
                    if dst not in queued:
                        queued.add(dst)
                        pending.append(dst)
        except ZeroDivisionError as exc:
            raise ScheduleError(
                "division by zero during stream evaluation"
            ) from exc
        return self.sink_values


@dataclass
class SteadySchedule:
    """What the compiled backend's period detector observed in one run
    (attached to the machine as ``engine.schedule``)."""

    #: cell id whose firings anchored period detection
    anchor: Optional[int] = None
    #: cycles of concrete prologue execution before the first jump
    prologue_cycles: Optional[int] = None
    #: detected period length, in cycles (the steady-state II times
    #: the elements advanced per period)
    period_cycles: Optional[int] = None
    #: stream elements consumed by the anchor per period
    period_elements: Optional[int] = None
    #: (at_cycle, periods_skipped, cycles_skipped) per applied jump
    jumps: list[tuple[int, int, int]] = field(default_factory=list)
    #: why the run stayed concrete (empty when jumps were applied or
    #: simply never profitable)
    fallback_reason: str = ""

    @property
    def cycles_skipped(self) -> int:
        return sum(j[2] for j in self.jumps)
