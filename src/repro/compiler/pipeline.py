"""End-to-end compilation driver: Val source to runnable machine code.

:func:`compile_program` is the package's main entry point::

    from repro.compiler import compile_program

    cp = compile_program(source, params={"m": 100})
    result = cp.run({"B": [...], "C": [...]})
    result.outputs["A"]            # ValArray with the paper's semantics
    result.initiation_interval()   # 2.0 == fully pipelined

The pipeline is: parse -> type check -> classify -> per-block scheme
mapping (Sections 5-7) -> link the flow dependency graph (Section 8)
-> balance (optimal by default) -> validate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping, Optional, Union

from ..errors import CompileError
from ..graph.graph import DataflowGraph
from ..graph.validate import validate
from ..sim.runner import RunResult, _run_graph
from ..val.ast_nodes import Program
from ..val.parser import parse_program
from ..val.typecheck import check_program
from ..val.values import ValArray
from .balance import BalanceResult, balance_graph
from .expr import ArraySpec
from .forall import BlockArtifact
from .link import LinkedProgram, link_program


@dataclass
class ProgramResult:
    """Outputs of one program run, as Val arrays plus raw run data."""

    outputs: dict[str, ValArray]
    run: RunResult

    def initiation_interval(self, stream: Optional[str] = None) -> float:
        return self.run.initiation_interval(stream)

    def throughput(self, stream: Optional[str] = None) -> float:
        return self.run.throughput(stream)

    @property
    def stats(self):
        return self.run.stats


@dataclass
class CompiledProgram:
    """A compiled pipe-structured program ready to simulate."""

    graph: DataflowGraph
    program: Program
    params: dict[str, int]
    input_specs: dict[str, ArraySpec]
    output_specs: dict[str, tuple[int, int]]
    artifacts: dict[str, BlockArtifact]
    balance: Optional[BalanceResult] = None
    options: dict[str, Any] = field(default_factory=dict)

    # ------------------------------------------------------------------
    def prepare_inputs(
        self, inputs: Mapping[str, Any]
    ) -> dict[str, list[Any]]:
        """Check and flatten user inputs against the inferred ranges.

        Accepts plain lists (assumed to start at the inferred lower
        bound), ``(lo, list)`` pairs, or :class:`ValArray` values.
        """
        streams: dict[str, list[Any]] = {}
        for name, spec in self.input_specs.items():
            if name not in inputs:
                raise CompileError(
                    f"missing input array {name!r} (range "
                    f"[{spec.lo},{spec.hi}])"
                )
            value = inputs[name]
            if isinstance(value, ValArray):
                arr = value
            elif (
                isinstance(value, tuple)
                and len(value) == 2
                and isinstance(value[1], (list, tuple))
            ):
                arr = ValArray(int(value[0]), tuple(value[1]))
            else:
                arr = ValArray(spec.lo, tuple(value))
            if arr.bounds != (spec.lo, spec.hi):
                raise CompileError(
                    f"input {name!r} covers [{arr.lo},{arr.hi}] but the "
                    f"program needs [{spec.lo},{spec.hi}]"
                )
            streams[name] = arr.to_list()
        extra = set(inputs) - set(streams)
        if extra:
            raise CompileError(f"unexpected inputs: {sorted(extra)}")
        return streams

    def run(
        self,
        inputs: Optional[Mapping[str, Any]] = None,
        max_steps: int = 10_000_000,
    ) -> ProgramResult:
        """Simulate on the unit-delay machine and collect the outputs."""
        streams = self.prepare_inputs(inputs or {})
        rr = _run_graph(self.graph, streams, max_steps=max_steps)
        outputs = {}
        for name, (lo, _hi) in self.output_specs.items():
            outputs[name] = ValArray(lo, tuple(rr.outputs[name]))
        return ProgramResult(outputs=outputs, run=rr)

    # ------------------------------------------------------------------
    @property
    def cell_count(self) -> int:
        return self.graph.cell_count(expanded=True)

    def to_dot(self) -> str:
        from ..graph.dot import to_dot

        return to_dot(self.graph)

    def describe(self) -> str:
        """Human-readable compilation report."""
        lines = [self.graph.summary()]
        for name, art in self.artifacts.items():
            loop = art.graph.meta.get("loop")
            extra = (
                f" loop(len={loop['length']}, tokens={loop['tokens']}, "
                f"rate<={loop['rate_bound']})"
                if loop
                else ""
            )
            lines.append(
                f"  block {name}: [{art.out_lo},{art.out_hi}] "
                f"{len(art.graph)} cells{extra}"
            )
        if self.balance is not None:
            lines.append(
                f"  balancing ({self.balance.method}): "
                f"{self.balance.inserted_stages} buffer stages in "
                f"{len(self.balance.fifo_cells)} FIFOs"
            )
        for name, spec in self.input_specs.items():
            lines.append(f"  input {name}: [{spec.lo},{spec.hi}]")
        return "\n".join(lines)


def compile_program(
    source: Union[str, Program],
    params: Optional[Mapping[str, int]] = None,
    *,
    forall_scheme: str = "pipeline",
    foriter_scheme: str = "auto",
    balance: str = "optimal",
    controls: str = "patterns",
    input_ranges: Optional[Mapping[str, tuple[int, int]]] = None,
    array_shapes: Optional[Mapping[str, tuple]] = None,
    keep_all_outputs: bool = False,
    typecheck: bool = True,
    **scheme_opts: Any,
) -> CompiledProgram:
    """Compile a pipe-structured Val program to machine code.

    Parameters
    ----------
    source:
        Val source text or an already-parsed :class:`Program`.
    params:
        Compile-time integer constants (the ``m`` of the examples).
    forall_scheme:
        ``'pipeline'`` (Figure 6) or ``'parallel'``.
    foriter_scheme:
        ``'auto'`` (companion when the recurrence is simple, Todd
        otherwise), ``'companion'``, ``'todd'`` or ``'interleaved'``.
    balance:
        ``'optimal'``, ``'reduce'``, ``'naive'`` or ``'none'``.
    controls:
        ``'patterns'`` emits control sequences as pattern sources;
        ``'dataflow'`` expands them into Todd-style self-clocked
        counter subgraphs so the program contains only ordinary machine
        instructions (the paper's [15]).
    input_ranges:
        Explicit ``{name: (lo, hi)}`` index ranges for external arrays,
        overriding the two-pass inference.
    array_shapes:
        2-D shapes ``{name: ((rlo, rhi), (clo, chi))}`` for inputs of
        multidimensional forall blocks (which are lowered to flattened
        1-D streams; see :mod:`repro.val.multidim`).
    scheme_opts:
        Extra scheme options: ``distance=`` for the companion G-tree,
        ``batch=`` for the interleaved scheme.
    """
    params = dict(params or {})
    program = parse_program(source) if isinstance(source, str) else source
    from ..val import ast_nodes as _A
    from ..val.multidim import lower_program

    if array_shapes is not None or any(
        isinstance(n, (_A.ForallND, _A.IndexND))
        for b in program.blocks
        for n in _A.walk(b.expr)
    ):
        program = lower_program(program, params, array_shapes)
    if typecheck:
        check_program(program, params=params)
    linked: LinkedProgram = link_program(
        program,
        params,
        forall_scheme=forall_scheme,
        foriter_scheme=foriter_scheme,
        input_ranges=input_ranges,
        keep_all_outputs=keep_all_outputs,
        **scheme_opts,
    )
    if controls == "dataflow":
        from .controls import expand_controls
        from .foriter import _mark_feedback

        expand_controls(linked.graph)
        _mark_feedback(linked.graph)  # the counters add 2-cell loops
    elif controls != "patterns":
        raise CompileError(f"unknown controls mode {controls!r}")
    bal: Optional[BalanceResult] = None
    if balance != "none":
        bal = balance_graph(linked.graph, method=balance)
    validate(linked.graph)
    return CompiledProgram(
        graph=linked.graph,
        program=program,
        params=params,
        input_specs=linked.input_specs,
        output_specs=linked.output_specs,
        artifacts=linked.artifacts,
        balance=bal,
        options={
            "forall_scheme": forall_scheme,
            "foriter_scheme": foriter_scheme,
            "balance": balance,
            **scheme_opts,
        },
    )
