"""Pipelined mapping of primitive expressions (Section 5, Theorem 1).

:class:`ExprBuilder` compiles a primitive expression on an index
variable ``i`` over a constant range ``[lo, hi]`` into an acyclic
dataflow instruction graph in which every value is a stream of one
token per (selected) iteration:

* scalar subexpressions over ``i`` and constants are folded at compile
  time into constant operands or pattern sources -- exactly how the
  paper's figures show literal constants in operand fields and
  precomputed boolean control sequences;
* array selections ``A[i+m]`` become boolean-gated identity cells that
  pass the used window of the input stream and *discard* the rest so
  unused elements cannot jam the pipe (Figure 4); the source-to-gate
  arc carries a balance weight of ``1 + 2*shift`` so the balancing pass
  inserts the skew FIFOs of Figure 4;
* conditionals gate each stream entering an arm (one shared identity
  cell per stream and split, with T/F destination tags) and re-combine
  the arms with a MERGE whose control is the condition stream (Figure
  5); conditions that depend only on ``i`` become compile-time patterns
  so the gates collapse into the window selections of Figure 6.

The graphs come out *unbalanced*; run
:func:`repro.compiler.balance.balance_graph` afterwards to insert the
FIFO buffers that make them fully pipelined.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping, Optional

from ..errors import CompileError
from ..graph.cell import GATE_PORT
from ..graph.graph import DataflowGraph
from ..graph.opcodes import (
    MERGE_CONTROL_PORT,
    MERGE_FALSE_PORT,
    MERGE_TRUE_PORT,
    Op,
)
from ..val import ast_nodes as A
from ..val.classify import index_offset
from ..val.interpreter import _binop
from .context import (
    ROOT,
    Context,
    Filter,
    Seq,
    Split,
    Uniform,
    as_uniform,
    is_compile_time,
)

#: Val binary operator -> machine opcode.
BINOP_TO_OP = {
    "+": Op.ADD,
    "-": Op.SUB,
    "*": Op.MUL,
    "/": Op.DIV,
    "<": Op.LT,
    "<=": Op.LE,
    ">": Op.GT,
    ">=": Op.GE,
    "=": Op.EQ,
    "~=": Op.NE,
    "&": Op.AND,
    "|": Op.OR,
}

UNOP_TO_OP = {"-": Op.NEG, "~": Op.NOT}

#: Operators accepted by :meth:`ExprBuilder.combine` -- the language's
#: binary operators plus the lattice pair used by tropical companion
#: pipelines.
COMBINE_OPS = {**BINOP_TO_OP, "max": Op.MAX, "min": Op.MIN}


@dataclass(frozen=True)
class Wire:
    """A runtime stream endpoint: producing cell, the selection context
    it carries, and the destination-arc tag consumers must use (set when
    the producer is a gated cell routing by T/F tags)."""

    cell: int
    ctx: Context
    tag: Optional[bool] = None


@dataclass(frozen=True)
class ArraySpec:
    """An input array arriving as a stream over index range [lo, hi]."""

    name: str
    lo: int
    hi: int

    @property
    def length(self) -> int:
        return self.hi - self.lo + 1


BValue = Any  # Uniform | Seq | Wire (builder-local wire)


class ExprBuilder:
    """Compiles primitive expressions into a shared
    :class:`~repro.graph.graph.DataflowGraph`.

    One builder per program block; the block compilers (forall /
    for-iter schemes) drive it and add the block boundary cells.
    """

    def __init__(
        self,
        g: DataflowGraph,
        index_var: Optional[str],
        lo: int,
        hi: int,
        params: Mapping[str, int],
        arrays: Mapping[str, ArraySpec],
        prefix: str = "",
    ) -> None:
        self.g = g
        self.index_var = index_var
        self.lo = lo
        self.hi = hi
        self.base = list(range(lo, hi + 1))
        self.params = dict(params)
        self.arrays = dict(arrays)
        self.prefix = prefix
        #: scalar bindings: name -> (value, context it was defined in)
        self.env: dict[str, tuple[BValue, Context]] = {}
        if index_var is not None:
            self.env[index_var] = (Seq(tuple(self.base)), ROOT)
        #: loop feedback endpoints: (array name, offset) -> Wire; consulted
        #: before input arrays so for-iter accumulator accesses resolve to
        #: the loop's x stream (set by the for-iter schemes)
        self.feedback: dict[tuple[str, int], Wire] = {}
        # caches ---------------------------------------------------------
        self._source_cells: dict[str, int] = {}
        self._pattern_cells: dict[tuple, int] = {}
        self._split_controls: dict[int, int] = {}
        self._gates: dict[tuple, int] = {}
        self._taps: dict[tuple, Wire] = {}

    # ------------------------------------------------------------------
    # naming
    # ------------------------------------------------------------------
    def _name(self, text: str) -> str:
        return f"{self.prefix}{text}" if self.prefix else text

    # ------------------------------------------------------------------
    # sources / pattern cells
    # ------------------------------------------------------------------
    def source_cell(self, name: str) -> int:
        """The (lazily created) SOURCE cell for input array ``name``."""
        if name not in self._source_cells:
            self._source_cells[name] = self.g.add_source(
                self._name(f"in_{name}"), stream=name
            )
        return self._source_cells[name]

    def pattern_cell(self, values: tuple, ctx: Context, kind: str = "seq") -> int:
        """A SOURCE cell emitting a compile-time value sequence, cached
        per (values, context) so aligned consumers share it."""
        key = (values, ctx.key(), kind)
        if key not in self._pattern_cells:
            self._pattern_cells[key] = self.g.add_pattern_source(
                self._name(f"{kind}{len(self._pattern_cells)}"), list(values)
            )
        return self._pattern_cells[key]

    # ------------------------------------------------------------------
    # splits and gating
    # ------------------------------------------------------------------
    def split_control(self, split: Split, ctx: Context) -> Wire:
        """The stream endpoint of the split's boolean control."""
        if split.sid not in self._split_controls:
            if split.is_static:
                assert split.pattern is not None
                cell = self.pattern_cell(split.pattern, ctx, kind="ctl")
            else:
                assert split.control_cell is not None
                cell = split.control_cell
            self._split_controls[split.sid] = cell
        return Wire(self._split_controls[split.sid], ctx, tag=None)

    def gate_through(self, wire: Wire, filt: Filter, ctx: Context) -> Wire:
        """Route ``wire`` through the filter's shared gated identity
        cell; the result endpoint carries the polarity tag."""
        key = (wire.cell, wire.tag, filt.split.sid)
        if key not in self._gates:
            gate = self.g.add_cell(
                Op.ID, name=self._name(f"gate{len(self._gates)}")
            )
            self.g.connect(wire.cell, gate, 0, tag=wire.tag)
            ctl = self.split_control(filt.split, ctx)
            self.g.connect(ctl.cell, gate, GATE_PORT, tag=ctl.tag)
            self._gates[key] = gate
        return Wire(self._gates[key], ctx.extend(filt), tag=filt.polarity)

    # ------------------------------------------------------------------
    # value adaptation / materialization / connection
    # ------------------------------------------------------------------
    def adapt(self, value: BValue, from_ctx: Context, to_ctx: Context) -> BValue:
        """Re-contextualize a value defined under ``from_ctx`` for use
        under the (extending) ``to_ctx``, inserting gates as needed."""
        if isinstance(value, Uniform):
            return value
        if not from_ctx.is_prefix_of(to_ctx):
            raise CompileError(
                "internal: use context does not extend definition context"
            )
        extra = to_ctx.filters[len(from_ctx.filters):]
        cur_ctx = from_ctx
        cur: BValue = value
        for filt in extra:
            if isinstance(cur, Seq):
                if filt.split.is_static:
                    assert filt.split.pattern is not None
                    if len(filt.split.pattern) != len(cur.values):
                        raise CompileError("internal: pattern/sequence mismatch")
                    cur = Seq(
                        tuple(
                            v
                            for v, b in zip(cur.values, filt.split.pattern)
                            if b == filt.polarity
                        )
                    )
                    cur_ctx = cur_ctx.extend(filt)
                    continue
                cur = Wire(self.pattern_cell(cur.values, cur_ctx), cur_ctx)
            assert isinstance(cur, Wire)
            cur = self.gate_through(cur, filt, cur_ctx)
            cur_ctx = cur.ctx
        return cur

    def materialize(self, value: BValue, ctx: Context) -> Wire:
        """An endpoint producing ``value`` as a stream in ``ctx``."""
        if isinstance(value, Wire):
            return value
        if isinstance(value, Seq):
            return Wire(self.pattern_cell(value.values, ctx), ctx)
        if not ctx.is_static:
            raise CompileError(
                "cannot materialize a constant stream under a runtime "
                "conditional; restructure the expression"
            )
        n = len(ctx.selection(self.base))
        return Wire(self.pattern_cell(tuple([value.value] * n), ctx), ctx)

    def connect_value(self, value: BValue, dst: int, port: int, ctx: Context) -> None:
        """Feed ``value`` into ``(dst, port)``: constant operands for
        uniforms, arcs (with the producer's gate tag) otherwise."""
        u = as_uniform(value)
        if u is not None and not isinstance(value, Wire):
            self.g.set_const(dst, port, u)
            return
        wire = self.materialize(value, ctx)
        self.g.connect(wire.cell, dst, port, tag=wire.tag)

    # ------------------------------------------------------------------
    # compilation
    # ------------------------------------------------------------------
    def compile(self, expr: A.Expr, ctx: Context = ROOT) -> BValue:
        if isinstance(expr, A.Literal):
            return Uniform(expr.value)
        if isinstance(expr, A.Ident):
            return self._compile_ident(expr, ctx)
        if isinstance(expr, A.BinOp):
            return self._compile_binop(expr, ctx)
        if isinstance(expr, A.UnOp):
            return self._compile_unop(expr, ctx)
        if isinstance(expr, A.Builtin):
            return self._compile_builtin(expr, ctx)
        if isinstance(expr, A.Index):
            return self._compile_index(expr, ctx)
        if isinstance(expr, A.Let):
            return self._compile_let(expr, ctx)
        if isinstance(expr, A.If):
            return self._compile_if(expr, ctx)
        raise CompileError(
            f"{type(expr).__name__} at line {expr.line} is not a primitive "
            f"expression; cannot map it (Theorem 1 covers PEs only)"
        )

    def bind(self, name: str, value: BValue, ctx: Context) -> None:
        """Bind a scalar stream (used by the block compilers for loop
        parameters and the for-iter feedback leaf)."""
        self.env[name] = (value, ctx)

    def bind_feedback(self, array: str, offset: int, wire: Wire) -> None:
        """Route accesses ``array[i+offset]`` to a loop feedback stream."""
        self.feedback[(array, offset)] = wire

    def combine(self, op: str, left: BValue, right: BValue, ctx: Context) -> BValue:
        """Apply a binary operator (incl. max/min) to two compiled
        values (used by the for-iter schemes for companion-function
        stages); folds at compile time when both operands are known."""
        if is_compile_time(left) and is_compile_time(right):
            return self._fold(op, left, right, A.Literal(0, A.INTEGER))
        opcode = COMBINE_OPS[op]
        cell = self.g.add_cell(opcode, name=self._name(opcode.value))
        self.connect_value(left, cell, 0, ctx)
        self.connect_value(right, cell, 1, ctx)
        return Wire(cell, ctx)

    # -- identifiers ------------------------------------------------------
    def _compile_ident(self, expr: A.Ident, ctx: Context) -> BValue:
        name = expr.name
        if name in self.env:
            value, def_ctx = self.env[name]
            return self.adapt(value, def_ctx, ctx)
        if name in self.params:
            return Uniform(self.params[name])
        if name in self.arrays:
            raise CompileError(
                f"array {name!r} referenced without selection at line "
                f"{expr.line}"
            )
        raise CompileError(
            f"unbound identifier {name!r} at line {expr.line}; runtime "
            f"scalar inputs are not supported -- pass it via params= or as "
            f"an array"
        )

    # -- operators -----------------------------------------------------------
    def _fold(self, op: str, left: BValue, right: BValue, node: A.BinOp) -> BValue:
        if op == "max":
            apply = lambda a, b: max(a, b)  # noqa: E731
        elif op == "min":
            apply = lambda a, b: min(a, b)  # noqa: E731
        else:
            apply = lambda a, b: _binop(op, a, b, node)  # noqa: E731
        lv = left.values if isinstance(left, Seq) else None
        rv = right.values if isinstance(right, Seq) else None
        if lv is None and rv is None:
            return Uniform(apply(left.value, right.value))
        n = len(lv if lv is not None else rv)  # type: ignore[arg-type]
        if lv is not None and rv is not None and len(lv) != len(rv):
            raise CompileError("internal: folded sequence length mismatch")
        ls = lv if lv is not None else (left.value,) * n
        rs = rv if rv is not None else (right.value,) * n
        return Seq(tuple(apply(a, b) for a, b in zip(ls, rs)))

    def _compile_binop(self, expr: A.BinOp, ctx: Context) -> BValue:
        if expr.op not in BINOP_TO_OP:
            raise CompileError(f"operator {expr.op!r} not supported")
        left = self.compile(expr.left, ctx)
        right = self.compile(expr.right, ctx)
        if is_compile_time(left) and is_compile_time(right):
            return self._fold(expr.op, left, right, expr)
        opcode = BINOP_TO_OP[expr.op]
        cell = self.g.add_cell(opcode, name=self._name(opcode.value))
        self.connect_value(left, cell, 0, ctx)
        self.connect_value(right, cell, 1, ctx)
        return Wire(cell, ctx)

    def _compile_builtin(self, expr: A.Builtin, ctx: Context) -> BValue:
        """max/min: the MIN/MAX function-unit opcodes (binary after the
        parser's n-ary folding)."""
        opcode = Op.MAX if expr.name == "max" else Op.MIN
        left = self.compile(expr.args[0], ctx)
        right = self.compile(expr.args[1], ctx)
        if is_compile_time(left) and is_compile_time(right):
            fn = max if expr.name == "max" else min
            lv = left.values if isinstance(left, Seq) else None
            rv = right.values if isinstance(right, Seq) else None
            if lv is None and rv is None:
                return Uniform(fn(left.value, right.value))
            n = len(lv if lv is not None else rv)
            ls = lv if lv is not None else (left.value,) * n
            rs = rv if rv is not None else (right.value,) * n
            return Seq(tuple(fn(a, b) for a, b in zip(ls, rs)))
        cell = self.g.add_cell(opcode, name=self._name(expr.name))
        self.connect_value(left, cell, 0, ctx)
        self.connect_value(right, cell, 1, ctx)
        return Wire(cell, ctx)

    def _compile_unop(self, expr: A.UnOp, ctx: Context) -> BValue:
        operand = self.compile(expr.operand, ctx)
        if is_compile_time(operand):
            if isinstance(operand, Uniform):
                return Uniform(
                    -operand.value if expr.op == "-" else (not bool(operand.value))
                )
            return Seq(
                tuple(
                    -v if expr.op == "-" else (not bool(v))
                    for v in operand.values
                )
            )
        cell = self.g.add_cell(UNOP_TO_OP[expr.op], name=self._name(expr.op))
        self.connect_value(operand, cell, 0, ctx)
        return Wire(cell, ctx)

    # -- array selection (rule 4) ------------------------------------------
    def _compile_index(self, expr: A.Index, ctx: Context) -> BValue:
        if not isinstance(expr.base, A.Ident):
            raise CompileError(f"computed array base at line {expr.line}")
        name = expr.base.name
        if name in self.env:
            raise CompileError(f"indexing scalar {name!r} at line {expr.line}")
        if self.index_var is None:
            raise CompileError(
                f"array selection at line {expr.line} outside an indexed block"
            )
        offset = index_offset(expr.index, self.index_var, self.params)
        if offset is None:
            raise CompileError(
                f"selection index at line {expr.line} must be "
                f"{self.index_var}+m with constant m (rule 4)"
            )
        if (name, offset) in self.feedback:
            wire = self.feedback[(name, offset)]
            return self.adapt(wire, wire.ctx, ctx)
        if name not in self.arrays:
            raise CompileError(f"unknown array {name!r} at line {expr.line}")
        wire = self.tap(name, offset, ctx.static_prefix(), line=expr.line)
        return self.adapt(wire, wire.ctx, ctx)

    def tap(self, name: str, offset: int, prefix: Context, line: int = 0) -> Wire:
        """The gated window substream ``name[i+offset]`` for the
        iterations selected by the all-static context ``prefix``."""
        key = (name, offset, prefix.key())
        if key in self._taps:
            return self._taps[key]
        spec = self.arrays[name]
        selection = prefix.selection(self.base)
        positions = [i + offset - spec.lo for i in selection]
        for i, pos in zip(selection, positions):
            if not 0 <= pos < spec.length:
                raise CompileError(
                    f"access {name}[{self.index_var}{offset:+d}] at line "
                    f"{line} reads index {i + offset}, outside the input "
                    f"range [{spec.lo},{spec.hi}]; guard it with a "
                    f"compile-time conditional on {self.index_var}"
                )
        src = self.source_cell(name)
        if len(positions) == spec.length:
            # whole stream used in order: no selection gate needed
            wire = Wire(src, prefix)
            self._taps[key] = wire
            return wire
        pattern = [False] * spec.length
        for pos in positions:
            pattern[pos] = True
        gate = self.g.add_cell(Op.ID, name=self._name(f"sel_{name}{offset:+d}"))
        # Skew weight = the window's start shift (Figure 4): exact for
        # the contiguous windows of the paper's 1-D class.  Gapped
        # periodic selections (2-D stencils lowered to row-major
        # streams) drift briefly at row transitions, costing a short
        # refill stall per row that amortizes away with row width; see
        # repro.val.multidim.
        shift = positions[0]
        self.g.connect(src, gate, 0, weight=1 + 2 * shift)
        ctl = self.g.add_pattern_source(
            self._name(f"win_{name}{offset:+d}"), pattern
        )
        self.g.connect(ctl, gate, GATE_PORT)
        wire = Wire(gate, prefix, tag=True)
        self._taps[key] = wire
        return wire

    # -- let ------------------------------------------------------------------
    def _compile_let(self, expr: A.Let, ctx: Context) -> BValue:
        saved = dict(self.env)
        try:
            for d in expr.defs:
                self.env[d.name] = (self.compile(d.expr, ctx), ctx)
            return self.compile(expr.body, ctx)
        finally:
            self.env = saved

    # -- conditionals ------------------------------------------------------------
    def _compile_if(self, expr: A.If, ctx: Context) -> BValue:
        cond = self.compile(expr.cond, ctx)
        u = as_uniform(cond)
        if u is not None and not isinstance(cond, Wire):
            return self.compile(expr.then if u else expr.els, ctx)
        if isinstance(cond, Seq):
            split = Split.from_pattern([bool(v) for v in cond.values])
        else:
            assert isinstance(cond, Wire)
            if cond.tag is not None:
                # A gated producer cannot directly drive fan-out control;
                # pass it through an identity endpoint first.
                ident = self.g.add_cell(Op.ID, name=self._name("ctlbuf"))
                self.g.connect(cond.cell, ident, 0, tag=cond.tag)
                cond = Wire(ident, ctx)
            split = Split.from_control(cond.cell)
        then_ctx = ctx.extend(Filter(split, True))
        else_ctx = ctx.extend(Filter(split, False))
        tv = self.compile(expr.then, then_ctx)
        ev = self.compile(expr.els, else_ctx)

        if (
            split.is_static
            and ctx.is_static
            and is_compile_time(tv)
            and is_compile_time(ev)
        ):
            return self._fold_if(split, tv, ev)

        merge = self.g.add_merge(name=self._name("merge"))
        if split.is_static:
            # The merge gets its OWN control sequence cell.  Sharing the
            # gates' control source would couple the merge's (output-
            # paced) consumption to the gates' (input-paced) consumption;
            # when skew buffers are deep (2-D stencils) a brief merge
            # pause then starves its own control through the stalled
            # gates -- a control-starvation stall the paper's per-
            # consumer counter subgraphs (Todd) never exhibit.
            assert split.pattern is not None
            ctl = Wire(
                self.pattern_cell(split.pattern, ctx, kind="mctl"), ctx
            )
        else:
            ctl = self.split_control(split, ctx)
        self.g.connect(ctl.cell, merge, MERGE_CONTROL_PORT, tag=ctl.tag)
        self._connect_merge_arm(tv, merge, MERGE_TRUE_PORT, then_ctx)
        self._connect_merge_arm(ev, merge, MERGE_FALSE_PORT, else_ctx)
        return Wire(merge, ctx)

    def _fold_if(self, split: Split, tv: BValue, ev: BValue) -> BValue:
        assert split.pattern is not None
        n_t = sum(1 for b in split.pattern if b)
        n_e = len(split.pattern) - n_t
        ts = tv.values if isinstance(tv, Seq) else (tv.value,) * n_t
        es = ev.values if isinstance(ev, Seq) else (ev.value,) * n_e
        if len(ts) != n_t or len(es) != n_e:
            raise CompileError("internal: folded arm length mismatch")
        it_t, it_e = iter(ts), iter(es)
        return Seq(tuple(next(it_t) if b else next(it_e) for b in split.pattern))

    def _connect_merge_arm(
        self, value: BValue, merge: int, port: int, arm_ctx: Context
    ) -> None:
        u = as_uniform(value)
        if u is not None and not isinstance(value, Wire):
            self.g.set_const(merge, port, u)
            return
        wire = self.materialize(value, arm_ctx)
        self.g.connect(wire.cell, merge, port, tag=wire.tag)


__all__ = [
    "ArraySpec",
    "BINOP_TO_OP",
    "COMBINE_OPS",
    "ExprBuilder",
    "UNOP_TO_OP",
    "Wire",
]
