"""Compilation contexts, streams and selection filters.

The pipelined mapping of Section 5 turns every value of a primitive
expression into a *stream*: one token per iteration of the index
variable.  Conditionals split the iteration set; array windows select
positions of an input stream.  This module provides the bookkeeping:

* :class:`Value` -- a compiled subexpression: either a compile-time
  sequence (:class:`Uniform` / :class:`Seq`) or a runtime stream wired
  to a producing cell (:class:`Wire`);
* :class:`Split` / :class:`Filter` -- one conditional's selection,
  either a compile-time boolean pattern (when the condition depends
  only on the index variable, as in Example 1's boundary test) or a
  runtime control stream (Figure 5's ``if C[i]``);
* :class:`Context` -- the stack of filters a subexpression is compiled
  under, with ``selection()`` giving the concrete index values when all
  filters are compile-time.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Optional, Union

from ..errors import CompileError

_split_counter = itertools.count()


@dataclass(frozen=True)
class Split:
    """One conditional's iteration split.

    Exactly one of ``pattern`` (compile-time booleans over the enclosing
    selection) and ``control_cell`` (a cell producing the boolean stream
    at run time) is set.  ``sid`` identifies the split for gate sharing:
    the two arms of one conditional gate a given stream through the
    *same* identity cell, using T/F destination tags.
    """

    sid: int
    pattern: Optional[tuple[bool, ...]] = None
    control_cell: Optional[int] = None

    @staticmethod
    def from_pattern(pattern: list[bool]) -> "Split":
        return Split(next(_split_counter), pattern=tuple(pattern))

    @staticmethod
    def from_control(cell: int) -> "Split":
        return Split(next(_split_counter), control_cell=cell)

    @property
    def is_static(self) -> bool:
        return self.pattern is not None


@dataclass(frozen=True)
class Filter:
    """One arm of a split: the iterations where the split's condition
    equals ``polarity``."""

    split: Split
    polarity: bool

    @property
    def key(self) -> tuple[int, bool]:
        return (self.split.sid, self.polarity)


class Context:
    """An ordered stack of filters over the block's iteration range."""

    __slots__ = ("filters",)

    def __init__(self, filters: tuple[Filter, ...] = ()) -> None:
        self.filters = filters

    def extend(self, filt: Filter) -> "Context":
        return Context(self.filters + (filt,))

    @property
    def is_static(self) -> bool:
        """All filters are compile-time patterns."""
        return all(f.split.is_static for f in self.filters)

    def static_prefix(self) -> "Context":
        """The longest all-static prefix of this context."""
        out = []
        for f in self.filters:
            if not f.split.is_static:
                break
            out.append(f)
        return Context(tuple(out))

    def runtime_suffix(self) -> tuple[Filter, ...]:
        n = len(self.static_prefix().filters)
        return self.filters[n:]

    def selection(self, base: list[int]) -> list[int]:
        """Index values selected by this (all-static) context, given the
        block's base index list."""
        sel = base
        for f in self.filters:
            if not f.split.is_static:
                raise CompileError(
                    "selection() on a context with runtime filters"
                )
            pattern = f.split.pattern
            assert pattern is not None
            if len(pattern) != len(sel):
                raise CompileError(
                    f"pattern length {len(pattern)} != selection {len(sel)}"
                )
            sel = [i for i, b in zip(sel, pattern) if b == f.polarity]
        return sel

    def key(self) -> tuple[tuple[int, bool], ...]:
        return tuple(f.key for f in self.filters)

    def is_prefix_of(self, other: "Context") -> bool:
        return other.filters[: len(self.filters)] == self.filters

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Context) and self.filters == other.filters

    def __hash__(self) -> int:
        return hash(self.filters)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Context({self.key()})"


ROOT = Context()


# ---------------------------------------------------------------------------
# compiled values
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Uniform:
    """A compile-time constant: the same scalar on every iteration.

    Valid in any context (selection does not change it); becomes an
    instruction constant operand when consumed.
    """

    value: Any


@dataclass(frozen=True)
class Seq:
    """A compile-time *sequence*: one known value per selected iteration.

    Only exists under all-static contexts (where the selected iteration
    set is known).  Materializes as a pattern SOURCE cell.
    """

    values: tuple[Any, ...]


#: Compile-time values; runtime stream endpoints (``Wire``) live in
#: :mod:`repro.compiler.expr`, which owns the graph-facing side.
Value = Union[Uniform, Seq]


def is_compile_time(v: Value) -> bool:
    return isinstance(v, (Uniform, Seq))


def as_uniform(v: Value) -> Optional[Any]:
    """The constant when ``v`` is uniform (a Seq of equal values counts)."""
    if isinstance(v, Uniform):
        return v.value
    if isinstance(v, Seq) and v.values and all(
        x == v.values[0] for x in v.values
    ):
        return v.values[0]
    return None
