"""Pipelined mapping of primitive forall expressions (Section 6, Thm 2).

Two schemes, as in the paper:

* the **pipeline scheme** (the paper's focus, Figure 6): one copy of
  the body expression compiled as a pipelined primitive-expression
  graph, producing the constructed array as a stream of one element
  per two instruction times after balancing;
* the **parallel scheme**: a separate copy of the body per element,
  each fed by single-element window gates, re-serialized by a chain of
  merges.  Exposes more parallelism at much higher cell count and is
  provided for the scheme-comparison ablation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional

from ..errors import CompileError
from ..graph.graph import DataflowGraph
from ..graph.opcodes import (
    MERGE_CONTROL_PORT,
    MERGE_FALSE_PORT,
    MERGE_TRUE_PORT,
)
from ..val import ast_nodes as A
from ..val.classify import ForallInfo, classify_forall
from .context import ROOT, Filter, Seq, Split, Uniform, as_uniform
from .expr import ArraySpec, ExprBuilder, Wire


@dataclass
class BlockArtifact:
    """A compiled program block: its graph plus linking metadata."""

    name: str
    graph: DataflowGraph
    #: endpoint producing the output stream (cell id, arc tag)
    out_cell: int
    out_tag: Optional[bool]
    sink: int
    out_lo: int
    out_hi: int
    inputs: dict[str, ArraySpec] = field(default_factory=dict)
    #: arcs forming feedback loops (for-iter schemes); balancing skips them
    feedback_arcs: list[int] = field(default_factory=list)

    @property
    def out_length(self) -> int:
        return self.out_hi - self.out_lo + 1


def _finish_block(
    name: str,
    g: DataflowGraph,
    builder: ExprBuilder,
    out_wire: Wire,
    lo: int,
    hi: int,
    arrays: Mapping[str, ArraySpec],
) -> BlockArtifact:
    n = hi - lo + 1
    sink = g.add_sink(f"out_{name}", stream=name, limit=n)
    g.connect(out_wire.cell, sink, 0, tag=out_wire.tag)
    g.meta.setdefault("feedback_arcs", [])
    g.meta["output"] = {"stream": name, "lo": lo, "hi": hi}
    g.meta["inputs"] = {
        a.name: (a.lo, a.hi)
        for a in arrays.values()
        if a.name in builder._source_cells
    }
    return BlockArtifact(
        name=name,
        graph=g,
        out_cell=out_wire.cell,
        out_tag=out_wire.tag,
        sink=sink,
        out_lo=lo,
        out_hi=hi,
        inputs={k: v for k, v in arrays.items() if k in builder._source_cells},
        feedback_arcs=list(g.meta["feedback_arcs"]),
    )


def compile_forall_pipeline(
    name: str,
    node: A.Forall,
    arrays: Mapping[str, ArraySpec],
    params: Mapping[str, int],
) -> BlockArtifact:
    """The pipeline scheme: definitions cascade into the accumulation
    expression, all compiled as one pipelined instruction graph."""
    info = classify_forall(node, set(arrays), params)
    g = DataflowGraph(name)
    builder = ExprBuilder(
        g, info.var, info.lo, info.hi, params, arrays, prefix=f"{name}."
    )
    for d in info.defs:
        builder.bind(d.name, builder.compile(d.expr, ROOT), ROOT)
    out = builder.compile(info.accum, ROOT)
    out_wire = builder.materialize(out, ROOT)
    return _finish_block(name, g, builder, out_wire, info.lo, info.hi, arrays)


def compile_forall_parallel(
    name: str,
    node: A.Forall,
    arrays: Mapping[str, ArraySpec],
    params: Mapping[str, int],
    max_elements: int = 256,
) -> BlockArtifact:
    """The parallel scheme: one body copy per element.

    Each copy is compiled under a static filter selecting exactly its
    iteration, so array selections become single-element gates and
    conditionals fold away per element; a merge chain re-serializes the
    element values into the output stream (lowest index first).
    """
    info = classify_forall(node, set(arrays), params)
    if info.length > max_elements:
        raise CompileError(
            f"parallel scheme over {info.length} elements exceeds "
            f"max_elements={max_elements}; use the pipeline scheme"
        )
    g = DataflowGraph(name)
    builder = ExprBuilder(
        g, info.var, info.lo, info.hi, params, arrays, prefix=f"{name}."
    )
    n = info.length
    element_values = []
    for k in range(n):
        pattern = [j == k for j in range(n)]
        ctx = ROOT.extend(Filter(Split.from_pattern(pattern), True))
        saved = dict(builder.env)
        try:
            for d in info.defs:
                builder.bind(d.name, builder.compile(d.expr, ctx), ctx)
            element_values.append((builder.compile(info.accum, ctx), ctx))
        finally:
            builder.env = saved

    # Serialize with a merge chain: after step k the accumulated stream
    # holds elements lo..lo+k; control T..TF appends the next element.
    acc_value, acc_ctx = element_values[0]
    acc = builder.materialize(
        acc_value
        if not isinstance(acc_value, Uniform)
        else Seq((acc_value.value,)),
        acc_ctx,
    )
    for k in range(1, n):
        merge = g.add_merge(name=f"{name}.par_merge{k}")
        ctl = builder.pattern_cell(
            tuple([True] * k + [False]), ROOT, kind="parctl"
        )
        g.connect(ctl, merge, MERGE_CONTROL_PORT)
        g.connect(acc.cell, merge, MERGE_TRUE_PORT, tag=acc.tag)
        val, ctx_k = element_values[k]
        u = as_uniform(val)
        if u is not None and not isinstance(val, Wire):
            g.set_const(merge, MERGE_FALSE_PORT, u)
        else:
            wire = builder.materialize(
                val if not isinstance(val, Uniform) else Seq((val.value,)),
                ctx_k,
            )
            g.connect(wire.cell, merge, MERGE_FALSE_PORT, tag=wire.tag)
        acc = Wire(merge, ROOT)
    return _finish_block(name, g, builder, acc, info.lo, info.hi, arrays)


def compile_forall(
    name: str,
    node: A.Forall,
    arrays: Mapping[str, ArraySpec],
    params: Mapping[str, int],
    scheme: str = "pipeline",
) -> BlockArtifact:
    if scheme == "pipeline":
        return compile_forall_pipeline(name, node, arrays, params)
    if scheme == "parallel":
        return compile_forall_parallel(name, node, arrays, params)
    raise CompileError(f"unknown forall scheme {scheme!r}")


__all__ = [
    "BlockArtifact",
    "ForallInfo",
    "compile_forall",
    "compile_forall_parallel",
    "compile_forall_pipeline",
]
