"""Linking pipe-structured programs (Section 8, Theorem 4).

The blocks of a pipe-structured program form an acyclic *flow
dependency graph*: each block consumes array streams produced by other
blocks or supplied from outside, and produces one array stream.  The
linker compiles every block with its scheme, splices producer outputs
directly into consumer input gates (arrays are never stored -- they
flow as streams, Section 2), and leaves one combined instruction graph
for the global balancing pass.

Input ranges for *external* arrays are inferred with a two-pass trick:
compile each block against the maximal window its accesses could reach,
read back which stream positions the compiled gates actually select
(compile-time conditionals prune the out-of-range accesses, as in
Example 1's boundary rules), then recompile against the tight range.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional

from ..errors import CompileError, GraphError
from ..graph.cell import GATE_PORT
from ..graph.graph import DataflowGraph
from ..graph.opcodes import Op
from ..val import ast_nodes as A
from ..val.ast_nodes import Program, free_identifiers
from ..val.classify import classify_forall, classify_foriter
from .expr import ArraySpec
from .forall import BlockArtifact, compile_forall
from .foriter import compile_foriter


@dataclass
class LinkedProgram:
    """The combined instruction graph of a pipe-structured program."""

    graph: DataflowGraph
    artifacts: dict[str, BlockArtifact]
    input_specs: dict[str, ArraySpec]
    output_specs: dict[str, tuple[int, int]]
    block_order: list[str] = field(default_factory=list)


def _block_access_info(
    block: A.BlockDef, known_arrays: set[str], params: Mapping[str, int]
):
    """(iteration range, accesses) of one block, via the classifiers."""
    expr = block.expr
    if isinstance(expr, A.Forall):
        info = classify_forall(expr, known_arrays, params)
        return (info.lo, info.hi), info.accesses, "forall"
    if isinstance(expr, A.ForIter):
        info = classify_foriter(expr, known_arrays, params)
        # the accumulator's self-reference is the loop feedback, not an
        # input stream; the definition part is evaluated up to body_hi
        # (one iteration past the last append in the paper-literal form)
        accesses = [a for a in info.accesses if a.array != info.acc]
        return (info.elem_lo, info.body_hi), accesses, "foriter"
    raise CompileError(
        f"block {block.name!r} at line {block.line} is neither forall nor "
        f"for-iter; pipe-structured programs contain only those blocks "
        f"(Section 4)"
    )


def _array_names(program: Program, params: Mapping[str, int]) -> set[str]:
    """All identifiers that denote arrays anywhere in the program."""
    names: set[str] = {b.name for b in program.blocks}
    for block in program.blocks:
        for node in A.walk(block.expr):
            if isinstance(node, (A.Index, A.ArrayAppend)) and isinstance(
                node.base, A.Ident
            ):
                names.add(node.base.name)
    return names - set(params)


def infer_input_ranges(
    program: Program,
    params: Mapping[str, int],
    forall_scheme: str = "pipeline",
    foriter_scheme: str = "auto",
    overrides: Optional[Mapping[str, tuple[int, int]]] = None,
) -> dict[str, ArraySpec]:
    """Tight index ranges for the program's external input arrays."""
    overrides = dict(overrides or {})
    arrays = _array_names(program, params)
    block_names = {b.name for b in program.blocks}
    external: dict[str, list[tuple[int, int]]] = {}

    # pass 1: maximal windows
    maximal: dict[str, tuple[int, int]] = {}
    per_block = []
    for block in program.blocks:
        (lo, hi), accesses, kind = _block_access_info(block, arrays, params)
        per_block.append((block, (lo, hi), accesses, kind))
        for acc in accesses:
            if acc.array in block_names or acc.array not in arrays:
                continue
            w_lo, w_hi = lo + acc.offset, hi + acc.offset
            if acc.array in maximal:
                m_lo, m_hi = maximal[acc.array]
                maximal[acc.array] = (min(m_lo, w_lo), max(m_hi, w_hi))
            else:
                maximal[acc.array] = (w_lo, w_hi)

    used: dict[str, set[int]] = {name: set() for name in maximal}
    produced: dict[str, tuple[int, int]] = {}
    for block, (lo, hi), accesses, kind in per_block:
        specs: dict[str, ArraySpec] = {}
        for acc in accesses:
            name = acc.array
            if name in specs or name not in arrays:
                continue
            if name in overrides:
                specs[name] = ArraySpec(name, *overrides[name])
            elif name in produced:
                specs[name] = ArraySpec(name, *produced[name])
            elif name in maximal:
                specs[name] = ArraySpec(name, *maximal[name])
        # Probe with Todd's scheme: it evaluates the definition part over
        # the full body range, so the gate-pattern readback reflects
        # exactly what Val semantics reads (the companion scheme may
        # consume less; its gates discard the surplus in pass 2).
        art = _compile_block(block, specs, params, forall_scheme, "todd")
        produced[block.name] = (art.out_lo, art.out_hi)
        _collect_used_positions(art.graph, specs, used)

    result: dict[str, ArraySpec] = {}
    for name, (m_lo, _m_hi) in maximal.items():
        if name in overrides:
            result[name] = ArraySpec(name, *overrides[name])
            continue
        positions = used.get(name) or set()
        if not positions:
            # every access folded away under compile-time conditionals:
            # the array is statically dead and needs no input stream
            continue
        result[name] = ArraySpec(
            name, m_lo + min(positions), m_lo + max(positions)
        )
    for name, rng in overrides.items():
        result.setdefault(name, ArraySpec(name, *rng))
    _ = external
    return result


def _collect_used_positions(
    g: DataflowGraph,
    specs: Mapping[str, ArraySpec],
    used: dict[str, set[int]],
) -> None:
    """Read back which stream positions a compiled block consumes."""
    for src in g.sources():
        name = src.params.get("stream")
        if name not in used:
            continue
        spec = specs[name]
        for arc in g.out_arcs[src.cid]:
            dst = g.cells[arc.dst]
            ctl_arc = g.in_arc.get((dst.cid, GATE_PORT))
            if dst.op is Op.ID and dst.gated and ctl_arc is not None:
                ctl = g.cells[ctl_arc.src]
                pattern = ctl.params.get("values")
                if pattern is not None:
                    used[name].update(
                        k for k, sel in enumerate(pattern) if sel
                    )
                    continue
            # ungated consumer: the whole stream is used
            used[name].update(range(spec.length))


def _compile_block(
    block: A.BlockDef,
    specs: Mapping[str, ArraySpec],
    params: Mapping[str, int],
    forall_scheme: str,
    foriter_scheme: str,
    **scheme_opts,
) -> BlockArtifact:
    expr = block.expr
    if isinstance(expr, A.Forall):
        return compile_forall(block.name, expr, specs, params, scheme=forall_scheme)
    if isinstance(expr, A.ForIter):
        return compile_foriter(
            block.name, expr, specs, params, scheme=foriter_scheme, **scheme_opts
        )
    raise CompileError(f"block {block.name!r} is not forall/for-iter")


def link_program(
    program: Program,
    params: Mapping[str, int],
    forall_scheme: str = "pipeline",
    foriter_scheme: str = "auto",
    input_ranges: Optional[Mapping[str, tuple[int, int]]] = None,
    keep_all_outputs: bool = False,
    **scheme_opts,
) -> LinkedProgram:
    """Compile every block and splice the flow dependency graph together.

    Producer outputs feed consumer input gates directly; a block's SINK
    survives only if no other block consumes it (or always, with
    ``keep_all_outputs=True``, adding a tee destination).
    """
    if foriter_scheme == "interleaved":
        raise CompileError(
            "the interleaved scheme batches independent program instances "
            "and is driven per block; use "
            "repro.compiler.compile_foriter_interleaved directly"
        )
    arrays = _array_names(program, params)
    block_names = [b.name for b in program.blocks]
    specs = infer_input_ranges(
        program, params, forall_scheme, foriter_scheme, overrides=input_ranges
    )

    consumed: set[str] = set()
    for block in program.blocks:
        consumed |= free_identifiers(block.expr) & set(block_names)

    combined = DataflowGraph(program.blocks[-1].name + "_linked")
    combined.meta["feedback_arcs"] = []
    artifacts: dict[str, BlockArtifact] = {}
    #: block name -> (cell in combined graph, tag) producing its stream
    producer_end: dict[str, tuple[int, Optional[bool]]] = {}
    output_specs: dict[str, tuple[int, int]] = {}

    for block in program.blocks:
        block_arrays: dict[str, ArraySpec] = {}
        for name in free_identifiers(block.expr):
            if name in artifacts:
                art_p = artifacts[name]
                block_arrays[name] = ArraySpec(name, art_p.out_lo, art_p.out_hi)
            elif name in specs:
                block_arrays[name] = specs[name]
        art = _compile_block(
            block, block_arrays, params, forall_scheme, foriter_scheme,
            **scheme_opts,
        )
        artifacts[block.name] = art
        mapping = combined.absorb(art.graph)
        combined.meta["feedback_arcs"].extend(
            mapping_arc
            for mapping_arc in _remap_arcs(art.graph, combined, mapping, art.feedback_arcs)
        )
        out_cell = mapping[art.out_cell]
        sink = mapping[art.sink]
        producer_end[block.name] = (out_cell, art.out_tag)
        output_specs[block.name] = (art.out_lo, art.out_hi)

        # splice earlier producers into this block's SOURCE cells
        for cell in list(combined.cells.values()):
            if cell.op is not Op.SOURCE:
                continue
            stream = cell.params.get("stream")
            if stream is None or stream not in producer_end:
                continue
            if stream == block.name:
                continue
            p_cell, p_tag = producer_end[stream]
            dests = list(combined.out_arcs[cell.cid])
            for arc in dests:
                combined.remove_arc(arc.aid)
                combined.connect(
                    p_cell, arc.dst, arc.dst_port,
                    tag=p_tag, initial=arc.initial, weight=arc.weight,
                )
            combined.remove_cell(cell.cid)

        # drop the sink of a consumed block unless outputs are kept
        if block.name in consumed and not keep_all_outputs:
            pass  # removed after all consumers are spliced (see below)
        _ = sink

    if not keep_all_outputs:
        for name in consumed:
            art = artifacts[name]
            for cell in list(combined.cells.values()):
                if (
                    cell.op is Op.SINK
                    and cell.params.get("stream") == name
                ):
                    combined.remove_cell(cell.cid)
                    output_specs.pop(name, None)

    # sanity: every remaining SOURCE refers to an external input
    for src in combined.sources():
        stream = src.params.get("stream")
        if stream in producer_end and stream in consumed:
            raise GraphError(f"unspliced internal stream {stream!r}")

    return LinkedProgram(
        graph=combined,
        artifacts=artifacts,
        input_specs={
            k: v for k, v in specs.items() if k not in producer_end
        },
        output_specs=output_specs,
        block_order=block_names,
    )


def _remap_arcs(src_graph, dst_graph, cell_mapping, arc_ids):
    """Translate arc ids recorded on a block graph into the combined
    graph after absorb() (matching by endpoints and port)."""
    out = []
    for aid in arc_ids:
        arc = src_graph.arcs[aid]
        new_src = cell_mapping[arc.src]
        new_dst = cell_mapping[arc.dst]
        new_arc = dst_graph.in_arc.get((new_dst, arc.dst_port))
        if new_arc is not None and new_arc.src == new_src:
            out.append(new_arc.aid)
    return out
