"""Multi-process sharded execution of one instruction graph.

The graph is split into K shards by
:func:`repro.analysis.partition.partition_graph`; each shard runs the
ordinary event-driven :class:`~repro.machine.machine.Machine` loop over
its own cells, and every cross-shard arc becomes a *routed* arc: the
packets that would have been heap events on a single machine
(``deliver_results`` / ``deliver_reliable`` / ``receive_ack`` /
``deliver_ack``) travel between workers as plain-data messages.  The
per-arc sequence/ack/retransmission reliability layer is unchanged --
a dropped or corrupted cross-shard packet is retransmitted exactly
like a local one, because the shard machines run the same handlers on
the same per-arc state, merely split producer-side/consumer-side.

Conservative lockstep
---------------------

Every packet sent at cycle ``t`` arrives at ``t + L`` or later, where
``L = max(1, rn_delay)`` (results add at least the network delay, acks
at least ``max(1, rn_delay)``).  The coordinator therefore runs a
classic conservative time-window protocol: it computes the global
minimum next-event time ``T`` over all shard heaps and in-flight
messages, lets every shard execute events with ``time <= T + L - 1``,
collects the messages those events emitted (all stamped ``>= T + L``),
and delivers them at the next barrier.  No shard ever receives a
message in its past, so the merged execution is equivalent to the
single-heap one -- and because message injection is sorted by
``(time, source shard, emission index)``, it is also deterministic
run-to-run.

Coordinated (Chandy-Lamport) snapshots
--------------------------------------

At a barrier, all shards have executed exactly the events before the
barrier time and every in-flight packet is sitting in the
coordinator's routing buffer -- which *is* the channel state of the
cut.  When a checkpoint is due, each worker writes a v2 snapshot of
its machine **plus** the messages about to be injected into it
(``ckpt-<cycle>.shard<k>.snap``, payload ``extra.channel_state``), and
only after all K files land does the coordinator commit the set to the
manifest (see :mod:`repro.checkpoint.coordinator`) -- a crash between
shard writes leaves a partial set that is never eligible for resume.
:meth:`ShardedRunner.resume` loads the newest complete set,
re-injects each shard's channel state, and continues bit-identically.

Fault plans on sharded runs must use ``derivation="keyed"`` (see
:class:`repro.faults.FaultPlan`): each packet's fate is then a pure
function of ``(seed, arc, sequence number, cycle)``, so the shards
inject exactly the faults the single-process run would have.
"""

from __future__ import annotations

import heapq
import multiprocessing
import os
from dataclasses import replace
from typing import Any, Optional, Union

from ..analysis.partition import Partition, partition_graph
from ..checkpoint.manager import CheckpointConfig
from ..errors import (
    DeadlockError,
    ReproError,
    SimulationError,
    SimulationTimeout,
    SnapshotError,
)
from ..faults import FaultPlan
from ..graph.graph import DataflowGraph
from ..graph.lower import lower_fifos
from ..graph.opcodes import Op
from .config import MachineConfig
from .machine import Machine
from .packets import PacketCounters
from .stats import MachineStats, ReliabilityStats

#: a routed cross-shard message: (arrival cycle, event kind, args)
Message = tuple[int, str, tuple]


class ShardCrashError(SimulationError):
    """A shard worker process died (crash, SIGKILL, ``--crash-at``)."""

    def __init__(self, message: str, shard: int = -1,
                 exitcode: Optional[int] = None) -> None:
        self.shard = shard
        self.exitcode = exitcode
        super().__init__(message)


class ShardMachine(Machine):
    """One shard's machine: the full graph, but only *owned* cells run.

    Every shard holds a replica of the whole (already FIFO-lowered)
    graph and of the input streams, so cell ids, arc ids and initial
    tokens line up exactly with the single-process machine; ownership
    only gates which cells may become ready here.  The delivery hooks
    divert packets for non-owned destinations into ``_outbox`` instead
    of the local heap; the coordinator routes them.
    """

    def __init__(
        self,
        graph: DataflowGraph,
        *,
        shard_index: int,
        n_shards: int,
        owner: dict[int, int],
        config: Optional[MachineConfig] = None,
        inputs: Optional[dict[str, list[Any]]] = None,
        policy: str = "round_robin",
        fault_plan: Optional[FaultPlan] = None,
        recovery: bool = True,
    ) -> None:
        if fault_plan is not None and n_shards > 1:
            if fault_plan.unit_faults:
                raise SimulationError(
                    "unit faults are not supported on sharded runs: "
                    "unit indices refer to each shard's private pools"
                )
            if fault_plan.has_packet_faults and (
                fault_plan.derivation != "keyed" or not recovery
            ):
                raise SimulationError(
                    "packet faults on a sharded run need "
                    "derivation='keyed' and recovery=True so every "
                    "shard derives the same per-packet fates"
                )
        # the ready/enabling path consults ownership, so these must
        # exist before Machine.__init__ pre-scans the cells
        self.shard_index = shard_index
        self.n_shards = n_shards
        self._owner = dict(owner)
        self._outbox: list[tuple[int, int, str, tuple]] = []
        super().__init__(
            graph,
            config=config,
            inputs=inputs,
            policy=policy,
            fault_plan=fault_plan,
            recovery=recovery,
        )
        if set(self._owner) != set(self.graph.cells):
            raise SimulationError(
                "shard owner map does not cover the graph; partition "
                "the FIFO-lowered graph (ShardedRunner does this)"
            )
        # only owned sinks/arrays are this shard's outputs
        for cid in [c for c in self.sink_values
                    if self._owner[c] != shard_index]:
            del self.sink_values[cid]
            del self.sink_times[cid]
        self.am_arrays = {
            cell.params["stream"]: []
            for cell in self.graph
            if cell.op is Op.AM_WRITE and self._owner[cell.cid] == shard_index
        }

    # ------------------------------------------------------------------
    # ownership gates
    # ------------------------------------------------------------------
    def _maybe_ready(self, cid: int) -> None:
        if self._owner[cid] != self.shard_index:
            return
        super()._maybe_ready(cid)

    def _pending_work(self) -> tuple[int, int]:
        missing = 0
        for cid, values in self.sink_values.items():
            limit = self.graph.cells[cid].params.get("limit")
            if limit is not None and len(values) < limit:
                missing += limit - len(values)
        undrained = 0
        for cell in self.graph:
            if (
                cell.op in (Op.SOURCE, Op.AM_READ)
                and self._owner[cell.cid] == self.shard_index
            ):
                seq = self._source_seq(cell)
                pos = self.cell_state[cell.cid].source_pos
                if pos < len(seq):
                    undrained += len(seq) - pos
        return missing, undrained

    # ------------------------------------------------------------------
    # packet routing: divert non-owned destinations to the outbox
    # ------------------------------------------------------------------
    def _emit(self, dst_shard: int, when: int, kind: str,
              args: tuple) -> None:
        self._outbox.append((dst_shard, when, kind, args))

    def _schedule_delivery(self, when: int, aids: tuple,
                           value: Any) -> None:
        local = tuple(
            a for a in aids
            if self._owner[self.graph.arcs[a].dst] == self.shard_index
        )
        if local:
            self._at(when, "deliver_results", (local, value))
        for a in aids:
            shard = self._owner[self.graph.arcs[a].dst]
            if shard != self.shard_index:
                self._emit(shard, when, "deliver_results", ((a,), value))

    def _send_reliable_copy(self, aid: int, seq: int, value: Any,
                            corrupted: bool, when: int) -> None:
        shard = self._owner[self.graph.arcs[aid].dst]
        if shard == self.shard_index:
            super()._send_reliable_copy(aid, seq, value, corrupted, when)
        else:
            self._emit(shard, when, "deliver_reliable",
                       (aid, seq, value, corrupted))

    def _send_ack_copy(self, aid: int, seq: int, when: int) -> None:
        shard = self._owner[self.graph.arcs[aid].src]
        if shard == self.shard_index:
            super()._send_ack_copy(aid, seq, when)
        else:
            self._emit(shard, when, "receive_ack", (aid, seq))

    def _send_plain_ack(self, arc, when: int) -> None:
        shard = self._owner[arc.src]
        if shard == self.shard_index:
            super()._send_plain_ack(arc, when)
        else:
            self._emit(shard, when, "deliver_ack", (arc.src,))

    # ------------------------------------------------------------------
    # windowed execution driven by the coordinator
    # ------------------------------------------------------------------
    def begin(self) -> tuple[Optional[int], int]:
        """Start (idempotent) and report (next event time, live)."""
        if not self._started:
            self._start()
        return self.frontier()

    def frontier(self) -> tuple[Optional[int], int]:
        nt = self._events[0][0] if self._events else None
        return nt, self._live_events

    def inject(self, messages: list[Message]) -> None:
        """Deliver routed cross-shard packets into the local heap."""
        for when, kind, args in messages:
            self._at(when, kind, args)

    def run_window(
        self, horizon: int, max_cycles: int
    ) -> tuple[list[tuple[int, int, str, tuple]], Optional[int], int]:
        """Execute every event with ``time <= horizon``; return the
        outbox of cross-shard messages plus the new frontier."""
        while self._events and self._events[0][0] <= horizon:
            entry = heapq.heappop(self._events)
            time, _seq, kind, args, aux = entry
            if time > max_cycles and not aux:
                heapq.heappush(self._events, entry)
                raise SimulationTimeout(
                    f"shard {self.shard_index} exceeded {max_cycles} "
                    f"cycles (still making progress: livelock or "
                    f"genuinely long run)",
                    cycles=time,
                    stats=self.stats(),
                    sink_progress=self._sink_progress(),
                )
            if kind not in ("watchdog_tick", "checkpoint_tick"):
                self._live_events -= 1
            self.now = time
            if not aux:
                self._finish = time
            self._execute(kind, args)
        outbox, self._outbox = self._outbox, []
        nt, live = self.frontier()
        return outbox, nt, live


# ----------------------------------------------------------------------
# worker transports
# ----------------------------------------------------------------------
def _maybe_crash(crash_at: Optional[int], horizon: int) -> None:
    if crash_at is not None and horizon >= crash_at:
        os._exit(137)       # simulated SIGKILL: no cleanup at all


def _write_shard_snapshot(
    machine: ShardMachine, path: str, cycle: int, messages: list[Message]
) -> int:
    """Chandy-Lamport shard capture: machine state *plus* the channel
    state (the messages crossing the cut), recorded **before** the
    messages are injected.  Returns the file size."""
    from ..checkpoint.snapshot import save_snapshot

    save_snapshot(
        machine,
        path,
        reason="coordinated",
        extra={
            "shard": machine.shard_index,
            "shards": machine.n_shards,
            "barrier_cycle": cycle,
            "channel_state": [list(m) for m in messages],
        },
    )
    return os.path.getsize(path)


def _shard_worker(conn, machine: ShardMachine,
                  crash_at: Optional[int]) -> None:
    """Event loop of one worker process (commands over a duplex pipe)."""
    try:
        while True:
            cmd = conn.recv()
            op = cmd[0]
            try:
                if op == "start":
                    conn.send(("ok", machine.begin()))
                elif op == "window":
                    _, horizon, max_cycles, messages = cmd
                    _maybe_crash(crash_at, horizon)
                    machine.inject(messages)
                    conn.send(("ok",
                               machine.run_window(horizon, max_cycles)))
                elif op == "snapshot":
                    _, path, cycle, messages = cmd
                    size = _write_shard_snapshot(
                        machine, path, cycle, messages
                    )
                    machine.inject(messages)
                    conn.send(("ok", size))
                elif op == "finish":
                    conn.send(("ok", machine))
                    return
                elif op == "stop":
                    return
                else:       # pragma: no cover - protocol bug
                    conn.send(("error", "SimulationError",
                               f"unknown worker op {op!r}", 0))
                    return
            except ReproError as exc:
                cycle = getattr(exc, "cycle", machine.now)
                conn.send(("error", type(exc).__name__, str(exc), cycle))
                return
    except (EOFError, KeyboardInterrupt, BrokenPipeError):
        return              # coordinator went away; die quietly


def _rebuild_error(name: str, message: str, cycle: int) -> ReproError:
    if name == "SimulationTimeout":
        return SimulationTimeout(message, cycles=cycle)
    if name == "DeadlockError":
        return DeadlockError(message, step=cycle)
    return SimulationError(message)


class _LocalShard:
    """In-process transport: same protocol, no OS processes.  Used for
    K=1, for tests that sweep many configurations quickly, and as the
    reference the multi-process transport must agree with."""

    def __init__(self, shard: int, machine: ShardMachine,
                 crash_at: Optional[int]) -> None:
        self.shard = shard
        self.machine = machine
        self.crash_at = crash_at
        self._reply: Any = None

    def post(self, cmd: tuple) -> None:
        op = cmd[0]
        if op == "start":
            self._reply = self.machine.begin()
        elif op == "window":
            _, horizon, max_cycles, messages = cmd
            _maybe_crash(self.crash_at, horizon)
            self.machine.inject(messages)
            self._reply = self.machine.run_window(horizon, max_cycles)
        elif op == "snapshot":
            _, path, cycle, messages = cmd
            self._reply = _write_shard_snapshot(
                self.machine, path, cycle, messages
            )
            self.machine.inject(messages)
        elif op == "finish":
            self._reply = self.machine

    def wait(self) -> Any:
        return self._reply

    def close(self) -> None:
        pass


class _ProcessShard:
    """One worker process plus the coordinator's end of its pipe."""

    def __init__(self, shard: int, machine: ShardMachine,
                 crash_at: Optional[int], ctx) -> None:
        self.shard = shard
        self.conn, child = ctx.Pipe(duplex=True)
        self.proc = ctx.Process(
            target=_shard_worker,
            args=(child, machine, crash_at),
            daemon=True,
            name=f"repro-shard-{shard}",
        )
        self.proc.start()
        child.close()

    @property
    def pid(self) -> Optional[int]:
        return self.proc.pid

    def post(self, cmd: tuple) -> None:
        try:
            self.conn.send(cmd)
        except (BrokenPipeError, OSError):
            raise self._crash() from None

    def wait(self) -> Any:
        try:
            reply = self.conn.recv()
        except (EOFError, ConnectionResetError, OSError):
            raise self._crash() from None
        if reply[0] == "error":
            raise _rebuild_error(*reply[1:])
        return reply[1]

    def _crash(self) -> ShardCrashError:
        self.proc.join(timeout=5)
        code = self.proc.exitcode
        return ShardCrashError(
            f"shard {self.shard} worker (pid {self.pid}) died with "
            f"exit code {code}",
            shard=self.shard,
            exitcode=code,
        )

    def close(self) -> None:
        try:
            self.conn.close()
        except OSError:
            pass
        if self.proc.is_alive():
            self.proc.terminate()
        self.proc.join(timeout=5)


# ----------------------------------------------------------------------
# the coordinator
# ----------------------------------------------------------------------
class ShardedRunner:
    """Drive K shard machines in conservative lockstep to completion."""

    def __init__(
        self,
        graph: DataflowGraph,
        inputs: Optional[dict[str, list[Any]]] = None,
        *,
        shards: int = 2,
        config: Optional[MachineConfig] = None,
        policy: str = "round_robin",
        fault_plan: Optional[FaultPlan] = None,
        recovery: bool = True,
        checkpoint: Optional[CheckpointConfig] = None,
        partition: Union[str, Partition] = "auto",
        processes: Optional[bool] = None,
        workload_id: Optional[str] = None,
    ) -> None:
        if shards < 1:
            raise SimulationError(f"shard count must be >= 1, got {shards}")
        config = config or MachineConfig()
        if graph.cells_by_op(Op.FIFO):
            # shards replicate the graph, so lower *once* here to keep
            # cell/arc ids identical everywhere
            graph = lower_fifos(graph)
        if isinstance(partition, Partition):
            part = partition
        else:
            part = partition_graph(graph, shards, partition)
        # each shard runs headless: the coordinator owns global
        # progress (a per-shard watchdog would mistake "waiting for a
        # cross-shard token" for a stall)
        shard_cfg = replace(config, watchdog=False)
        self.partition = part
        self.shards = shards
        self.workload_id = workload_id
        self._lookahead = max(1, config.rn_delay)
        self._processes = shards > 1 if processes is None else processes
        self.machines: list[ShardMachine] = [
            ShardMachine(
                graph,
                shard_index=k,
                n_shards=shards,
                owner=part.owner,
                config=shard_cfg,
                inputs=inputs,
                policy=policy,
                fault_plan=fault_plan,
                recovery=recovery,
            )
            for k in range(shards)
        ]
        for m in self.machines:
            m.workload_id = workload_id
        self._ckpt = None
        self._next_ckpt: Optional[int] = None
        if checkpoint is not None:
            from ..checkpoint.coordinator import (
                CoordinatedCheckpointManager,
            )

            self._ckpt = CoordinatedCheckpointManager(checkpoint, shards)
            self._next_ckpt = checkpoint.interval or None
        self.worker_pids: list[Optional[int]] = []
        self._finished = False

    # ------------------------------------------------------------------
    @classmethod
    def resume(
        cls,
        directory,
        *,
        processes: Optional[bool] = None,
        allow_legacy: bool = False,
    ) -> "ShardedRunner":
        """Load the newest *complete* coordinated snapshot set and
        return a runner ready to continue bit-identically."""
        from pathlib import Path

        from ..checkpoint.coordinator import (
            CoordinatedCheckpointManager,
            latest_coordinated,
            read_shard_manifest,
        )
        from ..checkpoint.snapshot import load_machine

        directory = Path(directory)
        manifest = read_shard_manifest(directory)
        entry = latest_coordinated(directory)
        if entry is None:
            raise SnapshotError(
                f"no complete coordinated snapshot set in {directory}"
            )
        machines: list[ShardMachine] = []
        for fname in entry["files"]:
            machine, extra = load_machine(
                directory / fname,
                expected_cls=ShardMachine,
                allow_legacy=allow_legacy,
                with_extra=True,
            )
            extra = extra or {}
            machine.inject(
                [tuple(m) for m in extra.get("channel_state", ())]
            )
            machines.append(machine)
        shards = len(machines)
        self = cls.__new__(cls)
        self.partition = Partition(
            k=shards,
            scheme=str(manifest.get("partition_scheme", "resumed")),
            owner=dict(machines[0]._owner),
            cut_arcs=(),
        )
        self.shards = shards
        self.workload_id = machines[0].workload_id
        self._lookahead = max(1, machines[0].config.rn_delay)
        self._processes = shards > 1 if processes is None else processes
        self.machines = machines
        self._ckpt = CoordinatedCheckpointManager.attach(directory)
        interval = self._ckpt.config.interval
        self._next_ckpt = (
            entry["cycle"] + interval if interval else None
        )
        self.worker_pids = []
        self._finished = False
        return self

    # ------------------------------------------------------------------
    def run(
        self,
        max_cycles: int = 50_000_000,
        crash_at: Optional[int] = None,
        crash_shard: int = 0,
    ) -> MachineStats:
        """Run the sharded simulation to quiescence.

        ``crash_at`` hard-kills shard ``crash_shard``'s worker
        (``os._exit(137)``) at the first barrier whose horizon reaches
        that cycle -- the sharded analogue of :meth:`Machine.run`'s
        SIGKILL stand-in.  With the in-process transport the whole
        process dies, exactly like the single-machine flag.
        """
        if self._finished:
            raise SimulationError("this runner has already completed")
        if self._ckpt is not None:
            self._ckpt.on_start(self)
        eps = self._spawn(crash_at, crash_shard)
        try:
            self._drive(eps, max_cycles)
            self.machines = [self._finish_one(ep) for ep in eps]
        finally:
            for ep in eps:
                ep.close()
        self._finished = True
        self._check_complete()
        if self._ckpt is not None:
            self._ckpt.on_complete(self)
        return self.stats()

    def _spawn(self, crash_at: Optional[int], crash_shard: int):
        eps: list[Any] = []
        if not self._processes:
            for k, m in enumerate(self.machines):
                eps.append(
                    _LocalShard(k, m, crash_at if k == crash_shard else None)
                )
            self.worker_pids = [None] * self.shards
            return eps
        ctx = multiprocessing.get_context(
            "fork"
            if "fork" in multiprocessing.get_all_start_methods()
            else "spawn"
        )
        for k, m in enumerate(self.machines):
            eps.append(_ProcessShard(
                k, m, crash_at if k == crash_shard else None, ctx
            ))
        self.worker_pids = [ep.pid for ep in eps]
        return eps

    def _drive(self, eps, max_cycles: int) -> None:
        for ep in eps:
            ep.post(("start",))
        frontier = [ep.wait() for ep in eps]
        #: in-flight packets: (when, src shard, emission index, dst,
        #: kind, args) -- sorted injection keeps the run deterministic
        pending: list[tuple[int, int, int, int, str, tuple]] = []
        while True:
            times = [nt for nt, _ in frontier if nt is not None]
            times.extend(m[0] for m in pending)
            if not times:
                return          # global quiescence
            t_min = min(times)
            by_dst: dict[int, list[Message]] = {}
            for when, _src, _idx, dst, kind, args in sorted(pending):
                by_dst.setdefault(dst, []).append((when, kind, args))
            pending = []
            if self._next_ckpt is not None and t_min >= self._next_ckpt:
                self._coordinated_snapshot(eps, t_min, by_dst)
                interval = self._ckpt.config.interval
                while self._next_ckpt <= t_min:
                    self._next_ckpt += interval
                by_dst = {}     # the snapshot op already injected them
            horizon = t_min + self._lookahead - 1
            for k, ep in enumerate(eps):
                ep.post(("window", horizon, max_cycles,
                         by_dst.get(k, [])))
            frontier = []
            for k, ep in enumerate(eps):
                outbox, nt, live = ep.wait()
                for idx, (dst, when, kind, args) in enumerate(outbox):
                    pending.append((when, k, idx, dst, kind, args))
                frontier.append((nt, live))

    def _coordinated_snapshot(
        self, eps, cycle: int, by_dst: dict[int, list[Message]]
    ) -> None:
        """One Chandy-Lamport barrier: every worker records its state
        plus its incoming channel messages, then the set is committed
        atomically (all K files or nothing)."""
        names = [self._ckpt.shard_name(cycle, k) for k in range(len(eps))]
        for k, ep in enumerate(eps):
            path = str(self._ckpt.directory / names[k])
            ep.post(("snapshot", path, cycle, by_dst.get(k, [])))
        sizes = [ep.wait() for ep in eps]
        self._ckpt.commit(cycle, names, sizes)

    def _finish_one(self, ep) -> ShardMachine:
        ep.post(("finish",))
        return ep.wait()

    # ------------------------------------------------------------------
    # results
    # ------------------------------------------------------------------
    def _check_complete(self) -> None:
        missing = undrained = 0
        for m in self.machines:
            mm, uu = m._pending_work()
            missing += mm
            undrained += uu
        if missing or undrained:
            finish = self.finish_cycle
            parts = [
                f"sharded machine quiescent at cycle {finish} with "
                f"{missing} expected outputs missing"
            ]
            if undrained:
                parts.append(f"{undrained} input tokens never consumed")
            raise DeadlockError(
                "; ".join(parts),
                step=finish,
                pending=missing + undrained,
            )

    @property
    def finish_cycle(self) -> int:
        return max((m._finish for m in self.machines), default=0)

    def outputs(self) -> dict[str, list[Any]]:
        out: dict[str, list[Any]] = {}
        for m in self.machines:
            out.update(m.outputs())
        return out

    def sink_arrival_times(self, stream: str) -> list[int]:
        for m in self.machines:
            for cid in m.sink_values:
                if m.graph.cells[cid].params["stream"] == stream:
                    return m.sink_times[cid]
        raise SimulationError(f"no sink for stream {stream!r}")

    def am_arrays(self) -> dict[str, list[Any]]:
        out: dict[str, list[Any]] = {}
        for m in self.machines:
            out.update(m.am_arrays)
        return out

    def stats(self) -> MachineStats:
        return merge_shard_stats(
            self.machines,
            checkpoints=self._ckpt.stats if self._ckpt is not None else None,
        )


def _sum_dataclass(cls, items):
    """Field-wise sum of int-counter dataclass instances."""
    import dataclasses

    out = cls()
    for item in items:
        if item is None:
            continue
        for f in dataclasses.fields(cls):
            cur = getattr(out, f.name)
            if isinstance(cur, int):
                setattr(out, f.name, cur + getattr(item, f.name))
    return out


def merge_shard_stats(
    machines: list[ShardMachine], checkpoints=None
) -> MachineStats:
    """Merge per-shard statistics into one run-level view.  Counters
    add; unit lists concatenate (shard k's PEs come before shard
    k+1's); a cell's fire count is taken from its owning shard."""
    from ..faults.injector import FaultStats

    fire_counts: dict[int, int] = {}
    for m in machines:
        for cid, st in m.cell_state.items():
            if m._owner[cid] == m.shard_index:
                fire_counts[cid] = st.fire_count
    any_rel = any(
        m._reliable or m.injector is not None for m in machines
    )
    any_inj = any(m.injector is not None for m in machines)
    return MachineStats(
        cycles=max((m._finish for m in machines), default=0),
        packets=_sum_dataclass(
            PacketCounters, [m.packets for m in machines]
        ),
        pe_ops=[u.ops for m in machines for u in m.pes],
        fu_ops=[u.ops for m in machines for u in m.fus],
        am_ops=[u.ops for m in machines for u in m.ams],
        pe_busy=[u.busy_cycles for m in machines for u in m.pes],
        fu_busy=[u.busy_cycles for m in machines for u in m.fus],
        am_busy=[u.busy_cycles for m in machines for u in m.ams],
        fire_counts=fire_counts,
        reliability=(
            _sum_dataclass(
                ReliabilityStats, [m.rel for m in machines]
            )
            if any_rel
            else None
        ),
        faults=(
            _sum_dataclass(
                FaultStats,
                [m.injector.stats for m in machines
                 if m.injector is not None],
            )
            if any_inj
            else None
        ),
        checkpoints=checkpoints,
    )


def run_sharded(
    graph: DataflowGraph,
    inputs: Optional[dict[str, list[Any]]] = None,
    *,
    shards: int = 2,
    config: Optional[MachineConfig] = None,
    max_cycles: int = 50_000_000,
    fault_plan: Optional[FaultPlan] = None,
    recovery: bool = True,
    checkpoint: Optional[CheckpointConfig] = None,
    partition: Union[str, Partition] = "auto",
    processes: Optional[bool] = None,
    workload_id: Optional[str] = None,
) -> tuple[dict[str, list[Any]], MachineStats, ShardedRunner]:
    """Convenience wrapper mirroring ``run_machine`` for sharded runs."""
    runner = ShardedRunner(
        graph,
        inputs,
        shards=shards,
        config=config,
        fault_plan=fault_plan,
        recovery=recovery,
        checkpoint=checkpoint,
        partition=partition,
        processes=processes,
        workload_id=workload_id,
    )
    stats = runner.run(max_cycles=max_cycles)
    return runner.outputs(), stats, runner
