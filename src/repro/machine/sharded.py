"""Multi-process sharded execution of one instruction graph.

The graph is split into K shards by
:func:`repro.analysis.partition.partition_graph`; each shard runs the
ordinary event-driven :class:`~repro.machine.machine.Machine` loop over
its own cells, and every cross-shard arc becomes a *routed* arc: the
packets that would have been heap events on a single machine
(``deliver_results`` / ``deliver_reliable`` / ``receive_ack`` /
``deliver_ack``) travel between workers as plain-data messages.  The
per-arc sequence/ack/retransmission reliability layer is unchanged --
a dropped or corrupted cross-shard packet is retransmitted exactly
like a local one, because the shard machines run the same handlers on
the same per-arc state, merely split producer-side/consumer-side.

Conservative lockstep, adaptive horizons
----------------------------------------

Every packet sent at cycle ``t`` arrives at ``t + L`` or later, where
``L = max(1, rn_delay)`` (results add at least the network delay, acks
at least ``max(1, rn_delay)``).  The coordinator therefore runs a
classic conservative time-window protocol: it computes the global
minimum next-event time ``T`` over all shard heaps and in-flight
messages, lets every shard execute events up to a safe horizon,
collects the messages those events emitted, and delivers them at the
next barrier.  No shard ever receives a message in its past, so the
merged execution is equivalent to the single-heap one -- and because
message injection is sorted by ``(time, source shard, emission
index)``, it is also deterministic run-to-run.

The *fixed* horizon is the classic ``T + L - 1``.  The *adaptive*
horizon (default) is derived from cut-arc occupancy: each shard
reports an **earliest output time** (EOT) -- a lower bound on the
arrival cycle of the next packet it could possibly push across the
cut.  For every pending event at time ``t`` whose influence must
traverse at least ``d`` arcs (BFS hop distance to the nearest
shard-boundary cell) before reaching the cut, any resulting
cross-shard packet arrives at ``t + d + L`` or later: every arc
traversal (delivery, reliable copy, ack) costs at least one cycle and
brings the influence at most one hop closer, and an emission from a
boundary cell at time ``t'`` is stamped ``>= t' + L``.  The
coordinator may therefore run every shard to ``min(all EOTs, all
pending-message arrivals + L) - 1`` without any shard ever hearing
from the future -- on coarse cuts this batches thousands of cycles
per barrier instead of ``L``.  Shards whose heaps cannot reach the
cut at all (zero-cut component partitions) report no bound and run
to quiescence in one window.

Warm worker pool and shared-memory rings
----------------------------------------

Worker processes outlive a run: on success they park in a
module-level pool keyed by graph content, and the next
``ShardedRunner`` over the same graph reclaims them with a
``rebuild`` command instead of paying fork+import again (idle workers
are reaped after ``ShardConfig.pool_idle_timeout``).  Steady-state
cut packets travel through per-worker ``multiprocessing``
shared-memory rings with a fixed 32-byte slot codec (see
:mod:`repro.machine.shard_transport`); the rings are fully drained
every window and only slot counts ride the (seq-tagged) command pipe,
so rollbacks and respawns cannot desynchronize a cursor.  Packets the
codec cannot carry spill to the pipe in the same command, preserving
the exact injection order.  At a barrier the rings are empty and all
in-flight packets sit in the coordinator -- the Chandy-Lamport
``channel_state`` captured by coordinated snapshots is therefore
complete by construction.

Coordinated (Chandy-Lamport) snapshots
--------------------------------------

At a barrier, all shards have executed exactly the events before the
barrier time and every in-flight packet is sitting in the
coordinator's routing buffer -- which *is* the channel state of the
cut.  When a checkpoint is due, each worker writes a v2 snapshot of
its machine **plus** the messages about to be injected into it
(``ckpt-<cycle>.shard<k>.snap``, payload ``extra.channel_state``), and
only after all K files land does the coordinator commit the set to the
manifest (see :mod:`repro.checkpoint.coordinator`) -- a crash between
shard writes leaves a partial set that is never eligible for resume.
:meth:`ShardedRunner.resume` loads the newest complete set,
re-injects each shard's channel state, and continues bit-identically.

Fault plans on sharded runs must use ``derivation="keyed"`` (see
:class:`repro.faults.FaultPlan`): each packet's fate is then a pure
function of ``(seed, arc, sequence number, cycle)``, so the shards
inject exactly the faults the single-process run would have.

In-process self-healing
-----------------------

With real worker processes and coordinated checkpoints, the runner is
self-healing (see DESIGN.md section 10): every reply wait carries a
deadline with heartbeat polls, so a dead *or hung* worker is detected
within a bounded window; on detection all shards roll back to the
latest complete coordinated set (survivors reload in place over the
``load`` op, the failed worker is respawned), the channel state of the
cut is re-injected, and the lockstep windows replay forward --
bit-identically, because windows are a pure function of shard state
plus injected messages.  Escalation mirrors the supervisor one level
down (:class:`ShardRecoveryPolicy`): per-shard restart budgets with
exponential seeded backoff, two-strike same-window step-back, and on
budget exhaustion a typed :class:`ShardRecoveryExhausted` (exit 137
at the CLI) so ``repro supervise`` stays the outer loop of last
resort -- or, behind ``degrade=True``, the incurable shard is folded
into the coordinator process and the run continues with K-1 workers.
Worker-level chaos (:class:`repro.faults.ShardFault`) makes all of
this deterministically testable.
"""

from __future__ import annotations

import atexit
import hashlib
import heapq
import multiprocessing
import os
import pickle
import random
import threading
import time
import weakref
from dataclasses import dataclass, replace
from typing import Any, Optional, Union

from ..analysis.partition import Partition, cut_distances, partition_graph
from ..checkpoint.manager import CheckpointConfig
from ..errors import (
    EXIT_SHARD_CRASH,
    DeadlockError,
    ReproError,
    SimulationError,
    SimulationTimeout,
    SnapshotError,
)
from ..faults import FaultPlan
from ..graph.graph import DataflowGraph
from ..graph.lower import lower_fifos
from ..graph.opcodes import Op
from .config import MachineConfig
from .machine import Machine, _CellState
from .packets import PacketCounters
from .shard_config import (
    RecoveryPolicy,
    ShardConfig,
    ShardRecoveryPolicy,
    TransportConfig,
)
from .shard_transport import (
    create_ring,
    decode_slot,
    encode_slot,
    shm_supported,
)
from .stats import MachineStats, RecoveryStats, ReliabilityStats

__all__ = [
    "Message",
    "RecoveryPolicy",
    "ShardConfig",
    "ShardCrashError",
    "ShardHangError",
    "ShardMachine",
    "ShardRecoveryExhausted",
    "ShardRecoveryPolicy",
    "ShardedRunner",
    "TransportConfig",
    "merge_shard_stats",
    "run_sharded",
    "shutdown_worker_pool",
]

#: a routed cross-shard message: (arrival cycle, event kind, args)
Message = tuple[int, str, tuple]

#: reply deadline (seconds) for workers of runners without a healing
#: policy -- generous, but the parent never blocks forever on a pipe
_DEFAULT_DEADLINE = 600.0

#: poll granularity (seconds) while waiting on a worker reply
_DEFAULT_HEARTBEAT = 0.05


class ShardCrashError(SimulationError):
    """A shard worker process died (crash, SIGKILL, ``--crash-at``)."""

    def __init__(self, message: str, shard: int = -1,
                 exitcode: Optional[int] = None,
                 cycle: int = -1) -> None:
        self.shard = shard
        self.exitcode = exitcode
        #: barrier cycle of the command the worker was handling
        self.cycle = cycle
        super().__init__(message)


class ShardHangError(ShardCrashError):
    """A live worker missed its reply deadline (hung, not dead)."""


class ShardRecoveryExhausted(ShardCrashError):
    """In-process recovery gave up: a shard blew through its restart
    budget (or stepped back past every usable coordinated set).  A
    subclass of :class:`ShardCrashError`, so the CLI still exits 137
    and ``repro supervise`` remains the outer loop of last resort."""


class ShardMachine(Machine):
    """One shard's machine: the full graph, but only *owned* cells run.

    Every shard holds a replica of the whole (already FIFO-lowered)
    graph and of the input streams, so cell ids, arc ids and initial
    tokens line up exactly with the single-process machine; ownership
    only gates which cells may become ready here.  The delivery hooks
    divert packets for non-owned destinations into ``_outbox`` instead
    of the local heap; the coordinator routes them.
    """

    #: shard-level faults are legal on this machine class -- they are
    #: consumed by the coordinator, never by the machine itself (the
    #: plain Machine rejects plans that carry them)
    _hosts_shard_faults = True

    #: delta snapshot coverage (see Machine.snapshot_sections): the
    #: outbox travels with the core, the shard identity is static
    _SNAP_CORE_ATTRS = Machine._SNAP_CORE_ATTRS + ("_outbox",)
    _SNAP_STATIC_ATTRS = Machine._SNAP_STATIC_ATTRS | frozenset(
        {"shard_index", "n_shards", "_owner", "_cut_dist"}
    )

    #: lazily-built ``(cell_dist, arc_dist)`` hop-distance tables to
    #: the nearest shard-boundary cell (class default so machines
    #: pickled before this attribute existed still load)
    _cut_dist: Optional[tuple[dict[int, int], dict[int, int]]] = None

    def __init__(
        self,
        graph: DataflowGraph,
        *,
        shard_index: int,
        n_shards: int,
        owner: dict[int, int],
        config: Optional[MachineConfig] = None,
        inputs: Optional[dict[str, list[Any]]] = None,
        policy: str = "round_robin",
        fault_plan: Optional[FaultPlan] = None,
        recovery: bool = True,
    ) -> None:
        if fault_plan is not None and n_shards > 1:
            if fault_plan.unit_faults:
                raise SimulationError(
                    "unit faults are not supported on sharded runs: "
                    "unit indices refer to each shard's private pools"
                )
            if fault_plan.has_packet_faults and (
                fault_plan.derivation != "keyed" or not recovery
            ):
                raise SimulationError(
                    "packet faults on a sharded run need "
                    "derivation='keyed' and recovery=True so every "
                    "shard derives the same per-packet fates"
                )
        # the ready/enabling path consults ownership, so these must
        # exist before Machine.__init__ pre-scans the cells
        self.shard_index = shard_index
        self.n_shards = n_shards
        self._owner = dict(owner)
        self._outbox: list[tuple[int, int, str, tuple]] = []
        super().__init__(
            graph,
            config=config,
            inputs=inputs,
            policy=policy,
            fault_plan=fault_plan,
            recovery=recovery,
        )
        if set(self._owner) != set(self.graph.cells):
            raise SimulationError(
                "shard owner map does not cover the graph; partition "
                "the FIFO-lowered graph (ShardedRunner does this)"
            )
        # only owned sinks/arrays are this shard's outputs
        for cid in [c for c in self.sink_values
                    if self._owner[c] != shard_index]:
            del self.sink_values[cid]
            del self.sink_times[cid]
        self.am_arrays = {
            cell.params["stream"]: []
            for cell in self.graph
            if cell.op is Op.AM_WRITE and self._owner[cell.cid] == shard_index
        }
        # Non-owned cells never execute here (the ownership gates below
        # divert their packets to the owning shard), so their per-cell
        # state stays pristine for the whole run.  Alias them all to a
        # single shared pristine record -- read-only consumers
        # (diagnosis, stats merges, snapshot sections) still see valid
        # zeros, but the process stops carrying ``n_shards`` full
        # replicas of the graph's mutable state.  That replica weight
        # is what made K in-process shards lose to K=1: every GC pass
        # and every worker finish pickle paid for all K copies.
        # ``_start`` writes initial-token bookkeeping through arc
        # endpoints regardless of ownership, so those keep private
        # records.
        if n_shards > 1:
            keep = set()
            for arc in self.graph.arcs.values():
                if arc.has_initial:
                    keep.add(arc.src)
                    keep.add(arc.dst)
            shared = _CellState()
            for cid in self.graph.cells:
                if self._owner[cid] != shard_index and cid not in keep:
                    self.cell_state[cid] = shared

    # ------------------------------------------------------------------
    # ownership gates
    # ------------------------------------------------------------------
    def _maybe_ready(self, cid: int) -> None:
        if self._owner[cid] != self.shard_index:
            return
        super()._maybe_ready(cid)

    def _pending_work(self) -> tuple[int, int]:
        missing = 0
        for cid, values in self.sink_values.items():
            limit = self.graph.cells[cid].params.get("limit")
            if limit is not None and len(values) < limit:
                missing += limit - len(values)
        undrained = 0
        for cell in self.graph:
            if (
                cell.op in (Op.SOURCE, Op.AM_READ)
                and self._owner[cell.cid] == self.shard_index
            ):
                seq = self._source_seq(cell)
                pos = self.cell_state[cell.cid].source_pos
                if pos < len(seq):
                    undrained += len(seq) - pos
        return missing, undrained

    # ------------------------------------------------------------------
    # packet routing: divert non-owned destinations to the outbox
    # ------------------------------------------------------------------
    def _emit(self, dst_shard: int, when: int, kind: str,
              args: tuple) -> None:
        self._outbox.append((dst_shard, when, kind, args))

    def _schedule_delivery(self, when: int, aids: tuple,
                           value: Any) -> None:
        local = tuple(
            a for a in aids
            if self._owner[self.graph.arcs[a].dst] == self.shard_index
        )
        if local:
            self._at(when, "deliver_results", (local, value))
        for a in aids:
            shard = self._owner[self.graph.arcs[a].dst]
            if shard != self.shard_index:
                self._emit(shard, when, "deliver_results", ((a,), value))

    def _send_reliable_copy(self, aid: int, seq: int, value: Any,
                            corrupted: bool, when: int) -> None:
        shard = self._owner[self.graph.arcs[aid].dst]
        if shard == self.shard_index:
            super()._send_reliable_copy(aid, seq, value, corrupted, when)
        else:
            self._emit(shard, when, "deliver_reliable",
                       (aid, seq, value, corrupted))

    def _send_ack_copy(self, aid: int, seq: int, when: int) -> None:
        shard = self._owner[self.graph.arcs[aid].src]
        if shard == self.shard_index:
            super()._send_ack_copy(aid, seq, when)
        else:
            self._emit(shard, when, "receive_ack", (aid, seq))

    def _send_plain_ack(self, arc, when: int) -> None:
        shard = self._owner[arc.src]
        if shard == self.shard_index:
            super()._send_plain_ack(arc, when)
        else:
            self._emit(shard, when, "deliver_ack", (arc.src,))

    # ------------------------------------------------------------------
    # windowed execution driven by the coordinator
    # ------------------------------------------------------------------
    def begin(self) -> tuple[Optional[int], int, Optional[int]]:
        """Start (idempotent) and report (next event time, live, EOT)."""
        if not self._started:
            self._start()
        return self.frontier()

    def frontier(self) -> tuple[Optional[int], int, Optional[int]]:
        nt = self._events[0][0] if self._events else None
        return nt, self._live_events, self.eot()

    def inject(self, messages: list[Message]) -> None:
        """Deliver routed cross-shard packets into the local heap."""
        for when, kind, args in messages:
            self._at(when, kind, args)

    # ------------------------------------------------------------------
    # adaptive-horizon support: earliest output time over the cut
    # ------------------------------------------------------------------
    def _distances(self) -> tuple[dict[int, int], dict[int, int]]:
        """(cell -> hops to nearest boundary cell, arc -> min endpoint
        distance).  Cells/arcs that cannot reach the cut are omitted."""
        if self._cut_dist is None:
            cell_dist = cut_distances(self.graph, self._owner)
            arc_dist: dict[int, int] = {}
            for aid, arc in self.graph.arcs.items():
                ds = cell_dist.get(arc.src)
                dd = cell_dist.get(arc.dst)
                if ds is None:
                    d = dd
                elif dd is None:
                    d = ds
                else:
                    d = min(ds, dd)
                if d is not None:
                    arc_dist[aid] = d
            self._cut_dist = (cell_dist, arc_dist)
        return self._cut_dist

    def _event_distance(
        self,
        kind: str,
        args: tuple,
        cell_dist: dict[int, int],
        arc_dist: dict[int, int],
    ) -> Optional[int]:
        """Minimum arc traversals before this event's influence can
        reach a boundary cell; None = it never can."""
        if kind in ("record_sink", "watchdog_tick", "checkpoint_tick"):
            return None         # pure bookkeeping, enables nothing
        if kind == "dispatch":
            queue = self._pe_queues[args[0]]
            best = None
            for cid in queue:
                d = cell_dist.get(cid)
                if d is not None and (best is None or d < best):
                    best = d
            return best
        if kind == "deliver_results":
            best = None
            for aid in args[0]:
                d = arc_dist.get(aid)
                if d is not None and (best is None or d < best):
                    best = d
            return best
        if kind in (
            "deliver_one_faulty", "transmit_result", "check_retransmit",
            "receive_ack", "deliver_reliable",
        ):
            return arc_dist.get(args[0])
        if kind == "deliver_ack":
            return cell_dist.get(args[0])
        return 0                # unknown kind: fail safe

    def eot(self) -> Optional[int]:
        """Earliest cycle at which any pending event here could cause
        a packet to *arrive* on another shard, or None (it cannot).

        For an event at time ``t`` whose influence is ``d`` arc hops
        from the cut, the quantity ``t + d`` never decreases along a
        causal chain (each hop costs >= 1 cycle and closes at most one
        hop), and an emission from a boundary cell at ``t'`` is
        stamped ``>= t' + L``; hence the bound ``t + d + L``.  Events
        added *during* a window are enabled by an existing event and
        inherit its bound, so scanning the heap at the barrier is
        sufficient.
        """
        if not self._events:
            return None
        cell_dist, arc_dist = self._distances()
        if not cell_dist:
            return None         # no cut reachable from this shard
        lookahead = max(1, self.config.rn_delay)
        best: Optional[int] = None
        for entry in self._events:
            t = entry[0]
            if best is not None and t + lookahead >= best:
                continue
            d = self._event_distance(
                entry[2], entry[3], cell_dist, arc_dist
            )
            if d is None:
                continue
            bound = t + d + lookahead
            if best is None or bound < best:
                best = bound
        return best

    def run_window(
        self, horizon: int, max_cycles: int
    ) -> tuple[
        list[tuple[int, int, str, tuple]], Optional[int], int,
        Optional[int],
    ]:
        """Execute every event with ``time <= horizon``; return the
        outbox of cross-shard messages plus the new frontier."""
        while self._events and self._events[0][0] <= horizon:
            entry = heapq.heappop(self._events)
            time, _seq, kind, args, aux = entry
            if time > max_cycles and not aux:
                heapq.heappush(self._events, entry)
                raise SimulationTimeout(
                    f"shard {self.shard_index} exceeded {max_cycles} "
                    f"cycles (still making progress: livelock or "
                    f"genuinely long run)",
                    cycles=time,
                    stats=self.stats(),
                    sink_progress=self._sink_progress(),
                )
            if kind not in ("watchdog_tick", "checkpoint_tick"):
                self._live_events -= 1
            self.now = time
            if not aux:
                self._finish = time
            self._execute(kind, args)
        outbox, self._outbox = self._outbox, []
        nt, live, eot = self.frontier()
        return outbox, nt, live, eot


# ----------------------------------------------------------------------
# worker transports
# ----------------------------------------------------------------------
def _maybe_crash(crash_at: Optional[int], horizon: int) -> None:
    if crash_at is not None and horizon >= crash_at:
        os._exit(EXIT_SHARD_CRASH)  # simulated SIGKILL: no cleanup at all


def _apply_shard_fault(fault: Optional[tuple]) -> None:
    """Execute a coordinator-injected worker fault directive.

    ``("kill",)`` dies like SIGKILL before touching the machine;
    ``("hang",)`` stops responding forever (the parent's reply
    deadline must catch it); ``("slow", seconds)`` delays the reply.
    """
    if fault is None:
        return
    if fault[0] == "kill":
        os._exit(EXIT_SHARD_CRASH)
    if fault[0] == "hang":
        while True:
            time.sleep(3600)
    if fault[0] == "slow":
        time.sleep(fault[1])


def _load_shard_machine(path: str) -> ShardMachine:
    """Reload one shard from its coordinated-set member file, with the
    channel state (the in-flight cut messages) re-injected."""
    from ..checkpoint.snapshot import load_machine

    machine, extra = load_machine(
        path, expected_cls=ShardMachine, with_extra=True
    )
    extra = extra or {}
    machine.inject([tuple(m) for m in extra.get("channel_state", ())])
    return machine


def _write_shard_snapshot(
    machine: ShardMachine, path: str, cycle: int, messages: list[Message],
    kind: str = "full",
) -> int:
    """Chandy-Lamport shard capture: machine state *plus* the channel
    state (the messages crossing the cut), recorded **before** the
    messages are injected.  Returns the file size.

    ``kind`` is the coordinator's chain decision: ``"full"`` (classic,
    delta mode off), ``"base"`` or ``"delta"``.  Each worker chains
    against its *own* previous member file, so every shard file of a
    delta set is independently chain-verifiable on load.
    """
    from ..checkpoint.snapshot import save_snapshot, write_chain_snapshot

    extra = {
        "shard": machine.shard_index,
        "shards": machine.n_shards,
        "barrier_cycle": cycle,
        "channel_state": [list(m) for m in messages],
    }
    if kind == "full":
        save_snapshot(machine, path, reason="coordinated", extra=extra)
    else:
        write_chain_snapshot(
            machine, path, reason="coordinated", kind=kind, extra=extra
        )
    return os.path.getsize(path)


def _shard_worker(conn, machine: ShardMachine,
                  crash_at: Optional[int], rings=None) -> None:
    """Event loop of one worker process (commands over a duplex pipe).

    Every command arrives wrapped as ``(seq, cmd)`` and every reply is
    sent back prefixed with the same ``seq``: after a rollback the
    coordinator's next command must not be answered by a reply that a
    survivor was still computing for the *failed* barrier, and the
    sequence number lets ``_ProcessShard.wait`` discard such stragglers
    no matter when they land on the pipe.

    ``rings`` is ``(in_shm, out_shm, slots)`` when this worker's cut
    packets travel through shared memory (inherited over fork), else
    None.  A ``finish`` reply ships only the machine's mutable state
    and keeps the loop alive so the process can be pooled and later
    rebuilt (``rebuild``) for another run over the same graph.
    """
    in_shm, out_shm, ring_slots = rings if rings is not None else (
        None, None, 0
    )
    try:
        while True:
            seq, cmd = conn.recv()
            op = cmd[0]
            try:
                if op == "start":
                    conn.send((seq, "ok", machine.begin()))
                elif op == "window":
                    _, horizon, max_cycles, inband, n_ring, fault = cmd
                    _maybe_crash(crash_at, horizon)
                    _apply_shard_fault(fault)
                    entries = list(inband)
                    if n_ring:
                        buf = in_shm.buf
                        for s in range(n_ring):
                            i, _dst, when, kind, args = decode_slot(buf, s)
                            entries.append((i, when, kind, args))
                        entries.sort(key=lambda e: e[0])
                    machine.inject([e[1:] for e in entries])
                    outbox, nt, live, eot = machine.run_window(
                        horizon, max_cycles
                    )
                    spill = []
                    n_out = 0
                    if out_shm is not None:
                        buf = out_shm.buf
                        for i, (dst, when, kind, args) in enumerate(outbox):
                            if n_out < ring_slots and encode_slot(
                                buf, n_out, i, dst, when, kind, args
                            ):
                                n_out += 1
                            else:
                                spill.append((i, dst, when, kind, args))
                    else:
                        spill = [
                            (i, dst, when, kind, args)
                            for i, (dst, when, kind, args)
                            in enumerate(outbox)
                        ]
                    conn.send((seq, "ok", (spill, n_out, nt, live, eot)))
                elif op == "snapshot":
                    # a kill/hang fault here dies *before* the file
                    # lands: the set stays uncommitted and recovery
                    # must fall back to the previous complete set
                    _, path, cycle, messages, fault, kind = cmd
                    _apply_shard_fault(fault)
                    size = _write_shard_snapshot(
                        machine, path, cycle, messages, kind
                    )
                    machine.inject(messages)
                    conn.send((seq, "ok", size))
                elif op == "load":
                    # warm rollback: survivors reload their shard of a
                    # coordinated set in place, keeping the process
                    _, path = cmd
                    machine = _load_shard_machine(path)
                    conn.send((seq, "ok", machine.shard_index))
                elif op == "rebuild":
                    # pool reclamation: reconstruct a pristine machine
                    # for a new run over the retained (content-equal)
                    # graph; deterministic __init__ makes it
                    # bit-identical to a freshly forked copy
                    spec = dict(cmd[1])
                    crash_at = spec.pop("crash_at", None)
                    wid = spec.pop("workload_id", None)
                    machine = ShardMachine(machine.graph, **spec)
                    machine.workload_id = wid
                    conn.send((seq, "ok", machine.shard_index))
                elif op == "finish":
                    # ship only the mutable state (the parent already
                    # holds the static graph/config/inputs) and keep
                    # looping: the process may be pooled for reuse
                    static = type(machine)._SNAP_STATIC_ATTRS
                    state = {
                        k: v for k, v in machine.__dict__.items()
                        if k not in static
                    }
                    conn.send((seq, "ok", ("state", state)))
                elif op == "stop":
                    return
                else:       # pragma: no cover - protocol bug
                    conn.send((seq, "error", "SimulationError",
                               f"unknown worker op {op!r}", 0))
                    return
            except ReproError as exc:
                cycle = getattr(exc, "cycle", machine.now)
                conn.send((seq, "error",
                           type(exc).__name__, str(exc), cycle))
                return
    except (EOFError, KeyboardInterrupt, BrokenPipeError):
        return              # coordinator went away; die quietly


def _rebuild_error(name: str, message: str, cycle: int) -> ReproError:
    if name == "SimulationTimeout":
        return SimulationTimeout(message, cycles=cycle)
    if name == "DeadlockError":
        return DeadlockError(message, step=cycle)
    return SimulationError(message)


# ----------------------------------------------------------------------
# warm worker pool (module level: reuse survives across runners, and
# therefore across facade calls and ``repro serve`` jobs)
# ----------------------------------------------------------------------
@dataclass
class _PooledWorker:
    proc: Any
    conn: Any
    seq: int
    rings: Optional[tuple]      # (in_shm, out_shm, slots) or None
    released_at: float


#: pool key -> LIFO stack of parked workers.  The key is the content
#: digest of the (lowered) graph plus the transport geometry, so a
#: reclaimed worker is guaranteed to hold a content-equal graph and a
#: compatible ring mapping.
_POOL: dict[str, list[_PooledWorker]] = {}
_POOL_LOCK = threading.Lock()
#: global cap on parked workers (LRU-evicted beyond this)
_POOL_CAP = 16

#: id(graph) -> (weakref, digest) memo so repeat runs over the same
#: graph object don't re-pickle it per spawn
_KEY_CACHE: dict[int, tuple[Any, str]] = {}


def _graph_key(graph: DataflowGraph) -> str:
    """Content digest of the lowered graph (identity-verified memo)."""
    ent = _KEY_CACHE.get(id(graph))
    if ent is not None and ent[0]() is graph:
        return ent[1]
    digest = hashlib.sha256(
        pickle.dumps(graph, protocol=pickle.HIGHEST_PROTOCOL)
    ).hexdigest()
    for gid in [g for g, (ref, _) in _KEY_CACHE.items() if ref() is None]:
        del _KEY_CACHE[gid]
    try:
        _KEY_CACHE[id(graph)] = (weakref.ref(graph), digest)
    except TypeError:       # pragma: no cover - graphs are weakref-able
        pass
    return digest


def _close_pooled(entry: _PooledWorker) -> None:
    try:
        entry.conn.close()
    except OSError:
        pass
    if entry.proc.is_alive():
        entry.proc.terminate()
        entry.proc.join(timeout=5)
        if entry.proc.is_alive():
            entry.proc.kill()
    entry.proc.join(timeout=5)
    _close_rings(entry.rings)


def _close_rings(rings: Optional[tuple]) -> None:
    if rings is None:
        return
    for shm in rings[:2]:
        try:
            shm.close()
            shm.unlink()
        except (FileNotFoundError, OSError):
            pass


def _pool_reap(idle_timeout: float) -> None:
    """Close parked workers idle past the timeout (or dead)."""
    now = time.monotonic()
    expired: list[_PooledWorker] = []
    with _POOL_LOCK:
        for key in list(_POOL):
            keep = []
            for e in _POOL[key]:
                if (
                    now - e.released_at > idle_timeout
                    or not e.proc.is_alive()
                ):
                    expired.append(e)
                else:
                    keep.append(e)
            if keep:
                _POOL[key] = keep
            else:
                del _POOL[key]
    for e in expired:
        _close_pooled(e)


def _pool_acquire(
    key: str, idle_timeout: float
) -> Optional[_PooledWorker]:
    _pool_reap(idle_timeout)
    with _POOL_LOCK:
        stack = _POOL.get(key)
        while stack:
            entry = stack.pop()
            if not stack:
                del _POOL[key]
            if entry.proc.is_alive():
                return entry
            _close_pooled(entry)
            stack = _POOL.get(key)
    return None


def _pool_release(key: str, entry: _PooledWorker,
                  idle_timeout: float) -> None:
    evict: list[_PooledWorker] = []
    with _POOL_LOCK:
        _POOL.setdefault(key, []).append(entry)
        total = sum(len(v) for v in _POOL.values())
        while total > _POOL_CAP:
            oldest_key = min(
                _POOL, key=lambda k: _POOL[k][0].released_at
            )
            evict.append(_POOL[oldest_key].pop(0))
            if not _POOL[oldest_key]:
                del _POOL[oldest_key]
            total -= 1
    for e in evict:
        _close_pooled(e)
    _pool_reap(idle_timeout)


def pooled_worker_count() -> int:
    """Parked warm workers right now (observability/tests)."""
    with _POOL_LOCK:
        return sum(len(v) for v in _POOL.values())


def shutdown_worker_pool() -> None:
    """Terminate every parked warm worker and release its rings.

    Called automatically at interpreter exit; call it explicitly to
    bound resources between test phases or serve tenants.
    """
    with _POOL_LOCK:
        entries = [e for stack in _POOL.values() for e in stack]
        _POOL.clear()
    for e in entries:
        _close_pooled(e)


atexit.register(shutdown_worker_pool)


class _LocalShard:
    """In-process transport: same protocol, no OS processes.  Used for
    K=1, for tests that sweep many configurations quickly, and as the
    reference the multi-process transport must agree with."""

    def __init__(self, shard: int, machine: ShardMachine,
                 crash_at: Optional[int]) -> None:
        self.shard = shard
        self.machine = machine
        self.crash_at = crash_at
        self._reply: Any = None
        self.finished_ok = False

    def post_window(self, horizon: int, max_cycles: int,
                    messages: list[Message],
                    fault: Optional[tuple]) -> None:
        self._refuse_fault(fault)
        _maybe_crash(self.crash_at, horizon)
        self.machine.inject(messages)
        self._reply = self.machine.run_window(horizon, max_cycles)

    @staticmethod
    def window_result(raw):
        return raw          # already (outbox, nt, live, eot)

    def post(self, cmd: tuple) -> None:
        op = cmd[0]
        if op == "start":
            self._reply = self.machine.begin()
        elif op == "snapshot":
            _, path, cycle, messages, fault, kind = cmd
            self._refuse_fault(fault)
            self._reply = _write_shard_snapshot(
                self.machine, path, cycle, messages, kind
            )
            self.machine.inject(messages)
        elif op == "load":
            _, path = cmd
            self.machine = _load_shard_machine(path)
            self._reply = self.machine.shard_index
        elif op == "finish":
            self._reply = self.machine

    @staticmethod
    def _refuse_fault(fault: Optional[tuple]) -> None:
        # the runner routes shard faults only to process transports; a
        # kill/hang here would take the coordinator down with it
        if fault is not None:   # pragma: no cover - coordinator bug
            raise SimulationError(
                "shard fault directive sent to an in-process shard"
            )

    def wait(self, timeout: Optional[float] = None) -> Any:
        return self._reply

    def drain(self) -> None:
        pass

    def close(self) -> None:
        pass


class _ProcessShard:
    """One worker process plus the coordinator's end of its pipe.

    Every reply wait runs under a deadline with heartbeat polls: the
    coordinator never blocks indefinitely on ``conn.recv()``, so a
    worker that is dead *or* hung is detected within a bounded window
    (:class:`ShardCrashError` / :class:`ShardHangError`).
    """

    def __init__(self, shard: int, *,
                 deadline: float = _DEFAULT_DEADLINE,
                 heartbeat: float = _DEFAULT_HEARTBEAT,
                 pool_key: Optional[str] = None) -> None:
        self.shard = shard
        self.deadline = deadline
        self.heartbeat = heartbeat
        #: barrier cycle of the last command posted (error context)
        self.last_cycle = -1
        #: sequence number of the last command posted; replies echo it
        #: so ``wait`` can drop stragglers from before a rollback
        self._seq = 0
        #: (in_shm, out_shm, slots) when cut packets ride rings
        self.rings: Optional[tuple] = None
        #: warm-pool key; None = never pool this worker
        self.pool_key = pool_key
        #: set by the runner after a clean finish; gates pooling
        self.finished_ok = False
        self.conn: Any = None
        self.proc: Any = None

    @classmethod
    def spawn(cls, shard: int, machine: ShardMachine,
              crash_at: Optional[int], ctx, *,
              deadline: float = _DEFAULT_DEADLINE,
              heartbeat: float = _DEFAULT_HEARTBEAT,
              rings: Optional[tuple] = None,
              pool_key: Optional[str] = None) -> "_ProcessShard":
        self = cls(shard, deadline=deadline, heartbeat=heartbeat,
                   pool_key=pool_key)
        self.rings = rings
        self.conn, child = ctx.Pipe(duplex=True)
        self.proc = ctx.Process(
            target=_shard_worker,
            args=(child, machine, crash_at, rings),
            daemon=True,
            name=f"repro-shard-{shard}",
        )
        self.proc.start()
        child.close()
        return self

    @classmethod
    def adopt(cls, shard: int, entry: _PooledWorker, spec: dict, *,
              deadline: float = _DEFAULT_DEADLINE,
              heartbeat: float = _DEFAULT_HEARTBEAT,
              pool_key: Optional[str] = None) -> "_ProcessShard":
        """Reclaim a parked warm worker: continue its command stream
        (the pool recorded the last seq) and rebuild its machine for
        the new run.  Raises :class:`ShardCrashError` if the worker
        died in the pool -- callers fall back to a fresh spawn."""
        self = cls(shard, deadline=deadline, heartbeat=heartbeat,
                   pool_key=pool_key)
        self.proc = entry.proc
        self.conn = entry.conn
        self._seq = entry.seq
        self.rings = entry.rings
        self.post(("rebuild", spec))
        self.wait()
        return self

    @property
    def pid(self) -> Optional[int]:
        return self.proc.pid

    def post_window(self, horizon: int, max_cycles: int,
                    messages: list[Message],
                    fault: Optional[tuple]) -> None:
        """Encode this window's inbound packets into the ring (spilling
        what the codec can't carry) and post the window command."""
        inband: list[tuple] = []
        n_ring = 0
        if self.rings is not None and messages:
            in_shm, _out, slots = self.rings
            buf = in_shm.buf
            for i, (when, kind, args) in enumerate(messages):
                if n_ring < slots and encode_slot(
                    buf, n_ring, i, 0, when, kind, args
                ):
                    n_ring += 1
                else:
                    inband.append((i, when, kind, args))
        else:
            inband = [
                (i, when, kind, args)
                for i, (when, kind, args) in enumerate(messages)
            ]
        self.post(("window", horizon, max_cycles, inband, n_ring, fault))

    def window_result(self, raw):
        """Merge a window reply's pipe spill with its ring slots back
        into the worker's original emission order."""
        spill, n_out, nt, live, eot = raw
        merged = list(spill)
        if n_out:
            buf = self.rings[1].buf
            for s in range(n_out):
                merged.append(decode_slot(buf, s))
            merged.sort(key=lambda e: e[0])
        outbox = [(dst, when, kind, args)
                  for _i, dst, when, kind, args in merged]
        return outbox, nt, live, eot

    def post(self, cmd: tuple) -> None:
        if cmd[0] == "window":
            self.last_cycle = cmd[1]
        elif cmd[0] == "snapshot":
            self.last_cycle = cmd[2]
        self._seq += 1
        try:
            self.conn.send((self._seq, cmd))
        except (BrokenPipeError, OSError):
            raise self._crash() from None

    def wait(self, timeout: Optional[float] = None) -> Any:
        limit = self.deadline if timeout is None else timeout
        give_up = time.monotonic() + limit
        reply = None
        while reply is None:
            try:
                if self.conn.poll(self.heartbeat):
                    got = self.conn.recv()
                    if got[0] == self._seq:
                        reply = got
                    # else: straggler from before a rollback — a
                    # survivor answered the failed barrier only after
                    # drain() ran; the echoed seq exposes it
                    continue
            except (EOFError, ConnectionResetError, OSError):
                raise self._crash() from None
            if not self.proc.is_alive():
                # drain replies the worker managed to send before dying
                try:
                    while reply is None and self.conn.poll(0):
                        got = self.conn.recv()
                        if got[0] == self._seq:
                            reply = got
                except (EOFError, ConnectionResetError, OSError):
                    pass
                if reply is None:
                    raise self._crash() from None
            elif time.monotonic() >= give_up:
                raise ShardHangError(
                    f"shard {self.shard} worker (pid {self.pid}) missed "
                    f"its {limit:g}s reply deadline near cycle "
                    f"{self.last_cycle}",
                    shard=self.shard,
                    exitcode=None,
                    cycle=self.last_cycle,
                )
        if reply[1] == "error":
            raise _rebuild_error(*reply[2:])
        return reply[2]

    def drain(self) -> None:
        """Discard queued replies from before a rollback: when a
        barrier dies on one shard, survivors have already answered
        and their queued replies would otherwise sit in the pipe
        buffer.  Sequence filtering in :meth:`wait` is what guarantees
        correctness (a straggler can land *after* this drain); this
        just clears the queue eagerly."""
        try:
            while self.conn.poll(0):
                self.conn.recv()
        except (EOFError, ConnectionResetError, OSError):
            pass        # a dead pipe surfaces on the next post

    def _crash(self) -> ShardCrashError:
        self.proc.join(timeout=5)
        code = self.proc.exitcode
        return ShardCrashError(
            f"shard {self.shard} worker (pid {self.pid}) died with "
            f"exit code {code}",
            shard=self.shard,
            exitcode=code,
            cycle=self.last_cycle,
        )

    def close(self) -> None:
        try:
            self.conn.close()
        except OSError:
            pass
        if self.proc.is_alive():
            self.proc.terminate()
            self.proc.join(timeout=5)
            if self.proc.is_alive():
                # a worker stuck in uninterruptible state shrugged off
                # SIGTERM; SIGKILL it rather than leak a live child
                self.proc.kill()
        self.proc.join(timeout=5)
        _close_rings(self.rings)
        self.rings = None


# ----------------------------------------------------------------------
# the coordinator
# ----------------------------------------------------------------------
class ShardedRunner:
    """Drive K shard machines in conservative lockstep to completion."""

    def __init__(
        self,
        graph: DataflowGraph,
        inputs: Optional[dict[str, list[Any]]] = None,
        *,
        shards: int = 2,
        config: Optional[MachineConfig] = None,
        policy: str = "round_robin",
        fault_plan: Optional[FaultPlan] = None,
        recovery: bool = True,
        checkpoint: Optional[CheckpointConfig] = None,
        partition: Union[str, Partition] = "auto",
        processes: Optional[bool] = None,
        workload_id: Optional[str] = None,
        heal: Union[None, bool, ShardRecoveryPolicy] = None,
        shard_config: Union[None, ShardConfig, dict, str] = None,
    ) -> None:
        sc = ShardConfig.coerce(shard_config)
        if sc is not None:
            # the consolidated config is authoritative; legacy kwargs
            # explicitly passed alongside still win (the facade merges
            # them into the config before it gets here)
            shards = sc.shards
            if not isinstance(partition, Partition):
                partition = sc.partition
            processes = sc.processes
            if heal is None:
                heal = sc.heal_value()
        else:
            sc = ShardConfig(shards=max(1, shards))
        self._shard_cfg = sc
        if shards < 1:
            raise SimulationError(f"shard count must be >= 1, got {shards}")
        config = config or MachineConfig()
        if graph.cells_by_op(Op.FIFO):
            # shards replicate the graph, so lower *once* here to keep
            # cell/arc ids identical everywhere
            graph = lower_fifos(graph)
        if isinstance(partition, Partition):
            part = partition
        else:
            part = partition_graph(graph, shards, partition)
        # each shard runs headless: the coordinator owns global
        # progress (a per-shard watchdog would mistake "waiting for a
        # cross-shard token" for a stall)
        shard_cfg = replace(config, watchdog=False)
        self.partition = part
        self.shards = shards
        self.workload_id = workload_id
        self._lookahead = max(1, config.rn_delay)
        self._processes = shards > 1 if processes is None else processes
        self._policy = policy
        self._init_execution_knobs(config)
        self.machines: list[ShardMachine] = [
            ShardMachine(
                graph,
                shard_index=k,
                n_shards=shards,
                owner=part.owner,
                config=shard_cfg,
                inputs=inputs,
                policy=policy,
                fault_plan=fault_plan,
                recovery=recovery,
            )
            for k in range(shards)
        ]
        for m in self.machines:
            m.workload_id = workload_id
        self._ckpt = None
        self._next_ckpt: Optional[int] = None
        if checkpoint is not None:
            from ..checkpoint.coordinator import (
                CoordinatedCheckpointManager,
            )

            self._ckpt = CoordinatedCheckpointManager(checkpoint, shards)
            self._next_ckpt = checkpoint.interval or None
        self.worker_pids: list[Optional[int]] = []
        self._finished = False
        self._init_heal(heal, fault_plan)

    @staticmethod
    def _order_free(config: MachineConfig) -> bool:
        """Whether equal-cycle event order can never affect modeled
        times.  PEs, FUs/AMs and the routing network each serialize
        same-cycle work through a ``next_free`` cursor when their
        issue interval / bandwidth knob is non-zero; with all three at
        zero (the ``unit_time`` model) heap insertion order for
        equal-cycle events is timing-irrelevant and coarse windows are
        exact."""
        return not (
            config.pe_issue_interval
            or config.fu_issue_interval
            or config.rn_bandwidth
        )

    def _init_execution_knobs(self, config: MachineConfig) -> None:
        """Resolve window/pool/transport knobs from the shard config."""
        sc = self._shard_cfg
        self._window_mode = sc.window
        if self._window_mode == "adaptive" and not self._order_free(config):
            # Coarse windows schedule a shard's local events for cycle
            # T before cycle-T cut packets are injected at the next
            # barrier, reordering equal-cycle heap insertions.  That
            # is invisible when resources never serialize within a
            # cycle, but with issue intervals it shifts modeled times;
            # clamp to the fixed cadence to stay bit-identical.
            self._window_mode = "fixed"
        self._max_window = sc.max_window
        self._pool_enabled = bool(sc.pool) and self._processes
        self._pool_idle = sc.pool_idle_timeout
        self._ring_slots = sc.transport.ring_slots
        self.worker_spawns = 0
        self.worker_reuses = 0
        #: lockstep windows driven so far (adaptive horizons shrink it)
        self.windows_run = 0
        kind = sc.transport.kind
        if not self._processes or kind == "pipe":
            self._transport = "pipe"
            if kind == "shm" and not self._processes:
                raise SimulationError(
                    "transport 'shm' needs real worker processes"
                )
            return
        method = (
            "fork"
            if "fork" in multiprocessing.get_all_start_methods()
            else "spawn"
        )
        if shm_supported(method):
            self._transport = "shm"
        elif kind == "shm":
            raise SimulationError(
                "transport 'shm' needs the fork start method and "
                "multiprocessing.shared_memory; use 'auto' to fall "
                "back to pipes"
            )
        else:
            self._transport = "pipe"

    def _init_heal(
        self,
        heal: Union[None, bool, ShardRecoveryPolicy],
        fault_plan: Optional[FaultPlan],
    ) -> None:
        """Resolve the self-healing policy and arm the chaos faults.

        ``heal=None`` auto-enables healing whenever the run has both
        real worker processes (something to respawn) and coordinated
        checkpoints (something to roll back to); ``True``/``False``
        force it; a :class:`ShardRecoveryPolicy` tunes it.  Healing
        without checkpoints is legal when forced -- recovery then
        restarts every shard from the initial machines, which the
        fork-based workers leave unmutated in this process.
        """
        if heal is None:
            heal = self._processes and self._ckpt is not None
        if heal is True:
            heal = ShardRecoveryPolicy()
        elif heal is False:
            heal = None
        if heal is not None and not self._processes:
            raise SimulationError(
                "self-healing needs real worker processes "
                "(processes=True): an in-process shard cannot be "
                "respawned"
            )
        self._heal: Optional[ShardRecoveryPolicy] = heal
        self._heal_rng = random.Random(heal.seed if heal else 0)
        self._recovery: Optional[RecoveryStats] = None
        #: per-shard respawn count (the restart budget's ledger)
        self._restarts: dict[int, int] = {}
        #: failures per resume point since the last committed set
        self._strikes: dict[int, int] = {}
        #: set cycles barred by two-strike step-back (in-memory only:
        #: replay legitimately re-commits these cycles, so an on-disk
        #: quarantine would poison its own recovery)
        self._barred: set[int] = set()
        #: shards folded into the coordinator after budget exhaustion
        self._degraded: set[int] = set()
        self._ctx = None
        self._barrier = 0
        self._start_cycle = max((m.now for m in self.machines), default=0)
        faults = tuple(
            getattr(fault_plan, "shard_faults", ()) or ()
        ) if fault_plan is not None else ()
        for f in faults:
            if f.shard >= self.shards:
                raise SimulationError(
                    f"shard fault targets shard {f.shard} but the run "
                    f"has only {self.shards} shards"
                )
        if faults and not self._processes:
            raise SimulationError(
                "shard-level faults (kill/hang/slow) need real worker "
                "processes (processes=True); in-process shards share "
                "the coordinator's fate"
            )
        #: unfired chaos faults per shard, soonest first; firing is
        #: one-shot so post-rollback replay converges
        self._shard_faults: dict[int, list] = {}
        for f in sorted(faults, key=lambda f: (f.cycle, f.shard)):
            # on a resumed runner (start cycle > 0), faults at or
            # before the resume point already fired in the run that
            # wrote the snapshot
            if self._start_cycle == 0 or f.cycle > self._start_cycle:
                self._shard_faults.setdefault(f.shard, []).append(f)

    def _take_fault(self, shard: int, cycle: int) -> Optional[tuple]:
        """Pop the due chaos directive for ``shard``, if any."""
        queue = self._shard_faults.get(shard)
        if not queue or cycle < queue[0].cycle or shard in self._degraded:
            return None
        fault = queue.pop(0)
        if fault.kind == "slow":
            return ("slow", fault.delay)
        return (fault.kind,)

    # ------------------------------------------------------------------
    @classmethod
    def resume(
        cls,
        directory,
        *,
        processes: Optional[bool] = None,
        allow_legacy: bool = False,
        heal: Union[None, bool, ShardRecoveryPolicy] = None,
        shard_config: Union[None, ShardConfig, dict, str] = None,
    ) -> "ShardedRunner":
        """Load the newest *complete* coordinated snapshot set and
        return a runner ready to continue bit-identically."""
        from pathlib import Path

        from ..checkpoint.coordinator import (
            CoordinatedCheckpointManager,
            latest_coordinated,
            read_shard_manifest,
        )
        from ..checkpoint.snapshot import load_machine

        directory = Path(directory)
        manifest = read_shard_manifest(directory)
        entry = latest_coordinated(directory)
        if entry is None:
            raise SnapshotError(
                f"no complete coordinated snapshot set in {directory}"
            )
        machines: list[ShardMachine] = []
        for fname in entry["files"]:
            machine, extra = load_machine(
                directory / fname,
                expected_cls=ShardMachine,
                allow_legacy=allow_legacy,
                with_extra=True,
            )
            extra = extra or {}
            machine.inject(
                [tuple(m) for m in extra.get("channel_state", ())]
            )
            machines.append(machine)
        shards = len(machines)
        self = cls.__new__(cls)
        sc = ShardConfig.coerce(shard_config)
        if sc is not None:
            if sc.processes is not None:
                processes = sc.processes
            if heal is None:
                heal = sc.heal_value()
            sc = replace(sc, shards=shards)
        else:
            sc = ShardConfig(shards=shards)
        self._shard_cfg = sc
        self.partition = Partition(
            k=shards,
            scheme=str(manifest.get("partition_scheme", "resumed")),
            owner=dict(machines[0]._owner),
            cut_arcs=(),
        )
        self.shards = shards
        self.workload_id = machines[0].workload_id
        self._lookahead = max(1, machines[0].config.rn_delay)
        self._processes = shards > 1 if processes is None else processes
        self._policy = "round_robin"
        self._init_execution_knobs(machines[0].config)
        self.machines = machines
        self._ckpt = CoordinatedCheckpointManager.attach(directory)
        interval = self._ckpt.config.interval
        self._next_ckpt = (
            entry["cycle"] + interval if interval else None
        )
        self.worker_pids = []
        self._finished = False
        self._init_heal(heal, machines[0].fault_plan)
        return self

    # ------------------------------------------------------------------
    def run(
        self,
        max_cycles: int = 50_000_000,
        crash_at: Optional[int] = None,
        crash_shard: int = 0,
    ) -> MachineStats:
        """Run the sharded simulation to quiescence.

        ``crash_at`` hard-kills shard ``crash_shard``'s worker
        (``os._exit(137)``) at the first barrier whose horizon reaches
        that cycle -- the sharded analogue of :meth:`Machine.run`'s
        SIGKILL stand-in.  With the in-process transport the whole
        process dies, exactly like the single-machine flag.  Because
        ``crash_at`` exists to *demonstrate* a crash escaping the run,
        it disables self-healing for this invocation; chaos faults in
        the plan (``ShardFault``) are the healed path.
        """
        if self._finished:
            raise SimulationError("this runner has already completed")
        if crash_at is None and self._shard_cfg.crash_at is not None:
            crash_at = self._shard_cfg.crash_at
            crash_shard = self._shard_cfg.crash_shard
        heal = self._heal if crash_at is None else None
        if heal is not None and self._recovery is None:
            self._recovery = RecoveryStats()
        if self._ckpt is not None:
            self._ckpt.on_start(self)
        eps = self._spawn(crash_at, crash_shard)
        try:
            while True:
                try:
                    self._drive(eps, max_cycles, crash_at)
                    self.machines = [
                        self._finish_one(k, ep)
                        for k, ep in enumerate(eps)
                    ]
                    for ep in eps:
                        ep.finished_ok = True
                    break
                except ShardCrashError as exc:
                    if heal is None:
                        raise
                    eps = self._recover(eps, exc, heal)
        finally:
            for ep in eps:
                self._retire(ep)
        self._finished = True
        self._check_complete()
        if self._ckpt is not None:
            self._ckpt.on_complete(self)
        return self.stats()

    def _spawn(self, crash_at: Optional[int], crash_shard: int):
        if self._processes and self._ctx is None:
            self._ctx = multiprocessing.get_context(
                "fork"
                if "fork" in multiprocessing.get_all_start_methods()
                else "spawn"
            )
        self.worker_pids = [None] * self.shards
        return [
            self._spawn_one(
                k, m, crash_at if k == crash_shard else None
            )
            for k, m in enumerate(self.machines)
        ]

    def _spawn_one(self, shard: int, machine: ShardMachine,
                   crash_at: Optional[int] = None):
        if not self._processes or shard in self._degraded:
            if machine is self.machines[shard] and self._degraded:
                # a degraded shard runs in-process and would mutate
                # the pristine restart copy; work on a clone instead
                machine = pickle.loads(pickle.dumps(machine))
            self.worker_pids[shard] = None
            return _LocalShard(shard, machine, crash_at)
        policy = self._heal
        deadline = policy.deadline if policy else _DEFAULT_DEADLINE
        heartbeat = policy.heartbeat if policy else _DEFAULT_HEARTBEAT
        pool_key = None
        if self._pool_enabled and not machine._started:
            # only pristine pre-run machines are rebuild-equivalent; a
            # resumed/restored machine carries run state the rebuild
            # op cannot reproduce, so it always gets a fork-fresh copy
            pool_key = (
                f"{_graph_key(machine.graph)}:{self._transport}:"
                f"{self._ring_slots}"
            )
            entry = _pool_acquire(pool_key, self._pool_idle)
            if entry is not None:
                try:
                    ep = _ProcessShard.adopt(
                        shard, entry,
                        self._rebuild_spec(shard, machine, crash_at),
                        deadline=deadline, heartbeat=heartbeat,
                        pool_key=pool_key,
                    )
                    self.worker_reuses += 1
                    self.worker_pids[shard] = ep.pid
                    return ep
                except ShardCrashError:
                    # the parked worker died between the liveness check
                    # and the rebuild; fall through to a fresh spawn
                    _close_pooled(entry)
        rings = None
        if self._transport == "shm":
            try:
                rings = (
                    create_ring(self._ring_slots),
                    create_ring(self._ring_slots),
                    self._ring_slots,
                )
            except OSError:
                if self._shard_cfg.transport.kind == "shm":
                    raise
                # /dev/shm unusable: degrade the whole runner to pipes
                self._transport = "pipe"
        ep = _ProcessShard.spawn(
            shard, machine, crash_at, self._ctx,
            deadline=deadline, heartbeat=heartbeat,
            rings=rings, pool_key=pool_key,
        )
        self.worker_spawns += 1
        self.worker_pids[shard] = ep.pid
        return ep

    def _rebuild_spec(self, shard: int, machine: ShardMachine,
                      crash_at: Optional[int]) -> dict:
        """Constructor args a pooled worker needs to rebuild this
        shard's pristine machine from its retained graph."""
        return {
            "shard_index": shard,
            "n_shards": self.shards,
            "owner": machine._owner,
            "config": machine.config,
            "inputs": machine.inputs,
            "policy": self._policy,
            "fault_plan": machine.fault_plan,
            "recovery": machine.recovery,
            "workload_id": machine.workload_id,
            "crash_at": crash_at,
        }

    def _retire(self, ep) -> None:
        """End-of-run disposal: park clean process workers in the warm
        pool, close everything else."""
        if (
            isinstance(ep, _ProcessShard)
            and ep.finished_ok
            and ep.pool_key is not None
            and ep.proc is not None
            and ep.proc.is_alive()
        ):
            _pool_release(
                ep.pool_key,
                _PooledWorker(
                    proc=ep.proc, conn=ep.conn, seq=ep._seq,
                    rings=ep.rings, released_at=time.monotonic(),
                ),
                self._pool_idle,
            )
        else:
            ep.close()

    def _drive(self, eps, max_cycles: int,
               crash_at: Optional[int] = None) -> None:
        for ep in eps:
            ep.post(("start",))
        frontier = [ep.wait() for ep in eps]
        #: in-flight packets: (when, src shard, emission index, dst,
        #: kind, args) -- sorted injection keeps the run deterministic
        pending: list[tuple[int, int, int, int, str, tuple]] = []
        while True:
            times = [nt for nt, _live, _eot in frontier if nt is not None]
            times.extend(m[0] for m in pending)
            if not times:
                return          # global quiescence
            t_min = min(times)
            self._barrier = t_min
            # a packet injected this window lands at a boundary cell
            # (distance 0), so nothing it causes can cross the cut
            # before its arrival + L -- computed *before* the snapshot
            # block because the stale shard EOTs don't cover it
            msg_bound = min((m[0] for m in pending), default=None)
            if msg_bound is not None:
                msg_bound += self._lookahead
            by_dst: dict[int, list[Message]] = {}
            for when, _src, _idx, dst, kind, args in sorted(pending):
                by_dst.setdefault(dst, []).append((when, kind, args))
            pending = []
            if self._next_ckpt is not None and t_min >= self._next_ckpt:
                self._coordinated_snapshot(eps, t_min, by_dst)
                interval = self._ckpt.config.interval
                while self._next_ckpt <= t_min:
                    self._next_ckpt += interval
                by_dst = {}     # the snapshot op already injected them
            horizon = self._horizon(
                t_min, frontier, msg_bound, crash_at
            )
            self.windows_run += 1
            for k, ep in enumerate(eps):
                ep.post_window(horizon, max_cycles, by_dst.get(k, []),
                               self._take_fault(k, horizon))
            frontier = []
            for k, ep in enumerate(eps):
                outbox, nt, live, eot = ep.window_result(ep.wait())
                for idx, (dst, when, kind, args) in enumerate(outbox):
                    pending.append((when, k, idx, dst, kind, args))
                frontier.append((nt, live, eot))

    def _horizon(self, t_min: int, frontier, msg_bound: Optional[int],
                 crash_at: Optional[int]) -> int:
        """Safe lockstep horizon for the window starting at ``t_min``.

        Fixed mode reproduces the classic ``t_min + L - 1`` cadence.
        Adaptive mode runs to just below the earliest cycle any shard
        could hear from another (shard EOTs and pending-message
        bounds), additionally capped so checkpoint cadence, crash
        demonstrations and chaos-fault firing keep their fixed-mode
        barrier alignment.  Every cap is ``>= t_min`` (the bounds are
        ``>= t_min + L``), so the floor only guards degenerate cases.
        """
        if self._window_mode == "fixed":
            return t_min + self._lookahead - 1
        h = t_min + self._max_window - 1
        for _nt, _live, eot in frontier:
            if eot is not None:
                h = min(h, eot - 1)
        if msg_bound is not None:
            h = min(h, msg_bound - 1)
        if self._next_ckpt is not None:
            h = min(h, self._next_ckpt - 1)
        if crash_at is not None and t_min < crash_at:
            h = min(h, crash_at - 1)
        for queue in self._shard_faults.values():
            if queue and t_min < queue[0].cycle:
                h = min(h, queue[0].cycle - 1)
        return max(t_min, h)

    def _coordinated_snapshot(
        self, eps, cycle: int, by_dst: dict[int, list[Message]]
    ) -> None:
        """One Chandy-Lamport barrier: every worker records its state
        plus its incoming channel messages, then the set is committed
        atomically (all K files or nothing)."""
        # delta policy is the coordinator's call (workers self-chain
        # from their own previous member file): a delta set is only
        # requested while the previous set was written by these same
        # live workers -- any rollback, resume or respawn resets the
        # chain, so the next set is a full base
        kind = self._ckpt.next_kind()
        names = [self._ckpt.shard_name(cycle, k) for k in range(len(eps))]
        for k, ep in enumerate(eps):
            path = str(self._ckpt.directory / names[k])
            ep.post(("snapshot", path, cycle, by_dst.get(k, []),
                     self._take_fault(k, cycle), kind))
        sizes = [ep.wait() for ep in eps]
        self._ckpt.commit(cycle, names, sizes, kind=kind)
        # a committed set is forward progress: clear strike counting,
        # mirroring the supervisor's progressed-past-resume-point rule
        self._strikes.clear()

    def _finish_one(self, k: int, ep) -> ShardMachine:
        """Collect shard ``k``'s final state.  An in-process shard
        hands back its machine object; a worker ships only the mutable
        state, which overlays the coordinator's own (static-equal)
        machine -- the worker keeps its copy and stays eligible for
        the warm pool."""
        ep.post(("finish",))
        reply = ep.wait()
        if isinstance(reply, ShardMachine):
            return reply
        _tag, state = reply
        machine = self.machines[k]
        machine.__dict__.update(state)
        return machine

    # ------------------------------------------------------------------
    # in-process self-healing
    # ------------------------------------------------------------------
    def _recover(self, eps, exc: ShardCrashError,
                 policy: ShardRecoveryPolicy):
        """Roll every shard back to the latest usable coordinated set,
        respawn the failed worker, and hand fresh endpoints back to
        :meth:`run` for replay.

        The rollback restores each shard's machine *and* the channel
        state of the cut, so the replayed lockstep windows re-derive
        exactly the packets of a clean run -- outputs and modeled sink
        times stay bit-identical.  Policy mirrors the supervisor one
        level down: per-shard restart budgets with exponential seeded
        backoff, and on two strikes inside the same replay window the
        resume set is barred and recovery steps back one set.
        """
        started = time.perf_counter()
        rec = self._recovery
        rec.detections += 1
        if isinstance(exc, ShardHangError):
            rec.hangs += 1
        else:
            rec.crashes += 1
        detect_cycle = exc.cycle if exc.cycle >= 0 else self._barrier
        failed = exc.shard
        self._charge_restart(failed, detect_cycle, policy, exc)
        if failed not in self._degraded:
            delay = policy.backoff(
                self._restarts.get(failed, 1), self._heal_rng
            )
            if delay:
                policy.sleep(delay)
        entry = self._resume_point()
        key = entry["cycle"] if entry is not None else -1
        strikes = self._strikes.get(key, 0) + 1
        if strikes >= policy.strikes and entry is not None:
            # second failure replaying the same window: bar the set
            # (in memory -- replay will re-commit this cycle) and step
            # back one, like the supervisor's two-strike quarantine
            self._barred.add(key)
            self._strikes.pop(key, None)
            rec.step_backs += 1
            entry = self._resume_point()
            key = entry["cycle"] if entry is not None else -1
            self._strikes[key] = 1
        else:
            self._strikes[key] = strikes
        rec.rollbacks += 1
        rec.rollback_cycles.append(key)
        new_eps = self._restore(eps, entry, {failed})
        base = entry["cycle"] if entry is not None else self._start_cycle
        rec.cycles_replayed += max(0, detect_cycle - base)
        if self._ckpt is not None:
            interval = self._ckpt.config.interval
            self._next_ckpt = base + interval if interval else None
            # rolled-back workers reloaded (or restarted) their state, so
            # their in-memory chain tips are gone -- force the next set
            # to be a full base
            self._ckpt.reset_chain()
        rec.latencies.append(time.perf_counter() - started)
        if len(rec.latencies) > 8192:
            del rec.latencies[:4096]
        return new_eps

    def _charge_restart(self, shard: int, cycle: int,
                        policy: ShardRecoveryPolicy,
                        exc: ShardCrashError) -> None:
        self._restarts[shard] = self._restarts.get(shard, 0) + 1
        if self._restarts[shard] <= policy.max_restarts:
            return
        if policy.degrade and shard not in self._degraded:
            # fold the incurable shard into the coordinator process:
            # K-1 worker processes continue, bit-identically
            self._degraded.add(shard)
            self._recovery.degraded_shards = len(self._degraded)
            return
        raise ShardRecoveryExhausted(
            f"shard {shard} worker failed {self._restarts[shard]} "
            f"times (budget {policy.max_restarts}) near cycle "
            f"{cycle}; escalating to the supervisor",
            shard=shard,
            exitcode=exc.exitcode,
            cycle=cycle,
        ) from exc

    def _resume_point(self) -> Optional[dict[str, Any]]:
        """Latest complete coordinated set not barred by step-back, or
        None (= roll back to the run's initial machines)."""
        if self._ckpt is None:
            return None
        from ..checkpoint.coordinator import latest_coordinated
        from ..errors import ManifestError

        try:
            return latest_coordinated(
                self._ckpt.directory, exclude=self._barred
            )
        except ManifestError:
            return None

    def _restore(self, eps, entry: Optional[dict[str, Any]],
                 failed: set) -> list:
        """Build the post-rollback endpoint list: survivors reload
        their shard file in place (warm), failed/degraded workers are
        replaced.  With no committed set, every shard restarts from
        the initial machines (fork leaves the parent's copies
        unmutated; on a resumed runner they hold the loaded set)."""
        rec = self._recovery
        if entry is None:
            for ep in eps:
                ep.close()
            fresh = self._spawn(None, 0)
            rec.respawns += sum(
                1 for k in range(self.shards)
                if k in failed and k not in self._degraded
            )
            return fresh
        paths = [
            str(self._ckpt.directory / name) for name in entry["files"]
        ]
        respawn = set(failed)
        for k, ep in enumerate(eps):
            if k in respawn or k in self._degraded:
                respawn.add(k)
                continue
            try:
                ep.drain()
                ep.post(("load", paths[k]))
                ep.wait()
            except ShardCrashError:
                # a survivor died too (e.g. several chaos faults in
                # one window); replace it as well
                respawn.add(k)
        new_eps = list(eps)
        for k in sorted(respawn):
            eps[k].close()
            machine = _load_shard_machine(paths[k])
            new_eps[k] = self._spawn_one(k, machine)
            if k not in self._degraded:
                rec.respawns += 1
        return new_eps

    # ------------------------------------------------------------------
    # results
    # ------------------------------------------------------------------
    def _check_complete(self) -> None:
        missing = undrained = 0
        for m in self.machines:
            mm, uu = m._pending_work()
            missing += mm
            undrained += uu
        if missing or undrained:
            finish = self.finish_cycle
            parts = [
                f"sharded machine quiescent at cycle {finish} with "
                f"{missing} expected outputs missing"
            ]
            if undrained:
                parts.append(f"{undrained} input tokens never consumed")
            raise DeadlockError(
                "; ".join(parts),
                step=finish,
                pending=missing + undrained,
            )

    @property
    def finish_cycle(self) -> int:
        return max((m._finish for m in self.machines), default=0)

    def outputs(self) -> dict[str, list[Any]]:
        out: dict[str, list[Any]] = {}
        for m in self.machines:
            out.update(m.outputs())
        return out

    def sink_arrival_times(self, stream: str) -> list[int]:
        for m in self.machines:
            for cid in m.sink_values:
                if m.graph.cells[cid].params["stream"] == stream:
                    return m.sink_times[cid]
        raise SimulationError(f"no sink for stream {stream!r}")

    def am_arrays(self) -> dict[str, list[Any]]:
        out: dict[str, list[Any]] = {}
        for m in self.machines:
            out.update(m.am_arrays)
        return out

    def stats(self) -> MachineStats:
        return merge_shard_stats(
            self.machines,
            checkpoints=self._ckpt.stats if self._ckpt is not None else None,
            recovery=self._recovery,
        )


def _sum_dataclass(cls, items):
    """Field-wise sum of int-counter dataclass instances."""
    import dataclasses

    out = cls()
    for item in items:
        if item is None:
            continue
        for f in dataclasses.fields(cls):
            cur = getattr(out, f.name)
            if isinstance(cur, int):
                setattr(out, f.name, cur + getattr(item, f.name))
    return out


def merge_shard_stats(
    machines: list[ShardMachine], checkpoints=None, recovery=None
) -> MachineStats:
    """Merge per-shard statistics into one run-level view.  Counters
    add; unit lists concatenate (shard k's PEs come before shard
    k+1's); a cell's fire count is taken from its owning shard."""
    from ..faults.injector import FaultStats

    fire_counts: dict[int, int] = {}
    for m in machines:
        for cid, st in m.cell_state.items():
            if m._owner[cid] == m.shard_index:
                fire_counts[cid] = st.fire_count
    any_rel = any(
        m._reliable or m.injector is not None for m in machines
    )
    any_inj = any(m.injector is not None for m in machines)
    return MachineStats(
        cycles=max((m._finish for m in machines), default=0),
        packets=_sum_dataclass(
            PacketCounters, [m.packets for m in machines]
        ),
        pe_ops=[u.ops for m in machines for u in m.pes],
        fu_ops=[u.ops for m in machines for u in m.fus],
        am_ops=[u.ops for m in machines for u in m.ams],
        pe_busy=[u.busy_cycles for m in machines for u in m.pes],
        fu_busy=[u.busy_cycles for m in machines for u in m.fus],
        am_busy=[u.busy_cycles for m in machines for u in m.ams],
        fire_counts=fire_counts,
        reliability=(
            _sum_dataclass(
                ReliabilityStats, [m.rel for m in machines]
            )
            if any_rel
            else None
        ),
        faults=(
            _sum_dataclass(
                FaultStats,
                [m.injector.stats for m in machines
                 if m.injector is not None],
            )
            if any_inj
            else None
        ),
        checkpoints=checkpoints,
        recovery=recovery,
    )


def run_sharded(
    graph: DataflowGraph,
    inputs: Optional[dict[str, list[Any]]] = None,
    *,
    shards: int = 2,
    config: Optional[MachineConfig] = None,
    max_cycles: int = 50_000_000,
    fault_plan: Optional[FaultPlan] = None,
    recovery: bool = True,
    checkpoint: Optional[CheckpointConfig] = None,
    partition: Union[str, Partition] = "auto",
    processes: Optional[bool] = None,
    workload_id: Optional[str] = None,
    heal: Union[None, bool, ShardRecoveryPolicy] = None,
    shard_config: Union[None, ShardConfig, dict, str] = None,
) -> tuple[dict[str, list[Any]], MachineStats, ShardedRunner]:
    """Convenience wrapper mirroring ``run_machine`` for sharded runs."""
    runner = ShardedRunner(
        graph,
        inputs,
        shards=shards,
        config=config,
        fault_plan=fault_plan,
        recovery=recovery,
        checkpoint=checkpoint,
        partition=partition,
        processes=processes,
        workload_id=workload_id,
        heal=heal,
        shard_config=shard_config,
    )
    stats = runner.run(max_cycles=max_cycles)
    return runner.outputs(), stats, runner
