"""Configuration of the static dataflow machine model (Figure 1).

The machine is built from processing elements (PE) holding instruction
cells, pipelined function units (FU) for arithmetic, array memory units
(AM), and packet-switched routing networks (RN) carrying operation,
result and acknowledge packets.  All times are in machine cycles.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..graph.opcodes import Op

#: Default function-unit latencies per opcode (cycles), loosely modeled
#: on early-1980s pipelined floating-point units.
DEFAULT_FU_LATENCY: dict[Op, int] = {
    Op.ADD: 2,
    Op.SUB: 2,
    Op.MUL: 3,
    Op.DIV: 8,
    Op.NEG: 1,
    Op.ABS: 1,
    Op.MIN: 2,
    Op.MAX: 2,
    Op.LT: 1,
    Op.LE: 1,
    Op.GT: 1,
    Op.GE: 1,
    Op.EQ: 1,
    Op.NE: 1,
    Op.AND: 1,
    Op.OR: 1,
    Op.NOT: 1,
}


@dataclass
class MachineConfig:
    """Sizing and timing of one machine instance.

    The ``unit_time()`` preset reproduces the abstract "instruction
    time" model of the unit-delay simulator: every operation takes one
    cycle, packets are delivered in zero extra time, and dispatch is
    unlimited -- used by the fidelity cross-check tests.
    """

    n_pes: int = 4
    n_fus: int = 4
    n_ams: int = 1
    #: cycles for a packet to cross a routing network
    rn_delay: int = 2
    #: cycles a PE needs to dispatch one enabled instruction (its issue
    #: interval; 0 = unlimited dispatch bandwidth)
    pe_issue_interval: int = 1
    #: cycles to execute a local (ID/MERGE/gate) instruction in the PE
    local_latency: int = 1
    #: per-opcode FU latencies; FUs accept one operation per cycle
    fu_latency: dict[Op, int] = field(
        default_factory=lambda: dict(DEFAULT_FU_LATENCY)
    )
    #: array memory access latency
    am_latency: int = 4
    #: FU issue interval (pipelined FUs accept one op per cycle)
    fu_issue_interval: int = 1
    #: routing network bandwidth in packets/cycle (0 = unlimited)
    rn_bandwidth: int = 0

    # -- reliability layer (active when a FaultPlan is given) ----------
    #: cycles a producer waits for an acknowledge before retransmitting
    #: a result packet (0 = derive from the round-trip and unit
    #: latencies; see :meth:`retransmit_timeout_for`)
    retransmit_timeout: int = 0
    #: per-packet retransmission budget before the reliability layer
    #: gives up on a destination (0 = retry forever)
    max_retransmits: int = 64

    # -- progress watchdog ---------------------------------------------
    #: whether the stall watchdog runs (detects quiesced pipelines and
    #: livelocks long before ``max_cycles``)
    watchdog: bool = True
    #: cycles between watchdog progress checks (0 = derive from the
    #: retransmit timeout)
    watchdog_interval: int = 0
    #: consecutive no-progress checks before the watchdog declares a
    #: stall
    watchdog_patience: int = 3

    @staticmethod
    def unit_time() -> "MachineConfig":
        return MachineConfig(
            n_pes=1,
            n_fus=1,
            n_ams=1,
            rn_delay=0,
            pe_issue_interval=0,
            local_latency=1,
            fu_latency={op: 1 for op in DEFAULT_FU_LATENCY},
            am_latency=1,
            fu_issue_interval=0,
            rn_bandwidth=0,
        )

    def latency_of(self, op: Op) -> int:
        return self.fu_latency.get(op, 1)

    def retransmit_timeout_for(self) -> int:
        """The effective retransmission timeout in cycles.

        The automatic value covers a full round trip (result out, ack
        back) plus the worst unit latency and a dispatch slot, with a
        4x safety margin so a merely *slow* consumer does not trigger
        spurious retransmissions.
        """
        if self.retransmit_timeout:
            return self.retransmit_timeout
        round_trip = 2 * max(1, self.rn_delay)
        worst = max(
            max(self.fu_latency.values(), default=1),
            self.am_latency,
            self.local_latency,
        )
        return 4 * (round_trip + worst + max(1, self.pe_issue_interval))

    def watchdog_interval_for(self) -> int:
        """The effective watchdog check interval in cycles."""
        if self.watchdog_interval:
            return self.watchdog_interval
        return max(256, 8 * self.retransmit_timeout_for())
