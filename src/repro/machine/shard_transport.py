"""Fixed-layout shared-memory transport for cut packets.

Steady-state cross-shard traffic is made of exactly four event kinds
(``deliver_results`` with a single arc, ``deliver_reliable``,
``receive_ack``, ``deliver_ack``) whose payloads are small scalars.
Routing them through the command pipe means one pickle round trip per
packet; this module instead encodes each packet into one fixed 32-byte
slot of a ``multiprocessing.shared_memory`` ring that both sides of a
worker pipe map.

The rings are *batch-drained*: every lockstep window writes its
packets from slot 0 and ships only the slot **count** through the
(seq-tagged) command pipe, so the request/reply protocol itself is the
memory barrier -- there are no shared cursors to desynchronize across
rollbacks, respawns or straggler replies.  Packets the codec cannot
represent (exotic value types, huge ints, out-of-range ids) spill to
the pipe inside the same command, preserving the exact injection
order; correctness never depends on the ring.

Slot layout (little-endian, 32 bytes)::

    u32 idx     position in the window's merged packet order
    u8  kind    0=deliver_results  1=deliver_reliable
                2=receive_ack      3=deliver_ack
    u8  vtag    0=float  1=int64  2=bool  3=None
    u8  flags   bit0 = corrupted (deliver_reliable)
    u8  dst     destination shard (outbound rings; 0 inbound)
    i64 when    arrival cycle
    i32 a       arc id / cell id
    i32 b       sequence number (0 when unused)
    8s  value   raw value bytes per vtag
"""

from __future__ import annotations

import struct
from typing import Any, Optional

SLOT = struct.Struct("<IBBBBqii8s")
SLOT_SIZE = SLOT.size          # 32 bytes

_K_RESULTS = 0
_K_RELIABLE = 1
_K_RECV_ACK = 2
_K_DELIVER_ACK = 3

_KIND_CODES = {
    "deliver_results": _K_RESULTS,
    "deliver_reliable": _K_RELIABLE,
    "receive_ack": _K_RECV_ACK,
    "deliver_ack": _K_DELIVER_ACK,
}
_KIND_NAMES = {v: k for k, v in _KIND_CODES.items()}

_V_FLOAT = 0
_V_INT = 1
_V_BOOL = 2
_V_NONE = 3

_F8 = struct.Struct("<d")
_I8 = struct.Struct("<q")
_I32_MIN, _I32_MAX = -(2 ** 31), 2 ** 31 - 1
_I64_MIN, _I64_MAX = -(2 ** 63), 2 ** 63 - 1
_ZERO8 = b"\x00" * 8


def _encode_value(value: Any) -> Optional[tuple[int, bytes]]:
    """(vtag, 8 raw bytes), or None when the codec can't carry it."""
    if value is None:
        return _V_NONE, _ZERO8
    if isinstance(value, bool):        # before int: bool is an int
        return _V_BOOL, (b"\x01" if value else b"\x00") + b"\x00" * 7
    if isinstance(value, float):
        return _V_FLOAT, _F8.pack(value)
    if isinstance(value, int):
        if _I64_MIN <= value <= _I64_MAX:
            return _V_INT, _I8.pack(value)
        return None
    return None


def _decode_value(vtag: int, raw: bytes) -> Any:
    if vtag == _V_FLOAT:
        return _F8.unpack(raw)[0]
    if vtag == _V_INT:
        return _I8.unpack(raw)[0]
    if vtag == _V_BOOL:
        return raw[0] == 1
    return None


def _fits_i32(*xs: int) -> bool:
    return all(_I32_MIN <= x <= _I32_MAX for x in xs)


def encode_slot(
    buf, slot: int, idx: int, dst: int, when: int, kind: str, args: tuple
) -> bool:
    """Encode one packet into ring slot ``slot``.  Returns False when
    the packet cannot be represented (caller spills it to the pipe)."""
    code = _KIND_CODES.get(kind)
    if code is None or not (0 <= dst <= 255):
        return False
    if not (_I64_MIN <= when <= _I64_MAX):
        return False
    flags = 0
    b = 0
    if code == _K_RESULTS:
        aids, value = args
        if len(aids) != 1:
            return False
        a = aids[0]
        enc = _encode_value(value)
    elif code == _K_RELIABLE:
        a, b, value, corrupted = args
        flags = 1 if corrupted else 0
        enc = _encode_value(value)
    elif code == _K_RECV_ACK:
        a, b = args
        enc = (_V_NONE, _ZERO8)
    else:                               # deliver_ack
        (a,) = args
        enc = (_V_NONE, _ZERO8)
    if enc is None or not _fits_i32(a, b):
        return False
    vtag, raw = enc
    SLOT.pack_into(
        buf, slot * SLOT_SIZE, idx, code, vtag, flags, dst, when, a, b, raw
    )
    return True


def decode_slot(buf, slot: int) -> tuple[int, int, int, str, tuple]:
    """Decode ring slot ``slot`` -> (idx, dst, when, kind, args)."""
    idx, code, vtag, flags, dst, when, a, b, raw = SLOT.unpack_from(
        buf, slot * SLOT_SIZE
    )
    kind = _KIND_NAMES[code]
    if code == _K_RESULTS:
        args: tuple = ((a,), _decode_value(vtag, raw))
    elif code == _K_RELIABLE:
        args = (a, b, _decode_value(vtag, raw), bool(flags & 1))
    elif code == _K_RECV_ACK:
        args = (a, b)
    else:
        args = (a,)
    return idx, dst, when, kind, args


def shm_supported(start_method: Optional[str]) -> bool:
    """Rings need the fork start method (the child inherits the
    mapping; nothing is pickled) and an importable shared_memory."""
    if start_method != "fork":
        return False
    try:
        from multiprocessing import shared_memory  # noqa: F401
    except ImportError:          # pragma: no cover - stdlib always has it
        return False
    return True


def create_ring(slots: int):
    """Allocate one ring (``slots`` fixed-size slots).  Raises
    whatever ``SharedMemory`` raises when /dev/shm is unusable --
    callers in ``auto`` mode catch and fall back to pipes."""
    from multiprocessing import shared_memory

    return shared_memory.SharedMemory(create=True, size=slots * SLOT_SIZE)
