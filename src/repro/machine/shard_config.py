"""Validated configuration objects for the sharded backend.

The sharded runner grew a sprawl of keyword arguments (``shards``,
``partition``, ``processes``, ``heal``, ``--heal-deadline``,
``--crash-shard``, ...) spread across the facade, the CLI and
:class:`~repro.machine.sharded.ShardedRunner`.  This module
consolidates them into one validated :class:`ShardConfig` dataclass
with two nested policies:

* :class:`RecoveryPolicy` -- the self-healing knobs (a subclass of
  the runner's :class:`ShardRecoveryPolicy` plus an ``enabled``
  tri-state so "auto / force on / force off" fits in one object);
* :class:`TransportConfig` -- how cut packets travel between the
  coordinator and the workers (shared-memory rings vs. pipes).

The legacy kwargs keep working (the facade maps them onto a
``ShardConfig`` and emits :class:`DeprecationWarning`), so existing
call sites migrate at their own pace.  ``ShardConfig.from_json``
accepts the CLI's ``--shard-config`` JSON document.
"""

from __future__ import annotations

import json
import random
import time
from dataclasses import asdict, dataclass, field, fields, replace
from typing import Any, Callable, Optional, Union

from ..errors import SimulationError

__all__ = [
    "RecoveryPolicy",
    "ShardConfig",
    "ShardRecoveryPolicy",
    "TransportConfig",
]


@dataclass
class ShardRecoveryPolicy:
    """Knobs of the in-process self-healing loop.

    Mirrors the supervisor's escalation policy one level down: per
    shard restart budgets, exponential backoff with seeded jitter, and
    two-strike same-window step-back -- but rollback happens inside
    the running coordinator, from the latest complete coordinated set,
    without tearing the process tree down.
    """

    #: seconds a worker may take to answer one command before it
    #: counts as hung
    deadline: float = 60.0
    #: poll granularity while waiting (also bounds detection jitter)
    heartbeat: float = 0.05
    #: respawns allowed per shard before escalating
    max_restarts: int = 3
    backoff_base: float = 0.1
    backoff_factor: float = 2.0
    backoff_max: float = 2.0
    jitter: float = 0.1
    seed: int = 0
    #: failures inside the same replay window before the resume set is
    #: barred and recovery steps back one set (supervisor parity)
    strikes: int = 2
    #: on budget exhaustion, fold the shard into the coordinator
    #: process (K-1 worker processes) instead of raising
    degrade: bool = False
    #: injectable for tests; the backoff delays go through this
    sleep: Callable[[float], None] = time.sleep

    def backoff(self, attempt: int, rng: random.Random) -> float:
        """Delay before restart ``attempt`` (1-based), jittered."""
        delay = min(
            self.backoff_max,
            self.backoff_base * self.backoff_factor ** max(0, attempt - 1),
        )
        if self.jitter:
            delay *= 1.0 + rng.uniform(-self.jitter, self.jitter)
        return max(0.0, delay)


@dataclass
class RecoveryPolicy(ShardRecoveryPolicy):
    """:class:`ShardRecoveryPolicy` plus an ``enabled`` tri-state.

    ``enabled=None`` keeps the runner's auto rule (heal whenever there
    are worker processes *and* coordinated checkpoints); ``True`` and
    ``False`` force it either way.  This lets one nested object inside
    :class:`ShardConfig` express everything the legacy ``heal=``
    kwarg could.
    """

    enabled: Optional[bool] = None

    def validate(self) -> None:
        if self.deadline <= 0:
            raise SimulationError(
                f"recovery.deadline must be > 0, got {self.deadline}"
            )
        if self.heartbeat <= 0:
            raise SimulationError(
                f"recovery.heartbeat must be > 0, got {self.heartbeat}"
            )
        if self.max_restarts < 0:
            raise SimulationError(
                "recovery.max_restarts must be >= 0, "
                f"got {self.max_restarts}"
            )
        if self.strikes < 1:
            raise SimulationError(
                f"recovery.strikes must be >= 1, got {self.strikes}"
            )


_TRANSPORT_KINDS = ("auto", "shm", "pipe")


@dataclass
class TransportConfig:
    """How cut packets travel between coordinator and workers.

    ``kind="shm"`` moves steady-state cut traffic through
    ``multiprocessing.shared_memory`` rings with a fixed-layout codec
    (no pickle on the hot path); packets the codec cannot represent
    spill to the pipe transparently.  ``"pipe"`` is the classic
    all-pickle path; ``"auto"`` picks rings when the platform supports
    them (fork start method + shared memory available) and falls back
    to pipes otherwise.
    """

    kind: str = "auto"
    #: slots per direction per worker; each slot is one fixed-layout
    #: packet.  Overflow spills to the pipe, so this is a throughput
    #: knob, not a correctness bound.
    ring_slots: int = 512

    def validate(self) -> None:
        if self.kind not in _TRANSPORT_KINDS:
            raise SimulationError(
                f"transport.kind must be one of {_TRANSPORT_KINDS}, "
                f"got {self.kind!r}"
            )
        if self.ring_slots < 1:
            raise SimulationError(
                f"transport.ring_slots must be >= 1, got {self.ring_slots}"
            )


_WINDOW_MODES = ("adaptive", "fixed")
_PARTITION_SCHEMES = ("auto", "levels", "round_robin")


@dataclass
class ShardConfig:
    """Everything the sharded backend needs, in one validated object.

    Replaces the legacy kwarg sprawl on ``repro.run`` /
    ``repro.resume`` / the CLI.  Construct directly, from a dict, or
    from the CLI's ``--shard-config`` JSON via :meth:`from_json`.
    """

    #: number of shards (K)
    shards: int = 2
    #: partition scheme name, as accepted by
    #: :func:`repro.analysis.partition.partition_graph`
    partition: str = "auto"
    #: real worker processes?  None = auto (processes iff K > 1)
    processes: Optional[bool] = None
    #: lockstep horizon mode: ``"adaptive"`` batches many cycles per
    #: barrier when the cut allows it; ``"fixed"`` is the classic
    #: ``L = max(1, rn_delay)`` cadence
    window: str = "adaptive"
    #: upper bound on cycles batched into one adaptive window
    max_window: int = 4096
    #: keep worker processes warm in a module-level pool across runs
    pool: bool = True
    #: seconds an idle pooled worker may live before being reaped
    pool_idle_timeout: float = 120.0
    #: cut-packet transport
    transport: TransportConfig = field(default_factory=TransportConfig)
    #: self-healing policy; None = runner's auto rule
    recovery: Optional[RecoveryPolicy] = None
    #: hard-kill shard ``crash_shard`` when the horizon reaches this
    #: cycle (crash demonstration, disables healing for the run)
    crash_at: Optional[int] = None
    crash_shard: int = 0

    def validate(self) -> "ShardConfig":
        if self.shards < 1:
            raise SimulationError(
                f"shard count must be >= 1, got {self.shards}"
            )
        if self.partition not in _PARTITION_SCHEMES:
            raise SimulationError(
                f"partition must be one of {_PARTITION_SCHEMES}, "
                f"got {self.partition!r}"
            )
        if self.window not in _WINDOW_MODES:
            raise SimulationError(
                f"window must be one of {_WINDOW_MODES}, "
                f"got {self.window!r}"
            )
        if self.max_window < 1:
            raise SimulationError(
                f"max_window must be >= 1, got {self.max_window}"
            )
        if self.pool_idle_timeout <= 0:
            raise SimulationError(
                "pool_idle_timeout must be > 0, "
                f"got {self.pool_idle_timeout}"
            )
        if self.crash_shard < 0 or self.crash_shard >= self.shards:
            raise SimulationError(
                f"crash_shard {self.crash_shard} out of range for "
                f"{self.shards} shards"
            )
        self.transport.validate()
        if self.recovery is not None:
            self.recovery.validate()
        return self

    # ------------------------------------------------------------------
    def heal_value(self) -> Union[None, bool, ShardRecoveryPolicy]:
        """Map the nested recovery policy onto the runner's ``heal``
        tri-state: None = auto, False = off, policy object = tuned."""
        rec = self.recovery
        if rec is None:
            return None
        if rec.enabled is False:
            return False
        if rec.enabled is None and rec == RecoveryPolicy():
            return None
        return rec

    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        """JSON-ready dict (drops the non-serializable sleep hook)."""
        out = asdict(self)
        if out.get("recovery") is not None:
            out["recovery"].pop("sleep", None)
        return out

    @classmethod
    def from_json(cls, doc: Union[str, dict]) -> "ShardConfig":
        """Build from a JSON document / dict; unknown keys are errors
        so a typoed knob never silently does nothing."""
        if isinstance(doc, str):
            try:
                doc = json.loads(doc)
            except json.JSONDecodeError as exc:
                raise SimulationError(
                    f"invalid --shard-config JSON: {exc}"
                ) from None
        if not isinstance(doc, dict):
            raise SimulationError(
                "shard config must be a JSON object, "
                f"got {type(doc).__name__}"
            )
        doc = dict(doc)
        known = {f.name for f in fields(cls)}
        unknown = set(doc) - known
        if unknown:
            raise SimulationError(
                f"unknown shard config keys: {sorted(unknown)}; "
                f"known keys: {sorted(known)}"
            )
        if "transport" in doc and not isinstance(
            doc["transport"], TransportConfig
        ):
            t = doc["transport"]
            if not isinstance(t, dict):
                raise SimulationError(
                    "transport must be an object with "
                    "kind/ring_slots keys"
                )
            tkn = {f.name for f in fields(TransportConfig)}
            bad = set(t) - tkn
            if bad:
                raise SimulationError(
                    f"unknown transport keys: {sorted(bad)}"
                )
            doc["transport"] = TransportConfig(**t)
        if "recovery" in doc:
            doc["recovery"] = _coerce_recovery(doc["recovery"])
        return cls(**doc).validate()

    @classmethod
    def coerce(
        cls, value: Union[None, "ShardConfig", dict, str]
    ) -> Optional["ShardConfig"]:
        """Accept a ShardConfig, a dict, or a JSON string."""
        if value is None:
            return None
        if isinstance(value, cls):
            return value.validate()
        if isinstance(value, (dict, str)):
            return cls.from_json(value)
        raise SimulationError(
            "shard_config must be a ShardConfig, dict or JSON string, "
            f"got {type(value).__name__}"
        )


def _coerce_recovery(
    value: Union[None, bool, dict, RecoveryPolicy, ShardRecoveryPolicy],
) -> Optional[RecoveryPolicy]:
    """Normalize the many ways callers spell a recovery policy."""
    if value is None:
        return None
    if isinstance(value, RecoveryPolicy):
        return value
    if isinstance(value, ShardRecoveryPolicy):
        base = {
            f.name: getattr(value, f.name)
            for f in fields(ShardRecoveryPolicy)
        }
        return RecoveryPolicy(**base, enabled=True)
    if isinstance(value, bool):
        return RecoveryPolicy(enabled=value)
    if isinstance(value, dict):
        known = {f.name for f in fields(RecoveryPolicy)} - {"sleep"}
        bad = set(value) - known
        if bad:
            raise SimulationError(
                f"unknown recovery keys: {sorted(bad)}"
            )
        return RecoveryPolicy(**value)
    raise SimulationError(
        "recovery must be a RecoveryPolicy, bool, dict or None, "
        f"got {type(value).__name__}"
    )


_SENTINEL = object()


def merge_legacy(
    sc: Optional[ShardConfig],
    *,
    shards: Any = _SENTINEL,
    partition: Any = _SENTINEL,
    processes: Any = _SENTINEL,
    heal: Any = _SENTINEL,
    crash_at: Any = _SENTINEL,
    crash_shard: Any = _SENTINEL,
) -> ShardConfig:
    """Overlay explicitly-passed legacy kwargs onto a ShardConfig.

    Pass only the kwargs the caller actually set (the facade compares
    against its real defaults); everything else keeps the config's
    value.  Returns a new validated ShardConfig.
    """
    sc = sc if sc is not None else ShardConfig()
    updates: dict[str, Any] = {}
    if shards is not _SENTINEL:
        updates["shards"] = shards
    if partition is not _SENTINEL:
        updates["partition"] = partition
    if processes is not _SENTINEL:
        updates["processes"] = processes
    if heal is not _SENTINEL:
        updates["recovery"] = _coerce_recovery(heal)
    if crash_at is not _SENTINEL:
        updates["crash_at"] = crash_at
    if crash_shard is not _SENTINEL:
        updates["crash_shard"] = crash_shard
    if updates:
        sc = replace(sc, **updates)
    return sc.validate()
