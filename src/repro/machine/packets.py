"""Packet types of the packet-communication architecture (Section 2).

Two packet kinds flow through the routing networks, plus the
acknowledge packets that implement the single-token-per-arc discipline:

* **operation packets** -- an enabled instruction plus its operand
  values, sent from a processing element to a function unit or array
  memory (local moves/gates execute inside the PE);
* **result packets** -- a value plus the destination instruction's
  address;
* **acknowledge packets** -- a consumer telling a producer that its
  previous result has been absorbed.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Any, Optional


class UnitClass(Enum):
    """Where an operation packet executes."""

    LOCAL = "pe"
    FUNCTION_UNIT = "fu"
    ARRAY_MEMORY = "am"


@dataclass(frozen=True)
class OperationPacket:
    cell: int
    op_name: str
    operands: tuple
    unit: UnitClass
    issued_at: int


@dataclass(frozen=True)
class ResultPacket:
    value: Any
    dst_cell: int
    dst_port: int
    arc: int
    #: per-arc sequence number, used by the reliability layer to
    #: suppress duplicates and match retransmissions
    seq: int = 0


@dataclass(frozen=True)
class AckPacket:
    dst_cell: int   # the producer being released
    arc: int
    #: sequence number of the consumed token this ack releases
    seq: int = 0


@dataclass
class PacketCounters:
    """Counts by packet kind, for the Section 2 traffic claim."""

    op_local: int = 0
    op_fu: int = 0
    op_am: int = 0
    results: int = 0
    acks: int = 0

    @property
    def op_total(self) -> int:
        return self.op_local + self.op_fu + self.op_am

    @property
    def am_fraction(self) -> float:
        """Fraction of operation packets sent to array memories."""
        return self.op_am / self.op_total if self.op_total else 0.0

    def count_op(self, unit: UnitClass) -> None:
        if unit is UnitClass.LOCAL:
            self.op_local += 1
        elif unit is UnitClass.FUNCTION_UNIT:
            self.op_fu += 1
        else:
            self.op_am += 1

    def summary(self) -> str:
        return (
            f"op packets: {self.op_total} "
            f"(local {self.op_local}, FU {self.op_fu}, AM {self.op_am}; "
            f"AM fraction {self.am_fraction:.1%}); "
            f"results {self.results}, acks {self.acks}"
        )


def classify_unit(op_name: str, has_fu: bool = True) -> UnitClass:
    """Destination unit class of an opcode (by name, to avoid import
    cycles with the graph package)."""
    from ..graph.opcodes import ARRAY_MEMORY_OPS, FUNCTION_UNIT_OPS, Op

    op = Op(op_name)
    if op in ARRAY_MEMORY_OPS:
        return UnitClass.ARRAY_MEMORY
    if op in FUNCTION_UNIT_OPS and has_fu:
        return UnitClass.FUNCTION_UNIT
    return UnitClass.LOCAL


_ = Optional  # reserved for routed-path metadata extensions
