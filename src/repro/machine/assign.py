"""Assignment of instruction cells to processing elements.

The static architecture loads every instruction into a fixed memory
location before the computation starts; the assignment policy decides
which PE's instruction memory holds each cell.  Policies matter for the
dispatch-bandwidth experiments (a PE dispatches a bounded number of
enabled instructions per cycle).
"""

from __future__ import annotations

from typing import Callable

from ..errors import SimulationError
from ..graph.graph import DataflowGraph

Assignment = dict[int, int]  # cell id -> pe index


def assign_round_robin(g: DataflowGraph, n_pes: int) -> Assignment:
    """Cells distributed cyclically in id order (the default)."""
    return {cid: k % n_pes for k, cid in enumerate(sorted(g.cells))}


def assign_single(g: DataflowGraph, n_pes: int) -> Assignment:
    """Everything on PE 0 (dispatch-bottleneck baseline)."""
    return {cid: 0 for cid in g.cells}


def assign_by_stage(g: DataflowGraph, n_pes: int) -> Assignment:
    """Consecutive pipeline stages spread across PEs, so neighbouring
    cells usually sit in different PEs (good dispatch overlap)."""
    from ..analysis.paths import longest_path_levels

    try:
        levels = longest_path_levels(
            g, ignore_arcs=tuple(g.meta.get("feedback_arcs", ()))
        )
    except Exception:
        return assign_round_robin(g, n_pes)
    return {cid: level % n_pes for cid, level in levels.items()}


POLICIES: dict[str, Callable[[DataflowGraph, int], Assignment]] = {
    "round_robin": assign_round_robin,
    "single": assign_single,
    "by_stage": assign_by_stage,
}


def make_assignment(
    g: DataflowGraph, n_pes: int, policy: str = "round_robin"
) -> Assignment:
    try:
        fn = POLICIES[policy]
    except KeyError:
        raise SimulationError(
            f"unknown assignment policy {policy!r}; "
            f"choose from {sorted(POLICIES)}"
        ) from None
    assignment = fn(g, n_pes)
    bad = [cid for cid, pe in assignment.items() if not 0 <= pe < n_pes]
    if bad:
        raise SimulationError(f"assignment maps cells {bad} outside PE range")
    return assignment
