"""Event-driven simulator of the static dataflow machine (Figure 1).

The model executes a machine-level instruction graph on the full
architecture: instruction cells live in processing elements with
bounded dispatch bandwidth; arithmetic operation packets travel through
a routing network to pipelined function units; array build/select
operations go to array memory units; result and acknowledge packets
return through the distribution network.

Timing rules (all in machine cycles):

* an instruction becomes *enabled* when its operand registers are full
  and all acknowledge packets from its previous firing have returned;
* its PE dispatches one enabled instruction every ``pe_issue_interval``
  cycles; dispatch consumes the operands and sends the acknowledge
  packets to their producers (arrival after ``max(1, rn_delay)``);
* local instructions (moves, gates, merges) complete in
  ``local_latency``; FU/AM instructions travel ``rn_delay``, wait for
  the unit's pipelined issue slot, and take the unit latency;
* result packets reach the destination cells ``rn_delay`` after
  completion.

With :meth:`MachineConfig.unit_time` (all latencies one cycle, free
dispatch) the firing schedule coincides exactly with the unit-delay
simulator's -- the fidelity tests assert sink-arrival equality.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from ..errors import DeadlockError, SimulationError
from ..graph.cell import _NO_TOKEN, GATE_PORT, Cell
from ..graph.graph import DataflowGraph
from ..graph.lower import lower_fifos
from ..graph.opcodes import (
    BINARY_OPS,
    MERGE_CONTROL_PORT,
    MERGE_FALSE_PORT,
    MERGE_TRUE_PORT,
    UNARY_OPS,
    Op,
    apply_scalar,
)
from ..graph.validate import check_stream_inputs, validate
from .assign import Assignment, make_assignment
from .config import MachineConfig
from .packets import PacketCounters, UnitClass, classify_unit
from .stats import MachineStats

_ABSENT = _NO_TOKEN


@dataclass
class _CellState:
    operands: dict[int, Any] = field(default_factory=dict)
    acks_pending: int = 0
    queued: bool = False       # sitting in its PE's ready queue
    source_pos: int = 0
    fire_count: int = 0


@dataclass
class _UnitState:
    next_free: int = 0
    busy_cycles: int = 0
    ops: int = 0


class Machine:
    """One machine instance executing one instruction graph."""

    def __init__(
        self,
        graph: DataflowGraph,
        config: Optional[MachineConfig] = None,
        inputs: Optional[dict[str, list[Any]]] = None,
        assignment: Optional[Assignment] = None,
        policy: str = "round_robin",
    ) -> None:
        self.config = config or MachineConfig()
        if graph.cells_by_op(Op.FIFO):
            graph = lower_fifos(graph)
        validate(graph)
        self.graph = graph
        self.inputs = {k: list(v) for k, v in (inputs or {}).items()}
        check_stream_inputs(graph, self.inputs)
        self.assignment = assignment or make_assignment(
            graph, self.config.n_pes, policy
        )

        self.cell_state: dict[int, _CellState] = {}
        self.sink_values: dict[int, list[Any]] = {}
        self.sink_times: dict[int, list[int]] = {}
        self.am_arrays: dict[str, list[Any]] = {}
        for cell in graph:
            st = _CellState()
            self.cell_state[cell.cid] = st
            if cell.op in (Op.SINK, Op.AM_WRITE):
                self.sink_values[cell.cid] = []
                self.sink_times[cell.cid] = []
            if cell.op is Op.AM_WRITE:
                self.am_arrays.setdefault(cell.params["stream"], [])

        self.pes = [_UnitState() for _ in range(self.config.n_pes)]
        self.fus = [_UnitState() for _ in range(self.config.n_fus)]
        self.ams = [_UnitState() for _ in range(self.config.n_ams)]
        self._pe_queues: list[list[int]] = [[] for _ in self.pes]
        self._rn_next_free = 0

        self.packets = PacketCounters()
        self.now = 0
        self._events: list[tuple[int, int, Callable[[], None]]] = []
        self._seq = 0
        self._fu_rr = 0
        self._am_rr = 0

        for cell in graph:
            self._maybe_ready(cell.cid)

    # ------------------------------------------------------------------
    # event plumbing
    # ------------------------------------------------------------------
    def _at(self, time: int, fn: Callable[[], None]) -> None:
        heapq.heappush(self._events, (time, self._seq, fn))
        self._seq += 1

    def _route_delay(self, n_packets: int = 1) -> int:
        """Routing network delay, with optional bandwidth contention."""
        delay = self.config.rn_delay
        if self.config.rn_bandwidth:
            start = max(self.now, self._rn_next_free)
            self._rn_next_free = start + (
                n_packets + self.config.rn_bandwidth - 1
            ) // self.config.rn_bandwidth
            delay += start - self.now
        return delay

    # ------------------------------------------------------------------
    # enabling
    # ------------------------------------------------------------------
    def _peek(self, cell: Cell, port: int) -> Any:
        if port in cell.consts:
            return cell.consts[port]
        st = self.cell_state[cell.cid]
        return st.operands.get(port, _ABSENT)

    def _is_enabled(self, cell: Cell) -> bool:
        st = self.cell_state[cell.cid]
        if st.acks_pending:
            return False
        if cell.gated and self._peek(cell, GATE_PORT) is _ABSENT:
            return False
        op = cell.op
        if op in (Op.SOURCE, Op.AM_READ):
            seq = self._source_seq(cell)
            return st.source_pos < len(seq)
        if op is Op.CONST:
            return True
        if op is Op.MERGE:
            ctl = self._peek(cell, MERGE_CONTROL_PORT)
            if ctl is _ABSENT:
                return False
            sel = MERGE_TRUE_PORT if bool(ctl) else MERGE_FALSE_PORT
            return self._peek(cell, sel) is not _ABSENT
        for port in cell.data_ports():
            if self._peek(cell, port) is _ABSENT:
                return False
        return True

    def _source_seq(self, cell: Cell) -> list[Any]:
        if "values" in cell.params:
            return cell.params["values"]
        return self.inputs[cell.params["stream"]]

    def _maybe_ready(self, cid: int) -> None:
        cell = self.graph.cells[cid]
        st = self.cell_state[cid]
        if st.queued or not self._is_enabled(cell):
            return
        st.queued = True
        pe_idx = self.assignment[cid]
        self._pe_queues[pe_idx].append(cid)
        self._schedule_dispatch(pe_idx)

    def _schedule_dispatch(self, pe_idx: int) -> None:
        pe = self.pes[pe_idx]
        when = max(self.now, pe.next_free)
        self._at(when, lambda: self._dispatch(pe_idx))

    # ------------------------------------------------------------------
    # firing
    # ------------------------------------------------------------------
    def _dispatch(self, pe_idx: int) -> None:
        pe = self.pes[pe_idx]
        queue = self._pe_queues[pe_idx]
        if not queue:
            return
        if self.now < pe.next_free:
            # the PE is still issuing an earlier instruction; retry when
            # its dispatch slot frees up
            self._at(pe.next_free, lambda: self._dispatch(pe_idx))
            return
        cid = queue.pop(0)
        cell = self.graph.cells[cid]
        st = self.cell_state[cid]
        st.queued = False
        if not self._is_enabled(cell):
            # state changed while queued (merge control flipped, etc.)
            self._maybe_ready(cid)
            if queue:
                self._schedule_dispatch(pe_idx)
            return
        if self.config.pe_issue_interval:
            pe.next_free = self.now + self.config.pe_issue_interval
            pe.busy_cycles += self.config.pe_issue_interval
        pe.ops += 1
        self._fire(cell)
        if queue:
            self._schedule_dispatch(pe_idx)

    def _fire(self, cell: Cell) -> None:
        st = self.cell_state[cell.cid]
        st.fire_count += 1
        g = self.graph
        gate_val: Any = None
        consumed_ports: list[int] = []
        if cell.gated:
            gate_val = self._peek(cell, GATE_PORT)
            if GATE_PORT not in cell.consts:
                consumed_ports.append(GATE_PORT)

        op = cell.op
        result: Any = None
        if op in (Op.SOURCE, Op.AM_READ):
            result = self._source_seq(cell)[st.source_pos]
            st.source_pos += 1
        elif op is Op.CONST:
            result = cell.params["value"]
        elif op in (Op.SINK, Op.AM_WRITE):
            result = self._peek(cell, 0)
            consumed_ports.append(0)
        elif op is Op.MERGE:
            ctl = self._peek(cell, MERGE_CONTROL_PORT)
            sel = MERGE_TRUE_PORT if bool(ctl) else MERGE_FALSE_PORT
            result = self._peek(cell, sel)
            for port in (MERGE_CONTROL_PORT, sel):
                if port not in cell.consts:
                    consumed_ports.append(port)
        else:
            args = [self._peek(cell, p) for p in cell.data_ports()]
            consumed_ports.extend(
                p for p in cell.data_ports() if p not in cell.consts
            )
            if op is Op.ID:
                result = args[0]
            elif op in BINARY_OPS or op in UNARY_OPS:
                try:
                    result = apply_scalar(op, args)
                except ZeroDivisionError as exc:
                    raise SimulationError(
                        f"division by zero in {cell.label} at cycle {self.now}"
                    ) from exc
            else:
                raise SimulationError(f"cannot execute {op!r}")

        # acknowledge the producers of every consumed operand
        ack_delay = max(1, self.config.rn_delay)
        for port in consumed_ports:
            arc = g.in_arc.get((cell.cid, port))
            st.operands.pop(port, None)
            if arc is None:
                continue
            self.packets.acks += 1
            self._at(
                self.now + ack_delay,
                lambda src=arc.src: self._deliver_ack(src),
            )

        # destinations this firing writes
        out = [
            a
            for a in g.out_arcs[cell.cid]
            if a.tag is None or a.tag == bool(gate_val)
        ]
        st.acks_pending = len(out)

        unit = classify_unit(op.value)
        self.packets.count_op(unit)
        if op in (Op.SINK, Op.AM_WRITE):
            if op is Op.AM_WRITE:
                unit_state = self._pick_unit(self.ams, "am")
                arrival = self.now + self._route_delay()
                start = max(arrival, unit_state.next_free)
                if self.config.fu_issue_interval:
                    unit_state.next_free = start + self.config.fu_issue_interval
                unit_state.busy_cycles += self.config.am_latency
                unit_state.ops += 1
                done = start + self.config.am_latency
            else:
                done = self.now + self.config.local_latency
            value = result
            self._at(done, lambda: self._record_sink(cell, value))
            self._maybe_ready(cell.cid)
            return

        if unit is UnitClass.LOCAL:
            done = self.now + self.config.local_latency
        else:
            pool = self.fus if unit is UnitClass.FUNCTION_UNIT else self.ams
            unit_state = self._pick_unit(
                pool, "fu" if unit is UnitClass.FUNCTION_UNIT else "am"
            )
            arrival = self.now + self._route_delay()
            start = max(arrival, unit_state.next_free)
            if self.config.fu_issue_interval:
                unit_state.next_free = start + self.config.fu_issue_interval
            latency = (
                self.config.am_latency
                if unit is UnitClass.ARRAY_MEMORY
                else self.config.latency_of(op)
            )
            unit_state.busy_cycles += latency
            unit_state.ops += 1
            done = start + latency

        deliver = done + self._route_delay(len(out))
        deliver = max(deliver, self.now + 1)
        value = result
        self._at(deliver, lambda: self._deliver_results(cell.cid, out, value))
        # the cell itself may refire once operands/acks return
        self._maybe_ready(cell.cid)

    def _pick_unit(self, pool: list[_UnitState], kind: str) -> _UnitState:
        if kind == "fu":
            self._fu_rr = (self._fu_rr + 1) % len(pool)
            return pool[self._fu_rr]
        self._am_rr = (self._am_rr + 1) % len(pool)
        return pool[self._am_rr]

    # ------------------------------------------------------------------
    # deliveries
    # ------------------------------------------------------------------
    def _deliver_results(self, src: int, arcs: list, value: Any) -> None:
        for arc in arcs:
            self.packets.results += 1
            st = self.cell_state[arc.dst]
            if arc.dst_port in st.operands:
                raise SimulationError(
                    f"operand overrun at cell {arc.dst} port {arc.dst_port} "
                    f"(acknowledge discipline violated)"
                )
            st.operands[arc.dst_port] = value
            self._maybe_ready(arc.dst)

    def _deliver_ack(self, producer: int) -> None:
        st = self.cell_state[producer]
        if st.acks_pending > 0:
            st.acks_pending -= 1
        if st.acks_pending == 0:
            self._maybe_ready(producer)

    def _record_sink(self, cell: Cell, value: Any) -> None:
        self.sink_values[cell.cid].append(value)
        self.sink_times[cell.cid].append(self.now)
        if cell.op is Op.AM_WRITE:
            self.am_arrays[cell.params["stream"]].append(value)

    # ------------------------------------------------------------------
    # main loop
    # ------------------------------------------------------------------
    def run(self, max_cycles: int = 50_000_000) -> MachineStats:
        # Pre-load initial tokens.  The producing cell of a pre-loaded
        # arc owes an acknowledge before its own first firing may write
        # that arc (single-token discipline), so it starts with a
        # pending acknowledge per initial token.
        for arc in self.graph.arcs.values():
            if arc.has_initial:
                self.cell_state[arc.dst].operands[arc.dst_port] = arc.initial
                self.cell_state[arc.src].acks_pending += 1
        for cid in self.graph.cells:
            self._maybe_ready(cid)

        while self._events:
            time, _seq, fn = heapq.heappop(self._events)
            if time > max_cycles:
                raise SimulationError(
                    f"machine simulation exceeded {max_cycles} cycles"
                )
            self.now = time
            fn()
        self._check_complete()
        return self.stats()

    def _check_complete(self) -> None:
        pending = 0
        for cid, values in self.sink_values.items():
            limit = self.graph.cells[cid].params.get("limit")
            if limit is not None and len(values) < limit:
                pending += limit - len(values)
        if pending:
            raise DeadlockError(
                f"machine quiescent at cycle {self.now} with {pending} "
                f"expected outputs missing",
                step=self.now,
                pending=pending,
            )

    # ------------------------------------------------------------------
    # results
    # ------------------------------------------------------------------
    def outputs(self) -> dict[str, list[Any]]:
        out: dict[str, list[Any]] = {}
        for cid, values in self.sink_values.items():
            stream = self.graph.cells[cid].params["stream"]
            out[stream] = values
        return out

    def sink_arrival_times(self, stream: str) -> list[int]:
        for cid in self.sink_values:
            if self.graph.cells[cid].params["stream"] == stream:
                return self.sink_times[cid]
        raise SimulationError(f"no sink for stream {stream!r}")

    def initiation_interval(self, stream: str) -> float:
        times = self.sink_arrival_times(stream)
        if len(times) < 3:
            return float("nan")
        skip = max(1, len(times) // 2)
        window = times[skip:]
        return (window[-1] - window[0]) / (len(window) - 1)

    def stats(self) -> MachineStats:
        return MachineStats(
            cycles=self.now,
            packets=self.packets,
            pe_ops=[u.ops for u in self.pes],
            fu_ops=[u.ops for u in self.fus],
            am_ops=[u.ops for u in self.ams],
            pe_busy=[u.busy_cycles for u in self.pes],
            fu_busy=[u.busy_cycles for u in self.fus],
            am_busy=[u.busy_cycles for u in self.ams],
            fire_counts={
                cid: st.fire_count for cid, st in self.cell_state.items()
            },
        )


def run_machine(
    graph: DataflowGraph,
    inputs: Optional[dict[str, list[Any]]] = None,
    config: Optional[MachineConfig] = None,
    policy: str = "round_robin",
    max_cycles: int = 50_000_000,
) -> tuple[dict[str, list[Any]], MachineStats, Machine]:
    """Convenience wrapper: build, run, and collect outputs + stats."""
    machine = Machine(graph, config=config, inputs=inputs, policy=policy)
    stats = machine.run(max_cycles=max_cycles)
    return machine.outputs(), stats, machine
